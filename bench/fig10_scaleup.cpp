// Reproduces Fig. 10: per-VM average delay (seconds) of dynamically
// scaling up/down memory, under 32/16/8-way scale-up concurrency,
// compared to elasticity through conventional VM scale-out [13].
// Lower is better; the paper reports memory expansion agility superior in
// the disaggregated approach even at the most extreme concurrency.

#include <cstdio>

#include "core/scaleup_experiment.hpp"
#include "sim/report.hpp"

namespace {
using namespace dredbox;
}

int main() {
  std::printf("=== Fig. 10: scale-up agility vs conventional scale-out ===\n");
  std::printf("N VMs post memory scale-up requests within a 1 s interval;\n");
  std::printf("scale-out baseline spawns an additional VM per request [13].\n\n");

  core::Fig10Config config;
  config.concurrency_levels = {32, 16, 8};
  config.repetitions = 5;
  core::ScaleUpAgilityExperiment experiment{config};
  const auto rows = experiment.run();

  sim::TextTable table{{"concurrency", "scale-up avg (s)", "scale-up p95 (s)",
                        "scale-down avg (s)", "scale-out avg (s)", "speedup"}};
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.concurrency),
                   sim::TextTable::num(row.scale_up_avg_s, 3) + " ± " +
                       sim::TextTable::num(row.scale_up_ci95_s, 3),
                   sim::TextTable::num(row.scale_up_p95_s, 3),
                   sim::TextTable::num(row.scale_down_avg_s, 3),
                   sim::TextTable::num(row.scale_out_avg_s, 1) + " ± " +
                       sim::TextTable::num(row.scale_out_ci95_s, 1),
                   sim::TextTable::num(row.speedup(), 0) + "x"});
  }
  std::printf("%s\n", table.to_string().c_str());
  sim::maybe_write_csv("fig10_scaleup", table);

  std::printf("Per-VM average delay (lower is better):\n");
  double full_scale = 0.0;
  for (const auto& row : rows) full_scale = std::max(full_scale, row.scale_out_avg_s);
  for (const auto& row : rows) {
    std::printf("  %2zu VMs  scale-up  %8.3f s |%s\n", row.concurrency, row.scale_up_avg_s,
                sim::ascii_bar(row.scale_up_avg_s, full_scale, 50).c_str());
    std::printf("  %2zu VMs  scale-out %8.3f s |%s\n", row.concurrency, row.scale_out_avg_s,
                sim::ascii_bar(row.scale_out_avg_s, full_scale, 50).c_str());
  }

  // Extension: sensitivity to the grant size (the paper fixes one size;
  // hotplug and guest-online costs scale with GiB).
  std::printf("\nGrant-size sensitivity (16-way concurrency):\n");
  sim::TextTable size_tbl{{"grant", "scale-up avg (s)", "scale-out avg (s)", "speedup"}};
  for (const std::uint64_t gib : {1ull, 2ull, 4ull}) {
    core::Fig10Config size_cfg;
    size_cfg.concurrency_levels = {16};
    size_cfg.repetitions = 3;
    size_cfg.bytes_per_request = gib << 30;
    core::ScaleUpAgilityExperiment size_exp{size_cfg};
    const auto row = size_exp.run_level(16);
    size_tbl.add_row({std::to_string(gib) + " GiB",
                      sim::TextTable::num(row.scale_up_avg_s, 3),
                      sim::TextTable::num(row.scale_out_avg_s, 1),
                      sim::TextTable::num(row.speedup(), 0) + "x"});
  }
  std::printf("%s\n", size_tbl.to_string().c_str());

  bool reproduced = true;
  for (const auto& row : rows) {
    if (row.scale_up_avg_s >= row.scale_out_avg_s) reproduced = false;
  }
  const bool concurrency_ordering = rows.size() == 3 &&
                                    rows[0].scale_up_avg_s >= rows[1].scale_up_avg_s &&
                                    rows[1].scale_up_avg_s >= rows[2].scale_up_avg_s;
  std::printf("\nPaper claim check: disaggregated scale-up beats scale-out at every\n");
  std::printf("concurrency level -> %s\n", reproduced ? "REPRODUCED" : "NOT reproduced");
  std::printf("Shape check: delay grows with concurrency (32 >= 16 >= 8) -> %s\n",
              concurrency_ordering ? "REPRODUCED" : "NOT reproduced");
  return reproduced ? 0 : 1;
}
