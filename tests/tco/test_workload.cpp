#include "tco/workload.hpp"

#include <gtest/gtest.h>

namespace dredbox::tco {
namespace {

TEST(WorkloadTest, TableOneRanges) {
  // The exact rows of Table I.
  auto r = ranges_for(WorkloadType::kRandom);
  EXPECT_EQ(r.cpu_lo, 1u);
  EXPECT_EQ(r.cpu_hi, 32u);
  EXPECT_EQ(r.ram_lo_gb, 1u);
  EXPECT_EQ(r.ram_hi_gb, 32u);

  r = ranges_for(WorkloadType::kHighRam);
  EXPECT_EQ(r.cpu_hi, 8u);
  EXPECT_EQ(r.ram_lo_gb, 24u);

  r = ranges_for(WorkloadType::kHighCpu);
  EXPECT_EQ(r.cpu_lo, 24u);
  EXPECT_EQ(r.ram_hi_gb, 8u);

  r = ranges_for(WorkloadType::kHalfHalf);
  EXPECT_EQ(r.cpu_lo, 16u);
  EXPECT_EQ(r.cpu_hi, 16u);
  EXPECT_EQ(r.ram_lo_gb, 16u);
  EXPECT_EQ(r.ram_hi_gb, 16u);

  r = ranges_for(WorkloadType::kMoreRam);
  EXPECT_EQ(r.cpu_hi, 6u);
  EXPECT_EQ(r.ram_lo_gb, 17u);

  r = ranges_for(WorkloadType::kMoreCpu);
  EXPECT_EQ(r.cpu_lo, 17u);
  EXPECT_EQ(r.ram_hi_gb, 16u);
}

TEST(WorkloadTest, AllTypesListedOnce) {
  const auto types = all_workload_types();
  EXPECT_EQ(types.size(), 6u);
}

TEST(WorkloadTest, Names) {
  EXPECT_EQ(to_string(WorkloadType::kRandom), "Random");
  EXPECT_EQ(to_string(WorkloadType::kHighRam), "High RAM");
  EXPECT_EQ(to_string(WorkloadType::kHalfHalf), "Half Half");
}

class WorkloadDrawTest : public ::testing::TestWithParam<WorkloadType> {};

TEST_P(WorkloadDrawTest, DrawsStayInRange) {
  const WorkloadGenerator gen{GetParam()};
  const auto& r = gen.ranges();
  sim::Rng rng{99};
  for (int i = 0; i < 2000; ++i) {
    const VmSpec vm = gen.next(rng);
    EXPECT_GE(vm.vcpus, r.cpu_lo);
    EXPECT_LE(vm.vcpus, r.cpu_hi);
    EXPECT_GE(vm.ram_gb, r.ram_lo_gb);
    EXPECT_LE(vm.ram_gb, r.ram_hi_gb);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMixes, WorkloadDrawTest,
                         ::testing::ValuesIn(all_workload_types()),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           for (auto& c : n) {
                             if (c == ' ') c = '_';
                           }
                           return n;
                         });

TEST(WorkloadTest, HalfHalfIsDeterministic) {
  const WorkloadGenerator gen{WorkloadType::kHalfHalf};
  sim::Rng rng{1};
  for (int i = 0; i < 10; ++i) {
    const VmSpec vm = gen.next(rng);
    EXPECT_EQ(vm.vcpus, 16u);
    EXPECT_EQ(vm.ram_gb, 16u);
  }
}

TEST(WorkloadTest, BoundedGenerationRespectsBudgets) {
  const WorkloadGenerator gen{WorkloadType::kRandom};
  sim::Rng rng{7};
  const std::size_t total_cores = 2048;
  const std::uint64_t total_ram = 2048;
  const auto workload = gen.generate_bounded(rng, total_cores, total_ram, 0.85);
  EXPECT_FALSE(workload.empty());
  std::size_t cores = 0;
  std::uint64_t ram = 0;
  for (const auto& vm : workload) {
    cores += vm.vcpus;
    ram += vm.ram_gb;
  }
  EXPECT_LE(cores, static_cast<std::size_t>(0.85 * total_cores));
  EXPECT_LE(ram, static_cast<std::uint64_t>(0.85 * total_ram));
}

TEST(WorkloadTest, BoundedGenerationBindsOnScarceResource) {
  // High RAM fills the RAM budget long before the CPU budget.
  const WorkloadGenerator gen{WorkloadType::kHighRam};
  sim::Rng rng{7};
  const auto workload = gen.generate_bounded(rng, 2048, 2048, 0.85);
  std::size_t cores = 0;
  std::uint64_t ram = 0;
  for (const auto& vm : workload) {
    cores += vm.vcpus;
    ram += vm.ram_gb;
  }
  EXPECT_GT(ram, 1600u);       // close to the 85% RAM budget
  EXPECT_LT(cores, 600u);      // CPUs barely used
}

TEST(WorkloadTest, BoundedGenerationValidation) {
  const WorkloadGenerator gen{WorkloadType::kRandom};
  sim::Rng rng{7};
  EXPECT_THROW(gen.generate_bounded(rng, 100, 100, 0.0), std::invalid_argument);
  EXPECT_THROW(gen.generate_bounded(rng, 100, 100, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace dredbox::tco
