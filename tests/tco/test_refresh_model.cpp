#include "tco/refresh_model.hpp"

#include <gtest/gtest.h>

namespace dredbox::tco {
namespace {

TcoConfig small_config() {
  TcoConfig cfg;
  cfg.servers = 32;
  cfg.repetitions = 3;
  return cfg;
}

TEST(RefreshStudyTest, CapexScalesWithUnits) {
  const RefreshStudy study{small_config()};
  const auto conv = study.conventional(WorkloadType::kRandom, 1.0);
  const auto dd = study.dredbox(WorkloadType::kRandom, 1.0);
  EXPECT_DOUBLE_EQ(conv.capex_usd, 32 * study.costs().server_cost);
  EXPECT_DOUBLE_EQ(dd.capex_usd, 128 * study.costs().compute_brick_cost +
                                     128 * study.costs().memory_brick_cost);
}

TEST(RefreshStudyTest, NoRefreshWithinFirstCadence) {
  const RefreshStudy study{small_config()};
  EXPECT_DOUBLE_EQ(study.conventional(WorkloadType::kRandom, 2.9).refresh_usd, 0.0);
  EXPECT_DOUBLE_EQ(study.dredbox(WorkloadType::kRandom, 2.9).refresh_usd, 0.0);
}

TEST(RefreshStudyTest, ServerRefreshReplacesEverything) {
  const RefreshStudy study{small_config()};
  // 7-year horizon: servers refresh at years 3 and 6 (2 cycles).
  const auto conv = study.conventional(WorkloadType::kRandom, 7.0);
  const double per_cycle =
      32 * study.costs().server_cost * (1.0 - study.costs().salvage_fraction);
  EXPECT_DOUBLE_EQ(conv.refresh_usd, 2 * per_cycle);
}

TEST(RefreshStudyTest, ComponentRefreshSkipsYoungDram) {
  const RefreshStudy study{small_config()};
  // 7 years: compute bricks refresh twice (3, 6), memory bricks once (6).
  const auto dd = study.dredbox(WorkloadType::kRandom, 7.0);
  const double salvage = 1.0 - study.costs().salvage_fraction;
  const double expected = 2 * 128 * study.costs().compute_brick_cost * salvage +
                          1 * 128 * study.costs().memory_brick_cost * salvage;
  EXPECT_DOUBLE_EQ(dd.refresh_usd, expected);
}

TEST(RefreshStudyTest, EnergyFollowsFig13) {
  const RefreshStudy study{small_config()};
  // High RAM powers off most compute bricks: dReDBox energy well below
  // conventional.
  const auto conv = study.conventional(WorkloadType::kHighRam, 5.0);
  const auto dd = study.dredbox(WorkloadType::kHighRam, 5.0);
  EXPECT_LT(dd.energy_usd, 0.7 * conv.energy_usd);
  EXPECT_GT(dd.energy_usd, 0.0);
}

TEST(RefreshStudyTest, FiveYearSavingsOnEveryMix) {
  const RefreshStudy study{small_config()};
  for (WorkloadType type : all_workload_types()) {
    EXPECT_GT(study.savings(type, 5.0), 0.0) << to_string(type);
  }
}

TEST(RefreshStudyTest, SavingsGrowWithHorizon) {
  // The refresh advantage compounds: each server cycle re-buys DRAM the
  // brick model keeps.
  const RefreshStudy study{small_config()};
  const double y2 = study.savings(WorkloadType::kRandom, 2.0);
  const double y7 = study.savings(WorkloadType::kRandom, 7.0);
  EXPECT_GT(y7, y2);
}

TEST(RefreshStudyTest, TotalIsSumOfParts) {
  const RefreshStudy study{small_config()};
  const auto p = study.dredbox(WorkloadType::kHalfHalf, 5.0);
  EXPECT_DOUBLE_EQ(p.total(), p.capex_usd + p.refresh_usd + p.energy_usd);
}

TEST(RefreshStudyTest, Validation) {
  RefreshCosts bad;
  bad.server_refresh_years = 0;
  EXPECT_THROW(RefreshStudy(small_config(), bad), std::invalid_argument);
}

}  // namespace
}  // namespace dredbox::tco
