#include <gtest/gtest.h>

#include "sim/random.hpp"
#include "tco/conventional_dc.hpp"
#include "tco/disaggregated_dc.hpp"
#include "tco/workload.hpp"

namespace dredbox::tco {
namespace {

/// Properties under random VM streams from any Table I mix:
///  (1) neither datacenter ever over-commits a resource;
///  (2) the pool scheduler never *false-rejects*: while aggregate cores
///      and RAM suffice, it accepts (no internal fragmentation) — the
///      conventional scheduler has no such guarantee, which is the whole
///      Section VI argument;
///  (3) until the pools first saturate, they absorb at least as much
///      resource volume as the coupled servers (they accept a superset of
///      whatever the coupled servers accept).
class SchedulerPropertyTest
    : public ::testing::TestWithParam<std::tuple<WorkloadType, std::uint64_t>> {};

TEST_P(SchedulerPropertyTest, NoOvercommitNoFalseRejects) {
  const auto [type, seed] = GetParam();
  sim::Rng rng{seed};
  ConventionalDatacenter conv{16, 32, 32};
  DisaggregatedDatacenter dd{64, 8, 64, 8};
  const WorkloadGenerator gen{type};

  std::size_t dd_accepted = 0;
  bool dd_saturated = false;
  for (int i = 0; i < 400; ++i) {
    const VmSpec vm = gen.next(rng);
    const bool fits_aggregate = dd.used_cores() + vm.vcpus <= dd.total_cores() &&
                                dd.used_ram_gb() + vm.ram_gb <= dd.total_ram_gb();
    conv.schedule(vm);
    const bool dd_ok = dd.schedule(vm).has_value();
    if (dd_ok) ++dd_accepted;
    if (!dd_ok) dd_saturated = true;

    // (2) no false rejects in the pools.
    ASSERT_EQ(dd_ok, fits_aggregate) << to_string(type) << " vm " << i;

    // (1) capacity invariants.
    ASSERT_LE(conv.used_cores(), conv.total_cores());
    ASSERT_LE(conv.used_ram_gb(), conv.total_ram_gb());
    ASSERT_LE(dd.used_cores(), dd.total_cores());
    ASSERT_LE(dd.used_ram_gb(), dd.total_ram_gb());

    // (3) pre-saturation, the pools hold a superset of what the coupled
    // servers hold.
    if (!dd_saturated) {
      ASSERT_GE(dd.used_cores(), conv.used_cores());
      ASSERT_GE(dd.used_ram_gb(), conv.used_ram_gb());
    }
  }
  EXPECT_GT(dd_accepted, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    MixesAndSeeds, SchedulerPropertyTest,
    ::testing::Combine(::testing::ValuesIn(all_workload_types()),
                       ::testing::Values(3u, 41u, 127u)),
    [](const auto& info) {
      std::string n = to_string(std::get<0>(info.param)) + "_seed" +
                      std::to_string(std::get<1>(info.param));
      for (auto& c : n) {
        if (c == ' ') c = '_';
      }
      return n;
    });

}  // namespace
}  // namespace dredbox::tco
