#include <gtest/gtest.h>

#include "tco/conventional_dc.hpp"
#include "tco/disaggregated_dc.hpp"

namespace dredbox::tco {
namespace {

TEST(ConventionalDcTest, FirstFitPacksInOrder) {
  ConventionalDatacenter dc{3, 32, 32};
  EXPECT_EQ(dc.schedule({16, 16}), 0u);
  EXPECT_EQ(dc.schedule({16, 16}), 0u);  // fills server 0
  EXPECT_EQ(dc.schedule({16, 16}), 1u);  // spills to server 1
  EXPECT_EQ(dc.idle_servers(), 1u);
  EXPECT_EQ(dc.active_servers(), 2u);
}

TEST(ConventionalDcTest, BothDimensionsMustFit) {
  ConventionalDatacenter dc{1, 32, 32};
  ASSERT_TRUE(dc.schedule({4, 28}));
  // 28 cores free but only 4 GB RAM free.
  EXPECT_FALSE(dc.schedule({8, 8}).has_value());
  EXPECT_TRUE(dc.schedule({8, 4}).has_value());
}

TEST(ConventionalDcTest, OversizedVmNeverFits) {
  ConventionalDatacenter dc{4, 32, 32};
  EXPECT_FALSE(dc.schedule({33, 1}).has_value());
  EXPECT_FALSE(dc.schedule({1, 33}).has_value());
}

TEST(ConventionalDcTest, CouplingStrandsResources) {
  // The Section VI fragmentation effect: RAM-heavy VMs strand cores.
  ConventionalDatacenter dc{4, 32, 32};
  int placed = 0;
  while (dc.schedule({4, 28})) ++placed;
  EXPECT_EQ(placed, 4);  // one per server (28+28 > 32)
  EXPECT_EQ(dc.idle_servers(), 0u);
  EXPECT_EQ(dc.used_cores(), 16u);       // 16 of 128 cores in use
  EXPECT_EQ(dc.used_ram_gb(), 112u);
}

TEST(ConventionalDcTest, AccountingAndReset) {
  ConventionalDatacenter dc{2, 32, 32};
  dc.schedule({8, 8});
  EXPECT_EQ(dc.scheduled_vms(), 1u);
  EXPECT_EQ(dc.total_cores(), 64u);
  EXPECT_EQ(dc.total_ram_gb(), 64u);
  dc.reset();
  EXPECT_EQ(dc.scheduled_vms(), 0u);
  EXPECT_EQ(dc.idle_servers(), 2u);
}

TEST(ConventionalDcTest, Validation) {
  EXPECT_THROW(ConventionalDatacenter(0, 32, 32), std::invalid_argument);
  EXPECT_THROW(ConventionalDatacenter(1, 0, 32), std::invalid_argument);
  EXPECT_THROW(ConventionalDatacenter(1, 32, 0), std::invalid_argument);
}

TEST(DisaggregatedDcTest, ResourcesAllocatedIndependently) {
  DisaggregatedDatacenter dc{4, 8, 4, 8};  // 32 cores, 32 GB
  auto p = dc.schedule({4, 28});
  ASSERT_TRUE(p.has_value());
  // RAM spans multiple memory bricks; cores sit on one compute brick.
  EXPECT_EQ(p->compute.size(), 1u);
  EXPECT_EQ(p->memory.size(), 4u);  // 28 GB over 8 GB bricks
  EXPECT_EQ(dc.used_cores(), 4u);
  EXPECT_EQ(dc.used_ram_gb(), 28u);
}

TEST(DisaggregatedDcTest, VmsCanSpanComputeBricks) {
  DisaggregatedDatacenter dc{4, 8, 4, 8};
  auto p = dc.schedule({20, 4});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->compute.size(), 3u);  // 8 + 8 + 4
}

TEST(DisaggregatedDcTest, PacksWarmBricksFirst) {
  DisaggregatedDatacenter dc{4, 8, 4, 8};
  ASSERT_TRUE(dc.schedule({2, 2}));
  ASSERT_TRUE(dc.schedule({2, 2}));
  // Both VMs share one compute brick and one memory brick.
  EXPECT_EQ(dc.idle_compute_bricks(), 3u);
  EXPECT_EQ(dc.idle_memory_bricks(), 3u);
}

TEST(DisaggregatedDcTest, AggregateShortageFailsAtomically) {
  DisaggregatedDatacenter dc{2, 8, 2, 8};  // 16 cores, 16 GB
  ASSERT_TRUE(dc.schedule({10, 10}));
  const auto before_cores = dc.used_cores();
  const auto before_ram = dc.used_ram_gb();
  EXPECT_FALSE(dc.schedule({8, 2}).has_value());   // cores short
  EXPECT_FALSE(dc.schedule({2, 8}).has_value());   // ram short
  EXPECT_EQ(dc.used_cores(), before_cores);  // no partial allocation
  EXPECT_EQ(dc.used_ram_gb(), before_ram);
}

TEST(DisaggregatedDcTest, IdleFractions) {
  DisaggregatedDatacenter dc{4, 8, 4, 8};
  dc.schedule({8, 4});
  EXPECT_DOUBLE_EQ(dc.idle_compute_fraction(), 0.75);
  EXPECT_DOUBLE_EQ(dc.idle_memory_fraction(), 0.75);
  EXPECT_DOUBLE_EQ(dc.idle_combined_fraction(), 0.75);
}

TEST(DisaggregatedDcTest, UnbalancedWorkloadLeavesOnePoolIdle) {
  // High-CPU VMs: memory bricks stay mostly idle -> can power off.
  DisaggregatedDatacenter dc{8, 8, 8, 8};  // 64 cores, 64 GB
  while (dc.schedule({8, 1})) {
  }
  EXPECT_EQ(dc.idle_compute_bricks(), 0u);
  EXPECT_GE(dc.idle_memory_bricks(), 7u);  // 8 GB demand fits one brick
}

TEST(DisaggregatedDcTest, Validation) {
  EXPECT_THROW(DisaggregatedDatacenter(0, 8, 4, 8), std::invalid_argument);
  EXPECT_THROW(DisaggregatedDatacenter(4, 0, 4, 8), std::invalid_argument);
  EXPECT_THROW(DisaggregatedDatacenter(4, 8, 0, 8), std::invalid_argument);
  EXPECT_THROW(DisaggregatedDatacenter(4, 8, 4, 0), std::invalid_argument);
}

TEST(DisaggregatedDcTest, Reset) {
  DisaggregatedDatacenter dc{2, 8, 2, 8};
  dc.schedule({4, 4});
  dc.reset();
  EXPECT_EQ(dc.used_cores(), 0u);
  EXPECT_EQ(dc.used_ram_gb(), 0u);
  EXPECT_EQ(dc.scheduled_vms(), 0u);
}

}  // namespace
}  // namespace dredbox::tco
