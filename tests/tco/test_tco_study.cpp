#include "tco/tco_study.hpp"

#include <gtest/gtest.h>

namespace dredbox::tco {
namespace {

TcoConfig small_config() {
  TcoConfig cfg;
  cfg.servers = 32;
  cfg.repetitions = 3;
  return cfg;
}

TEST(TcoStudyTest, DatacentersHoldEqualAggregates) {
  const TcoConfig cfg = small_config();
  // Fig. 11: same aggregate compute and memory on both sides.
  EXPECT_EQ(cfg.compute_bricks() * cfg.cores_per_compute_brick,
            cfg.servers * cfg.cores_per_server);
  EXPECT_EQ(cfg.memory_bricks() * cfg.ram_gb_per_memory_brick,
            cfg.servers * cfg.ram_gb_per_server);
}

TEST(TcoStudyTest, MisalignedBrickSizesRejected) {
  TcoConfig cfg;
  cfg.cores_per_compute_brick = 5;  // does not divide 32
  EXPECT_THROW(TcoStudy{cfg}, std::invalid_argument);
}

TEST(TcoStudyTest, ServerEquivalentPowerIsBrickSum) {
  const TcoConfig cfg = small_config();
  // 4 compute bricks + 4 memory bricks per server-equivalent.
  EXPECT_DOUBLE_EQ(cfg.server_equivalent_w(),
                   4 * cfg.power.compute_brick_w + 4 * cfg.power.memory_brick_w);
}

TEST(TcoStudyTest, HighRamPowersOffMostComputeBricks) {
  const TcoStudy study{small_config()};
  const PowerOffRow row = study.run_poweroff(WorkloadType::kHighRam);
  // The Fig. 12 headline: up to ~88% of dCOMPUBRICKs can be powered off
  // on RAM-bound mixes, while the conventional DC strands its cores
  // inside busy servers.
  EXPECT_GT(row.dd_compute_off, 0.75);
  EXPECT_LT(row.conventional_off, 0.20);
  EXPECT_LT(row.dd_memory_off, 0.25);  // memory pool is the busy one
}

TEST(TcoStudyTest, HighCpuPowersOffMostMemoryBricks) {
  const TcoStudy study{small_config()};
  const PowerOffRow row = study.run_poweroff(WorkloadType::kHighCpu);
  EXPECT_GT(row.dd_memory_off, 0.75);
  EXPECT_LT(row.dd_compute_off, 0.25);
  EXPECT_LT(row.conventional_off, 0.20);
}

TEST(TcoStudyTest, BalancedMixesGiveLittleAdvantage) {
  const TcoStudy study{small_config()};
  const PowerOffRow row = study.run_poweroff(WorkloadType::kHalfHalf);
  // Balanced demand: both datacenters pack comparably.
  EXPECT_LT(row.dd_combined_off - row.conventional_off, 0.25);
}

TEST(TcoStudyTest, DisaggregatedNeverWorseOnCombinedPowerOff) {
  const TcoStudy study{small_config()};
  for (const auto& row : study.run_poweroff_all()) {
    EXPECT_GE(row.dd_combined_off, row.conventional_off - 0.05)
        << to_string(row.workload);
  }
}

TEST(TcoStudyTest, UnbalancedMixesSaveRoughlyHalfTheEnergy) {
  const TcoStudy study{small_config()};
  const PowerRow high_ram = study.run_power(WorkloadType::kHighRam);
  const PowerRow high_cpu = study.run_power(WorkloadType::kHighCpu);
  // Fig. 13: "almost 50% energy savings depending on the workload".
  EXPECT_GT(high_ram.savings(), 0.35);
  EXPECT_LT(high_ram.savings(), 0.65);
  EXPECT_GT(high_cpu.savings(), 0.35);
  EXPECT_LT(high_cpu.savings(), 0.70);
}

TEST(TcoStudyTest, HalfHalfSavesLittle) {
  const TcoStudy study{small_config()};
  const PowerRow row = study.run_power(WorkloadType::kHalfHalf);
  EXPECT_LT(row.savings(), 0.15);
  EXPECT_DOUBLE_EQ(row.conventional_norm, 1.0);
}

TEST(TcoStudyTest, FewVmsDroppedFromEitherDatacenter) {
  const TcoStudy study{small_config()};
  for (const auto& row : study.run_poweroff_all()) {
    EXPECT_LT(row.dd_dropped, 1.0) << to_string(row.workload);
    // Conventional fragmentation may drop a handful on tight mixes, but
    // the bounded workload (85%) should mostly fit.
    EXPECT_LT(row.conventional_dropped / std::max(1.0, row.vms_scheduled), 0.15)
        << to_string(row.workload);
  }
}

TEST(TcoStudyTest, DeterministicForFixedSeed) {
  const TcoStudy study{small_config()};
  const PowerOffRow a = study.run_poweroff(WorkloadType::kRandom);
  const PowerOffRow b = study.run_poweroff(WorkloadType::kRandom);
  EXPECT_DOUBLE_EQ(a.dd_combined_off, b.dd_combined_off);
  EXPECT_DOUBLE_EQ(a.conventional_off, b.conventional_off);
}

TEST(TcoStudyTest, RunsAllSixMixes) {
  const TcoStudy study{small_config()};
  EXPECT_EQ(study.run_poweroff_all().size(), 6u);
  EXPECT_EQ(study.run_power_all().size(), 6u);
}

TEST(TcoStudyTest, DescribeMatchesFig11) {
  const TcoStudy study{small_config()};
  const std::string d = study.describe_datacenters();
  EXPECT_NE(d.find("32 servers"), std::string::npos);
  EXPECT_NE(d.find("128 dCOMPUBRICKs"), std::string::npos);
  EXPECT_NE(d.find("equal aggregates"), std::string::npos);
}

}  // namespace
}  // namespace dredbox::tco
