// Export determinism: the observability pipeline must be a pure function
// of (config, seed). Two same-seed load sessions render byte-identical
// OpenMetrics text and run-report JSON — including under a fault plan and
// with sampler periods that do not divide the window evenly — and turning
// tracing on or off must not perturb the op-stream digest.

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "core/scenario.hpp"
#include "sim/run_report.hpp"
#include "workload/engine.hpp"
#include "workload/tenant.hpp"

namespace dredbox {
namespace {

constexpr std::uint64_t kGiB = 1ull << 30;

workload::TenantSpec small_tenant() {
  workload::TenantSpec spec;
  spec.name = "obs";
  spec.vms = 2;
  spec.local_bytes = kGiB;
  spec.remote_bytes = kGiB;
  spec.rate_hz = 20000.0;
  return spec;
}

struct RenderedRun {
  std::string openmetrics;
  std::string report;
  std::uint64_t digest = 0;
  std::uint64_t retries = 0;
};

/// One full load session rendered to its export surfaces. A fresh rack is
/// built per call so the two runs being compared share nothing but the
/// configuration.
RenderedRun run_once(std::uint64_t seed, sim::Time sample_period,
                     const std::string& fault_spec, bool tracing = true) {
  core::ScenarioBuilder builder;
  builder.racks(1, 2, 2)
      .compute_local_memory_bytes(16ull * kGiB)
      .memory_pool_bytes(64ull * kGiB)
      .seed(seed);
  if (tracing) builder.telemetry();
  if (!fault_spec.empty()) builder.fault_plan(fault_spec);
  core::Scenario rack = builder.build();

  workload::WorkloadConfig config;
  config.tenants = {small_tenant()};
  config.duration = sim::Time::ms(5);
  config.sample_period = sample_period;
  workload::WorkloadEngine engine{rack.datacenter(), config};
  workload::WorkloadResult result = engine.run();

  RenderedRun out;
  out.openmetrics = result.timeseries.to_openmetrics();
  out.report =
      workload::make_run_report(rack.datacenter(), config, result, "test", fault_spec)
          .to_json();
  out.digest = result.digest;
  out.retries = result.retries;
  return out;
}

TEST(ObservabilityDeterminism, SameSeedRendersIdenticalArtifacts) {
  // 700 us does not divide the 5 ms window: the sampler's last tick lands
  // short of the edge and the renders must still agree byte for byte.
  const RenderedRun a = run_once(7, sim::Time::us(700), "");
  const RenderedRun b = run_once(7, sim::Time::us(700), "");
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.openmetrics, b.openmetrics);
  EXPECT_EQ(a.report, b.report);
  EXPECT_NE(a.openmetrics.find("# EOF"), std::string::npos);
  EXPECT_NE(a.report.find("\"schema\": \"dredbox-report/v1\""), std::string::npos);
}

TEST(ObservabilityDeterminism, DifferentSeedsDiverge) {
  const RenderedRun a = run_once(7, sim::Time::us(700), "");
  const RenderedRun b = run_once(8, sim::Time::us(700), "");
  EXPECT_NE(a.digest, b.digest);
}

TEST(ObservabilityDeterminism, HoldsUnderFaultPlan) {
  // A long flap plus a congestion burst: wherever they land relative to
  // the boot-delayed window, both runs must see exactly the same thing.
  const std::string plan = "link-flap@1ms+2000ms;congestion@2ms+2000ms:magnitude=4";
  const RenderedRun a = run_once(11, sim::Time::us(500), plan);
  const RenderedRun b = run_once(11, sim::Time::us(500), plan);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.openmetrics, b.openmetrics);
  EXPECT_EQ(a.report, b.report);
  EXPECT_NE(a.report.find("link-flap@1ms+2000ms"), std::string::npos);
}

TEST(ObservabilityDeterminism, TracingOnOrOffSameOpStreamDigest) {
  // The tracer must observe, never steer: disabling it (ids not consumed,
  // spans dropped) cannot change what the workload did.
  const RenderedRun traced = run_once(13, sim::Time::zero(), "", /*tracing=*/true);
  const RenderedRun dark = run_once(13, sim::Time::zero(), "", /*tracing=*/false);
  EXPECT_EQ(traced.digest, dark.digest);
}

TEST(ObservabilityDeterminism, SamplingDoesNotPerturbTheRun) {
  const RenderedRun sampled = run_once(17, sim::Time::us(250), "");
  const RenderedRun unsampled = run_once(17, sim::Time::zero(), "");
  EXPECT_EQ(sampled.digest, unsampled.digest);
}

TEST(PreferOpticalAttach, IntraTrayPairsGetCircuits) {
  // One tray: the placement is forcibly intra-tray, which normally rides
  // the electrical backplane. The knob must route it through the optical
  // switch instead.
  core::Scenario rack = core::ScenarioBuilder{}
                            .racks(1, 2, 2)
                            .compute_local_memory_bytes(16ull * kGiB)
                            .memory_pool_bytes(64ull * kGiB)
                            .seed(3)
                            .prefer_optical()
                            .build();
  auto& dc = rack.datacenter();
  const auto vm = dc.boot_vm("optical-guest", 2, 2ull * kGiB);
  ASSERT_TRUE(vm.ok) << vm.error;
  const auto up = dc.scale_up(vm.vm, vm.compute, 2ull * kGiB);
  ASSERT_TRUE(up.ok) << up.error;
  const auto attachments = dc.fabric().attachments_of(vm.compute);
  ASSERT_FALSE(attachments.empty());
  EXPECT_EQ(attachments.front().medium, memsys::LinkMedium::kOptical);
}

TEST(PreferOpticalAttach, DefaultStillUsesElectricalIntraTray) {
  core::Scenario rack = core::ScenarioBuilder{}
                            .racks(1, 2, 2)
                            .compute_local_memory_bytes(16ull * kGiB)
                            .memory_pool_bytes(64ull * kGiB)
                            .seed(3)
                            .build();
  auto& dc = rack.datacenter();
  const auto vm = dc.boot_vm("electrical-guest", 2, 2ull * kGiB);
  ASSERT_TRUE(vm.ok) << vm.error;
  const auto up = dc.scale_up(vm.vm, vm.compute, 2ull * kGiB);
  ASSERT_TRUE(up.ok) << up.error;
  const auto attachments = dc.fabric().attachments_of(vm.compute);
  ASSERT_FALSE(attachments.empty());
  EXPECT_EQ(attachments.front().medium, memsys::LinkMedium::kElectrical);
}

TEST(PreferOpticalAttach, KnobIsPartOfTheConfigDigest) {
  core::DatacenterConfig plain;
  core::DatacenterConfig optical;
  optical.prefer_optical_attach = true;
  EXPECT_NE(plain.digest(), optical.digest());
}

}  // namespace
}  // namespace dredbox
