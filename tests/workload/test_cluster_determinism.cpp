#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/scenario.hpp"
#include "sim/digest.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "workload/cluster.hpp"

namespace dredbox::workload {
namespace {

struct RunSpec {
  std::size_t racks = 2;
  std::uint64_t seed = 1;
  double cross_share = 0.2;
  bool fault = false;
  sim::Time window = sim::Time::us(300);
};

core::ScenarioBuilder make_builder(const RunSpec& spec) {
  core::ScenarioBuilder builder;
  builder.add_racks(spec.racks, core::RackSpec{1, 2, 2, 0})
      .cross_rack_share(spec.cross_share)
      .seed(spec.seed);
  if (spec.fault) {
    // Kill rack 0's spine uplink in the middle of the window.
    builder.spine_fault(0, spec.window / 3, spec.window / 3);
  }
  return builder;
}

WorkloadConfig make_workload(const RunSpec& spec) {
  WorkloadConfig config;
  config.duration = spec.window;
  config.drain_grace = sim::Time::us(200);
  config.power_samples = 0;
  for (std::size_t r = 0; r < spec.racks; ++r) {
    TenantSpec tenant;
    tenant.name = "rack" + std::to_string(r);
    tenant.home_rack = r;
    tenant.vms = 1;
    tenant.local_bytes = 256ull << 20;
    tenant.remote_bytes = 1ull << 30;
    tenant.loop = LoopMode::kClosed;
    tenant.outstanding = 2;
    tenant.rate_hz = 100000.0;
    tenant.mix = {0.6, 0.4, 0.0};
    config.tenants.push_back(tenant);
  }
  return config;
}

ClusterResult run_once(const RunSpec& spec, std::size_t threads) {
  core::Scenario scenario = make_builder(spec).build();
  ClusterEngine engine{scenario.cluster(), make_workload(spec)};
  return engine.run(threads);
}

TEST(ClusterDeterminismTest, ParallelDigestsMatchSequentialAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RunSpec spec;
    spec.seed = seed;
    const ClusterResult reference = run_once(spec, 1);
    EXPECT_GT(reference.completed, 0u) << "seed " << seed;
    EXPECT_GT(reference.cross_ops, 0u) << "seed " << seed;
    for (std::size_t threads : {2u, 4u}) {
      const ClusterResult parallel = run_once(spec, threads);
      EXPECT_EQ(parallel.digest, reference.digest)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(parallel.completed, reference.completed)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(ClusterDeterminismTest, SeedsActuallyChangeTheSchedule) {
  RunSpec a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(run_once(a, 1).digest, run_once(b, 1).digest);
}

TEST(ClusterDeterminismTest, SingleRackClusterIsDegenerate) {
  RunSpec spec;
  spec.racks = 1;
  spec.cross_share = 0.5;  // no peers: must never produce cross traffic
  const ClusterResult reference = run_once(spec, 1);
  const ClusterResult parallel = run_once(spec, 4);
  EXPECT_EQ(parallel.digest, reference.digest);
  EXPECT_EQ(reference.cross_ops, 0u);
  EXPECT_EQ(reference.spine_tx_messages, 0u);
  EXPECT_GT(reference.completed, 0u);
}

TEST(ClusterDeterminismTest, FourRackTopologyHoldsTheProperty) {
  RunSpec spec;
  spec.racks = 4;
  spec.seed = 7;
  spec.cross_share = 0.3;
  spec.window = sim::Time::us(200);
  const ClusterResult reference = run_once(spec, 1);
  EXPECT_GT(reference.cross_ops, 0u);
  for (std::size_t threads : {2u, 4u}) {
    EXPECT_EQ(run_once(spec, threads).digest, reference.digest) << "threads " << threads;
  }
}

TEST(ClusterDeterminismTest, MidWindowSpineFaultStaysDeterministic) {
  RunSpec spec;
  spec.seed = 3;
  spec.fault = true;
  const ClusterResult reference = run_once(spec, 1);
  EXPECT_GT(reference.spine_fail_fast, 0u)
      << "the fault window must actually reject traffic";
  for (std::size_t threads : {2u, 4u}) {
    const ClusterResult parallel = run_once(spec, threads);
    EXPECT_EQ(parallel.digest, reference.digest) << "threads " << threads;
    EXPECT_EQ(parallel.spine_fail_fast, reference.spine_fail_fast) << "threads " << threads;
  }

  RunSpec healthy = spec;
  healthy.fault = false;
  EXPECT_NE(run_once(healthy, 1).digest, reference.digest)
      << "the fault must leave a mark on the schedule";
}

/// Integer-totals canonical digest for the perturbation audit. The full
/// op-stream digest folds completions in dispatch order, and same-tick
/// completions of *different* VMs may legitimately fold in either order —
/// so the audit pins the outcome totals, which a tie-order dependence in
/// the simulation proper (lost ops, double completions, divergent fault
/// hits) would still break.
std::uint64_t canonical(const ClusterResult& result) {
  sim::Digest d;
  d.update(result.offered)
      .update(result.completed)
      .update(result.failed)
      .update(result.retries)
      .update(result.cross_ops)
      .update(result.spine_tx_messages)
      .update(result.spine_fail_fast);
  for (const WorkloadResult& rack : result.racks) {
    d.update("rack")
        .update(static_cast<std::uint64_t>(rack.vms_booted))
        .update(rack.offered)
        .update(rack.completed)
        .update(rack.failed)
        .update(rack.reads)
        .update(rack.writes)
        .update(rack.cross_ops);
  }
  return d.value();
}

TEST(ClusterDeterminismTest, SixteenSchedulePerturbationsLeaveOutcomesIntact) {
  RunSpec spec;
  spec.seed = 5;
  spec.window = sim::Time::us(200);
  const std::uint64_t baseline = canonical(run_once(spec, 2));

  constexpr sim::SchedulePerturbation::Mode kCycle[] = {
      sim::SchedulePerturbation::Mode::kReverse,
      sim::SchedulePerturbation::Mode::kRotate,
      sim::SchedulePerturbation::Mode::kShuffle,
      sim::SchedulePerturbation::Mode::kIdentity,
  };
  for (int i = 1; i <= 16; ++i) {
    sim::SchedulePerturbation perturbation;
    perturbation.mode = kCycle[(i - 1) % 4];
    perturbation.seed = 100 + static_cast<std::uint64_t>(i);

    core::Scenario scenario = make_builder(spec).build();
    for (std::size_t r = 0; r < scenario.cluster().size(); ++r) {
      scenario.cluster().rack(r).simulator().queue().set_perturbation(perturbation);
    }
    ClusterEngine engine{scenario.cluster(), make_workload(spec)};
    EXPECT_EQ(canonical(engine.run(2)), baseline)
        << "perturbation " << i << " (" << perturbation.to_string() << ")";
  }
}

}  // namespace
}  // namespace dredbox::workload
