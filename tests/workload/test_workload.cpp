// Workload engine: tenant-spec validation, arrival pacing, offered-load
// calibration and the exact-replay determinism digest the sweep runner's
// parallel-vs-sequential check depends on.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "workload/engine.hpp"
#include "workload/tenant.hpp"

namespace dredbox {
namespace {

constexpr std::uint64_t kGiB = 1ull << 30;

bool mentions(const std::vector<std::string>& errors, const std::string& needle) {
  return std::any_of(errors.begin(), errors.end(), [&](const std::string& e) {
    return e.find(needle) != std::string::npos;
  });
}

/// A rack roomy enough for every tenant shape below.
core::Scenario make_rack(std::uint64_t seed = 1) {
  return core::ScenarioBuilder{}
      .racks(1, 2, 2)
      .compute_local_memory_bytes(16ull * kGiB)
      .memory_pool_bytes(64ull * kGiB)
      .seed(seed)
      .build();
}

workload::TenantSpec small_tenant() {
  workload::TenantSpec spec;
  spec.name = "t";
  spec.vms = 2;
  spec.local_bytes = kGiB;
  spec.remote_bytes = kGiB;  // hotplug blocks are 1 GiB; keep it aligned
  spec.rate_hz = 20000.0;
  return spec;
}

// --- spec validation ---

TEST(TenantSpec, DefaultIsValid) {
  EXPECT_TRUE(workload::TenantSpec{}.errors().empty());
}

TEST(TenantSpec, ErrorsNameTheOffendingField) {
  workload::TenantSpec spec;
  spec.name = "web";
  spec.vms = 0;
  spec.rate_hz = 0.0;
  spec.mix = {0.0, 0.0, 0.0};
  const auto errors = spec.errors();
  EXPECT_TRUE(mentions(errors, "web.vms"));
  EXPECT_TRUE(mentions(errors, "web.rate_hz"));
  EXPECT_TRUE(mentions(errors, "web.mix"));
}

TEST(TenantSpec, RejectsRequestsLargerThanTheWindow) {
  workload::TenantSpec spec;
  spec.remote_bytes = 1024;
  spec.op_bytes = 4096;
  spec.mix.dma = 0.1;
  spec.dma_bytes = 1ull << 20;
  const auto errors = spec.errors();
  EXPECT_TRUE(mentions(errors, "op_bytes"));
  EXPECT_TRUE(mentions(errors, "dma_bytes"));
}

TEST(TenantSpec, ClosedLoopNeedsAWindow) {
  workload::TenantSpec spec;
  spec.loop = workload::LoopMode::kClosed;
  spec.outstanding = 0;
  EXPECT_TRUE(mentions(spec.errors(), "outstanding"));
}

TEST(TenantSpec, MmppChecksOnlyApplyToMmpp) {
  workload::TenantSpec spec;
  spec.mmpp.burst_multiplier = 0.5;
  spec.arrivals = workload::ArrivalProcess::kPoisson;
  EXPECT_TRUE(spec.errors().empty());
  spec.arrivals = workload::ArrivalProcess::kMmpp;
  EXPECT_TRUE(mentions(spec.errors(), "mmpp.burst_multiplier"));
}

TEST(WorkloadConfig, AggregatesTenantErrorsAndOwnFields) {
  workload::WorkloadConfig config;
  config.duration = sim::Time::zero();
  const auto empty_errors = config.errors();
  EXPECT_TRUE(mentions(empty_errors, "tenants:"));
  EXPECT_TRUE(mentions(empty_errors, "duration:"));

  workload::TenantSpec bad = small_tenant();
  bad.vcpus = 0;
  config.tenants.push_back(bad);
  EXPECT_TRUE(mentions(config.errors(), "t.vcpus"));
}

TEST(WorkloadEngine, CtorThrowsListingEveryError) {
  auto rack = make_rack();
  workload::WorkloadConfig config;  // no tenants
  config.drain_grace = sim::Time::ms(-1);
  try {
    workload::WorkloadEngine engine{rack.datacenter(), config};
    FAIL() << "engine accepted an invalid config";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("invalid WorkloadConfig"), std::string::npos);
    EXPECT_NE(what.find("tenants:"), std::string::npos);
    EXPECT_NE(what.find("drain_grace:"), std::string::npos);
  }
}

// --- arrival pacing ---

TEST(ArrivalClock, PoissonGapsAverageTheConfiguredRate) {
  workload::TenantSpec spec = small_tenant();
  spec.rate_hz = 10000.0;  // mean gap 100 us
  sim::Rng rng{42};
  workload::ArrivalClock clock{spec, rng};
  double total_s = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total_s += clock.next_gap(sim::Time::zero()).as_sec();
  const double mean_gap_us = total_s / n * 1e6;
  EXPECT_NEAR(mean_gap_us, 100.0, 5.0);  // ±5% over 20k draws
}

TEST(ArrivalClock, MmppVisitsBothStatesAndBurstsRunFaster) {
  workload::TenantSpec spec = small_tenant();
  spec.arrivals = workload::ArrivalProcess::kMmpp;
  spec.rate_hz = 10000.0;
  spec.mmpp.burst_multiplier = 8.0;
  sim::Rng rng{7};
  workload::ArrivalClock clock{spec, rng};

  sim::Time now;
  double quiet_total = 0.0, burst_total = 0.0;
  int quiet_n = 0, burst_n = 0;
  for (int i = 0; i < 50000; ++i) {
    const sim::Time gap = clock.next_gap(now);
    if (clock.in_burst()) {
      burst_total += gap.as_sec();
      ++burst_n;
    } else {
      quiet_total += gap.as_sec();
      ++quiet_n;
    }
    now = now + gap;
  }
  ASSERT_GT(quiet_n, 100);
  ASSERT_GT(burst_n, 100);
  const double quiet_mean = quiet_total / quiet_n;
  const double burst_mean = burst_total / burst_n;
  // Burst gaps should be ~8x shorter on average; accept a generous band.
  EXPECT_GT(quiet_mean / burst_mean, 4.0);
}

// --- engine end-to-end ---

TEST(WorkloadEngine, OpenLoopOfferedLoadMatchesConfiguredRate) {
  auto rack = make_rack();
  workload::WorkloadConfig config;
  workload::TenantSpec spec = small_tenant();
  spec.loop = workload::LoopMode::kOpen;
  spec.rate_hz = 50000.0;
  spec.mix.dma = 0.0;  // keep it to sync ops for a clean rate check
  config.tenants.push_back(spec);
  config.duration = sim::Time::ms(10);

  workload::WorkloadEngine engine{rack.datacenter(), config};
  const auto result = engine.run();

  EXPECT_EQ(result.vms_requested, 2u);
  EXPECT_EQ(result.vms_booted, 2u);
  EXPECT_EQ(result.boot_failures, 0u);
  EXPECT_EQ(result.scale_up_failures, 0u);

  // 2 VMs x 50 kHz x 10 ms = 1000 expected arrivals; Poisson noise over
  // 1000 events has sigma ~ sqrt(1000) ~ 32, so ±15% is comfortable.
  const double expected = spec.rate_hz * 2 * config.duration.as_sec();
  EXPECT_GT(static_cast<double>(result.offered), expected * 0.85);
  EXPECT_LT(static_cast<double>(result.offered), expected * 1.15);
  EXPECT_NEAR(result.offered_rate_hz(), expected / config.duration.as_sec(),
              expected * 0.15 / config.duration.as_sec());

  // Without faults every request lands.
  EXPECT_EQ(result.completed, result.offered);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.reads + result.writes, result.offered);
  EXPECT_FALSE(result.latency_us.empty());
  EXPECT_GT(result.latency_us.percentile(50), 0.0);
  EXPECT_NE(result.digest, 0u);
}

TEST(WorkloadEngine, ClosedLoopKeepsOutstandingWindowsBusy) {
  auto rack = make_rack();
  workload::WorkloadConfig config;
  workload::TenantSpec spec = small_tenant();
  spec.vms = 1;
  spec.loop = workload::LoopMode::kClosed;
  spec.outstanding = 4;
  spec.rate_hz = 100000.0;  // 10 us think time
  spec.mix = {0.6, 0.3, 0.1};
  config.tenants.push_back(spec);
  config.duration = sim::Time::ms(5);

  workload::WorkloadEngine engine{rack.datacenter(), config};
  const auto result = engine.run();

  EXPECT_GT(result.offered, 0u);
  EXPECT_GT(result.completed, 0u);
  EXPECT_GT(result.dmas, 0u);
  EXPECT_FALSE(result.dma_latency_us.empty());
  // Drain grace lets the closed-loop tail land: nothing in flight is lost.
  EXPECT_EQ(result.completed + result.failed, result.offered);
}

TEST(WorkloadEngine, PowerSamplesCoverTheWindow) {
  auto rack = make_rack();
  workload::WorkloadConfig config;
  config.tenants.push_back(small_tenant());
  config.duration = sim::Time::ms(2);
  config.power_samples = 8;
  workload::WorkloadEngine engine{rack.datacenter(), config};
  const auto result = engine.run();
  EXPECT_FALSE(result.power_w.empty());
  EXPECT_GT(result.power_w.mean(), 0.0);
}

TEST(WorkloadEngine, SameSeedSameDigestDifferentSeedDiffers) {
  workload::WorkloadConfig config;
  workload::TenantSpec spec = small_tenant();
  spec.mix = {0.6, 0.3, 0.1};  // exercise all three op kinds
  config.tenants.push_back(spec);
  config.duration = sim::Time::ms(3);

  auto run_with_seed = [&](std::uint64_t seed) {
    auto rack = make_rack(seed);
    workload::WorkloadEngine engine{rack.datacenter(), config};
    return engine.run();
  };

  const auto a = run_with_seed(11);
  const auto b = run_with_seed(11);
  const auto c = run_with_seed(12);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_NE(a.digest, c.digest);
}

TEST(WorkloadEngine, RunIsSingleShot) {
  auto rack = make_rack();
  workload::WorkloadConfig config;
  config.tenants.push_back(small_tenant());
  config.duration = sim::Time::ms(1);
  workload::WorkloadEngine engine{rack.datacenter(), config};
  engine.run();
  EXPECT_THROW(engine.run(), std::logic_error);
}

// --- horizon-boundary accounting (ISSUE 9 satellite) ---
//
// The generation window is END-EXCLUSIVE: [t0, t0 + duration). An issue
// that would land at exactly t0 + duration (or later) is never offered —
// start_streams schedules only first-issues strictly before the end,
// chained arrivals/think-times re-check `next < end`, and the issue
// handlers bail on `now >= end`. These tests pin that semantic and the
// accounting identity it implies.

TEST(WorkloadEngine, OneTickWindowIssuesNothing) {
  // With a 1 ns window, every first arrival (t0 + gap, gap >= 1 tick at
  // any sane rate) lands at or past the end and must be suppressed: the
  // boundary is exclusive, so the run offers zero ops yet still boots,
  // drains, and reduces cleanly.
  auto rack = make_rack();
  workload::WorkloadConfig config;
  workload::TenantSpec spec = small_tenant();
  spec.mix.dma = 0.0;
  config.tenants.push_back(spec);
  config.duration = sim::Time::ns(1);
  config.power_samples = 0;
  workload::WorkloadEngine engine{rack.datacenter(), config};
  const auto result = engine.run();
  EXPECT_EQ(result.vms_booted, 2u);
  EXPECT_EQ(result.offered, 0u);
  EXPECT_EQ(result.completed, 0u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_TRUE(result.latency_us.empty());
  EXPECT_NE(result.digest, 0u) << "the totals fold still runs on an empty window";
}

TEST(WorkloadEngine, EveryOfferedOpIsAccountedExactlyOnceAtTheHorizon) {
  // Offered == completed + failed after the drain, for a mix that includes
  // open-loop arrivals, closed-loop windows and DMA transfers: no op
  // issued near the boundary is double-counted or lost, and every sync
  // completion contributed exactly one latency sample.
  for (const std::uint64_t seed : {3u, 17u, 91u}) {
    auto rack = make_rack(seed);
    workload::WorkloadConfig config;
    workload::TenantSpec closed = small_tenant();
    closed.name = "closed";
    closed.mix = {0.6, 0.3, 0.1};
    closed.outstanding = 2;
    workload::TenantSpec open = small_tenant();
    open.name = "open";
    open.loop = workload::LoopMode::kOpen;
    open.rate_hz = 30000.0;
    open.mix = {0.7, 0.3, 0.0};
    config.tenants.push_back(closed);
    config.tenants.push_back(open);
    config.duration = sim::Time::ms(4);

    workload::WorkloadEngine engine{rack.datacenter(), config};
    const auto result = engine.run();
    EXPECT_GT(result.offered, 0u);
    EXPECT_EQ(result.completed + result.failed, result.offered)
        << "seed " << seed << ": ops lost or double-counted at the horizon";
    EXPECT_EQ(result.reads + result.writes + result.dmas, result.offered)
        << "seed " << seed;
    EXPECT_EQ(result.latency_us.count() + result.dma_latency_us.count(),
              result.completed)
        << "seed " << seed << ": every completion reduces to exactly one sample";
  }
}

TEST(WorkloadEngine, OpMixShiftsTrafficShape) {
  workload::WorkloadConfig config;
  workload::TenantSpec spec = small_tenant();
  spec.loop = workload::LoopMode::kOpen;
  spec.rate_hz = 50000.0;
  spec.mix = {1.0, 0.0, 0.0};  // reads only
  config.tenants.push_back(spec);
  config.duration = sim::Time::ms(5);

  auto rack = make_rack();
  workload::WorkloadEngine engine{rack.datacenter(), config};
  const auto result = engine.run();
  EXPECT_GT(result.reads, 0u);
  EXPECT_EQ(result.writes, 0u);
  EXPECT_EQ(result.dmas, 0u);
}

}  // namespace
}  // namespace dredbox
