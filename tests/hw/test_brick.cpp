#include "hw/brick.hpp"

#include <gtest/gtest.h>

#include "hw/compute_brick.hpp"

namespace dredbox::hw {
namespace {

ComputeBrick make_brick(std::size_t ports = 8) {
  ComputeBrickConfig cfg;
  cfg.transceiver_ports = ports;
  return ComputeBrick{BrickId{1}, TrayId{1}, cfg};
}

TEST(BrickTest, ConstructionPopulatesPorts) {
  auto b = make_brick(6);
  EXPECT_EQ(b.port_count(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(b.port(i).circuit_based);
    EXPECT_FALSE(b.port(i).connected);
    EXPECT_EQ(b.port(i).id, PortId{static_cast<std::uint32_t>(i)});
  }
}

TEST(BrickTest, KindAndDescribe) {
  auto b = make_brick();
  EXPECT_EQ(b.kind(), BrickKind::kCompute);
  EXPECT_NE(b.describe().find("dCOMPUBRICK"), std::string::npos);
  EXPECT_EQ(to_string(BrickKind::kMemory), "dMEMBRICK");
  EXPECT_EQ(to_string(BrickKind::kAccelerator), "dACCELBRICK");
}

TEST(BrickTest, PowerStateTransitions) {
  auto b = make_brick();
  EXPECT_EQ(b.power_state(), PowerState::kIdle);
  b.set_active(true);
  EXPECT_EQ(b.power_state(), PowerState::kActive);
  b.set_active(false);
  EXPECT_EQ(b.power_state(), PowerState::kIdle);
  b.power_off();
  EXPECT_EQ(b.power_state(), PowerState::kOff);
  EXPECT_FALSE(b.is_powered());
  b.power_on();
  EXPECT_TRUE(b.is_powered());
}

TEST(BrickTest, SetActiveWhileOffThrows) {
  auto b = make_brick();
  b.power_off();
  EXPECT_THROW(b.set_active(true), std::logic_error);
}

TEST(BrickTest, PowerOffWithConnectedPortThrows) {
  auto b = make_brick();
  b.port(0).connected = true;
  EXPECT_THROW(b.power_off(), std::logic_error);
  b.port(0).connected = false;
  EXPECT_NO_THROW(b.power_off());
}

TEST(BrickTest, FindFreePortSkipsConnected) {
  auto b = make_brick(3);
  b.port(0).connected = true;
  TransceiverPort* p = b.find_free_port(true);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->id, PortId{1});
  EXPECT_EQ(b.free_port_count(true), 2u);
}

TEST(BrickTest, FindFreePortByKind) {
  auto b = make_brick(4);
  b.dedicate_packet_ports(2);
  EXPECT_EQ(b.free_port_count(false), 2u);
  EXPECT_EQ(b.free_port_count(true), 2u);
  TransceiverPort* pbn = b.find_free_port(false);
  ASSERT_NE(pbn, nullptr);
  EXPECT_FALSE(pbn->circuit_based);
}

TEST(BrickTest, AllPortsBusyReturnsNull) {
  auto b = make_brick(2);
  b.port(0).connected = true;
  b.port(1).connected = true;
  EXPECT_EQ(b.find_free_port(true), nullptr);
}

TEST(BrickTest, DedicatePacketPortsValidation) {
  auto b = make_brick(4);
  EXPECT_THROW(b.dedicate_packet_ports(5), std::invalid_argument);
  b.port(0).connected = true;
  EXPECT_THROW(b.dedicate_packet_ports(1), std::logic_error);
}

TEST(IdTest, ValidityAndComparison) {
  BrickId invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_EQ(invalid.to_string(), "<invalid>");
  BrickId a{3}, b{3}, c{4};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(a.to_string(), "3");
}

TEST(IdTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<BrickId, TrayId>);
  static_assert(!std::is_same_v<SegmentId, PortId>);
  SUCCEED();
}

}  // namespace
}  // namespace dredbox::hw
