#include "hw/memory_brick.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace dredbox::hw {
namespace {

MemoryBrick make_brick(std::uint64_t capacity = 32ull << 30) {
  MemoryBrickConfig cfg;
  cfg.capacity_bytes = capacity;
  return MemoryBrick{BrickId{2}, TrayId{1}, cfg};
}

TEST(MemoryBrickTest, FreshBrickIsEmpty) {
  auto b = make_brick();
  EXPECT_EQ(b.allocated_bytes(), 0u);
  EXPECT_EQ(b.free_bytes(), 32ull << 30);
  EXPECT_EQ(b.largest_free_extent(), 32ull << 30);
  EXPECT_TRUE(b.segments().empty());
}

TEST(MemoryBrickTest, AllocateCarvesSegment) {
  auto b = make_brick();
  auto seg = b.allocate(4ull << 30, BrickId{1});
  ASSERT_TRUE(seg.has_value());
  EXPECT_EQ(seg->size, 4ull << 30);
  EXPECT_EQ(seg->owner, BrickId{1});
  EXPECT_EQ(b.allocated_bytes(), 4ull << 30);
  EXPECT_EQ(b.free_bytes(), 28ull << 30);
}

TEST(MemoryBrickTest, AllocationsDoNotOverlap) {
  auto b = make_brick();
  auto s1 = b.allocate(1ull << 30, BrickId{1});
  auto s2 = b.allocate(1ull << 30, BrickId{1});
  ASSERT_TRUE(s1 && s2);
  EXPECT_NE(s1->id, s2->id);
  const bool disjoint = s1->end() <= s2->base || s2->end() <= s1->base;
  EXPECT_TRUE(disjoint);
}

TEST(MemoryBrickTest, OversizedAllocationFailsCleanly) {
  auto b = make_brick(2ull << 30);
  EXPECT_FALSE(b.allocate(3ull << 30, BrickId{1}).has_value());
  EXPECT_EQ(b.allocated_bytes(), 0u);
}

TEST(MemoryBrickTest, ZeroAllocationThrows) {
  auto b = make_brick();
  EXPECT_THROW(b.allocate(0, BrickId{1}), std::invalid_argument);
}

TEST(MemoryBrickTest, ReleaseReturnsCapacity) {
  auto b = make_brick();
  auto seg = b.allocate(8ull << 30, BrickId{1});
  ASSERT_TRUE(seg);
  EXPECT_TRUE(b.release(seg->id));
  EXPECT_EQ(b.allocated_bytes(), 0u);
  EXPECT_EQ(b.largest_free_extent(), 32ull << 30);
  EXPECT_FALSE(b.release(seg->id));  // double release
}

TEST(MemoryBrickTest, FreeListCoalesces) {
  auto b = make_brick(4ull << 30);
  auto s1 = b.allocate(1ull << 30, BrickId{1});
  auto s2 = b.allocate(1ull << 30, BrickId{1});
  auto s3 = b.allocate(1ull << 30, BrickId{1});
  auto s4 = b.allocate(1ull << 30, BrickId{1});
  ASSERT_TRUE(s1 && s2 && s3 && s4);
  EXPECT_EQ(b.largest_free_extent(), 0u);
  // Release alternating then the middle: should coalesce back to one run.
  b.release(s2->id);
  b.release(s4->id);
  EXPECT_EQ(b.largest_free_extent(), 1ull << 30);
  b.release(s3->id);
  EXPECT_EQ(b.largest_free_extent(), 3ull << 30);
  b.release(s1->id);
  EXPECT_EQ(b.largest_free_extent(), 4ull << 30);
}

TEST(MemoryBrickTest, FragmentationBlocksLargeAllocation) {
  auto b = make_brick(3ull << 30);
  auto s1 = b.allocate(1ull << 30, BrickId{1});
  auto s2 = b.allocate(1ull << 30, BrickId{1});
  auto s3 = b.allocate(1ull << 30, BrickId{1});
  ASSERT_TRUE(s1 && s2 && s3);
  b.release(s1->id);
  b.release(s3->id);
  // 2 GiB free but only 1 GiB contiguous.
  EXPECT_EQ(b.free_bytes(), 2ull << 30);
  EXPECT_EQ(b.largest_free_extent(), 1ull << 30);
  EXPECT_FALSE(b.allocate(2ull << 30, BrickId{1}).has_value());
}

TEST(MemoryBrickTest, BytesOwnedByTracksPerConsumer) {
  auto b = make_brick();
  b.allocate(2ull << 30, BrickId{1});
  b.allocate(3ull << 30, BrickId{5});
  b.allocate(1ull << 30, BrickId{1});
  EXPECT_EQ(b.bytes_owned_by(BrickId{1}), 3ull << 30);
  EXPECT_EQ(b.bytes_owned_by(BrickId{5}), 3ull << 30);
  EXPECT_EQ(b.bytes_owned_by(BrickId{7}), 0u);
}

TEST(MemoryBrickTest, ActiveWhenHoldingSegments) {
  auto b = make_brick();
  EXPECT_EQ(b.power_state(), PowerState::kIdle);
  auto seg = b.allocate(1ull << 30, BrickId{1});
  EXPECT_EQ(b.power_state(), PowerState::kActive);
  b.release(seg->id);
  EXPECT_EQ(b.power_state(), PowerState::kIdle);
}

TEST(MemoryBrickTest, TechnologyNames) {
  EXPECT_EQ(to_string(MemoryTechnology::kDdr4), "DDR4");
  EXPECT_EQ(to_string(MemoryTechnology::kHmc), "HMC");
}

TEST(MemoryBrickTest, ConfigValidation) {
  MemoryBrickConfig cfg;
  cfg.capacity_bytes = 0;
  EXPECT_THROW(MemoryBrick(BrickId{1}, TrayId{1}, cfg), std::invalid_argument);
  cfg.capacity_bytes = 1 << 30;
  cfg.memory_controllers = 0;
  EXPECT_THROW(MemoryBrick(BrickId{1}, TrayId{1}, cfg), std::invalid_argument);
}

/// Property: after any interleaving of allocations and releases, the
/// accounting identities hold and no two live segments overlap.
class MemoryBrickPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MemoryBrickPropertyTest, AccountingInvariants) {
  sim::Rng rng{GetParam()};
  auto b = make_brick(16ull << 30);
  std::vector<SegmentId> live;
  for (int step = 0; step < 300; ++step) {
    if (live.empty() || rng.chance(0.6)) {
      const std::uint64_t size = (1ull << 20)
                                 << static_cast<std::uint64_t>(rng.uniform_int(0, 10));
      auto seg = b.allocate(size, BrickId{1});
      if (seg) live.push_back(seg->id);
    } else {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      EXPECT_TRUE(b.release(live[idx]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    // Identity: allocated + free == capacity.
    EXPECT_EQ(b.allocated_bytes() + b.free_bytes(), b.capacity_bytes());
    // Identity: sum of live segment sizes == allocated.
    std::uint64_t sum = 0;
    for (const auto& s : b.segments()) sum += s.size;
    EXPECT_EQ(sum, b.allocated_bytes());
    // No overlap among live segments.
    const auto& segs = b.segments();
    for (std::size_t i = 0; i < segs.size(); ++i) {
      for (std::size_t j = i + 1; j < segs.size(); ++j) {
        const bool disjoint =
            segs[i].end() <= segs[j].base || segs[j].end() <= segs[i].base;
        ASSERT_TRUE(disjoint);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryBrickPropertyTest,
                         ::testing::Values(3u, 7u, 11u, 19u, 23u, 31u));

}  // namespace
}  // namespace dredbox::hw
