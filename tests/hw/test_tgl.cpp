#include "hw/tgl.hpp"

#include <gtest/gtest.h>

namespace dredbox::hw {
namespace {

RmstEntry entry(std::uint32_t seg, std::uint64_t base, std::uint64_t size,
                std::uint64_t dest_base) {
  RmstEntry e;
  e.segment = SegmentId{seg};
  e.base = base;
  e.size = size;
  e.dest_brick = BrickId{4};
  e.dest_base = dest_base;
  e.out_port = PortId{2};
  e.circuit = CircuitId{5};
  return e;
}

TEST(TglTest, RouteTranslatesAddress) {
  TransactionGlueLogic tgl;
  tgl.rmst().insert(entry(1, 0x10000, 0x1000, 0x500000));
  auto route = tgl.route(0x10123);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->entry->segment, SegmentId{1});
  EXPECT_EQ(route->remote_addr, 0x500123u);
  EXPECT_EQ(route->entry->out_port, PortId{2});
}

TEST(TglTest, MissReturnsNullopt) {
  TransactionGlueLogic tgl;
  tgl.rmst().insert(entry(1, 0x10000, 0x1000, 0x500000));
  EXPECT_FALSE(tgl.route(0x20000).has_value());
}

TEST(TglTest, CountersTrackHitsAndMisses) {
  TransactionGlueLogic tgl;
  tgl.rmst().insert(entry(1, 0x10000, 0x1000, 0));
  tgl.route(0x10000);
  tgl.route(0x10FFF);
  tgl.route(0x99999);
  EXPECT_EQ(tgl.hits(), 2u);
  EXPECT_EQ(tgl.misses(), 1u);
  tgl.reset_counters();
  EXPECT_EQ(tgl.hits(), 0u);
  EXPECT_EQ(tgl.misses(), 0u);
}

TEST(TglTest, MultipleSegmentsRouteIndependently) {
  TransactionGlueLogic tgl;
  tgl.rmst().insert(entry(1, 0x10000, 0x1000, 0xA0000));
  tgl.rmst().insert(entry(2, 0x20000, 0x1000, 0xB0000));
  auto r1 = tgl.route(0x10800);
  auto r2 = tgl.route(0x20800);
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(r1->remote_addr, 0xA0800u);
  EXPECT_EQ(r2->remote_addr, 0xB0800u);
}

TEST(TglTest, RouteAfterRemoveMisses) {
  TransactionGlueLogic tgl;
  tgl.rmst().insert(entry(1, 0x10000, 0x1000, 0));
  ASSERT_TRUE(tgl.route(0x10000).has_value());
  tgl.rmst().remove(SegmentId{1});
  EXPECT_FALSE(tgl.route(0x10000).has_value());
}

TEST(TglTest, CustomRmstCapacity) {
  TransactionGlueLogic tgl{4};
  EXPECT_EQ(tgl.rmst().capacity(), 4u);
}

}  // namespace
}  // namespace dredbox::hw
