#include "hw/accel_brick.hpp"

#include <gtest/gtest.h>

namespace dredbox::hw {
namespace {

AcceleratorBrick make_brick() { return AcceleratorBrick{BrickId{3}, TrayId{1}}; }

Bitstream make_bitstream(const std::string& name = "sobel", std::uint64_t size = 16 << 20) {
  Bitstream bs;
  bs.name = name;
  bs.size_bytes = size;
  bs.kernel_ops_per_sec = 2e9;
  return bs;
}

TEST(AccelBrickTest, FreshBrickHasEmptySlot) {
  auto b = make_brick();
  EXPECT_FALSE(b.active_accelerator().has_value());
  EXPECT_EQ(b.active_bitstream(), nullptr);
  EXPECT_TRUE(b.stored_bitstreams().empty());
}

TEST(AccelBrickTest, StoreAndListBitstreams) {
  auto b = make_brick();
  b.store_bitstream(make_bitstream("a"));
  b.store_bitstream(make_bitstream("b"));
  EXPECT_TRUE(b.has_bitstream("a"));
  EXPECT_TRUE(b.has_bitstream("b"));
  EXPECT_FALSE(b.has_bitstream("c"));
  EXPECT_EQ(b.stored_bitstreams().size(), 2u);
}

TEST(AccelBrickTest, StoreValidation) {
  auto b = make_brick();
  EXPECT_THROW(b.store_bitstream(make_bitstream("", 100)), std::invalid_argument);
  EXPECT_THROW(b.store_bitstream(make_bitstream("x", 0)), std::invalid_argument);
}

TEST(AccelBrickTest, ReconfigureLoadsSlot) {
  auto b = make_brick();
  b.store_bitstream(make_bitstream("sobel", 40 << 20));
  const double seconds = b.reconfigure("sobel");
  EXPECT_EQ(b.active_accelerator(), "sobel");
  ASSERT_NE(b.active_bitstream(), nullptr);
  // 40 MiB over 400 MB/s PCAP ~ 0.105 s.
  EXPECT_NEAR(seconds, static_cast<double>(40 << 20) / 400e6, 1e-9);
  EXPECT_EQ(b.registers().status, 1u);
}

TEST(AccelBrickTest, ReconfigureUnknownThrows) {
  auto b = make_brick();
  EXPECT_THROW(b.reconfigure("ghost"), std::logic_error);
}

TEST(AccelBrickTest, ReconfigureWhilePoweredOffThrows) {
  auto b = make_brick();
  b.store_bitstream(make_bitstream());
  b.power_off();
  EXPECT_THROW(b.reconfigure("sobel"), std::logic_error);
}

TEST(AccelBrickTest, ReconfigureSwapsAccelerators) {
  auto b = make_brick();
  b.store_bitstream(make_bitstream("a"));
  b.store_bitstream(make_bitstream("b"));
  b.reconfigure("a");
  b.reconfigure("b");
  EXPECT_EQ(b.active_accelerator(), "b");
}

TEST(AccelBrickTest, OffloadRunsKernel) {
  auto b = make_brick();
  b.store_bitstream(make_bitstream("k", 1 << 20));
  b.reconfigure("k");
  const double seconds = b.offload(4'000'000'000ull);
  EXPECT_NEAR(seconds, 2.0, 1e-9);  // 4e9 ops at 2e9 ops/s
  EXPECT_EQ(b.registers().processed_items, 4'000'000'000ull);
  EXPECT_EQ(b.registers().status, 1u);
}

TEST(AccelBrickTest, OffloadWithoutAcceleratorThrows) {
  auto b = make_brick();
  EXPECT_THROW(b.offload(100), std::logic_error);
}

TEST(AccelBrickTest, BadPcapBandwidthRejected) {
  AccelBrickConfig cfg;
  cfg.pcap_bandwidth_bytes_per_sec = 0;
  EXPECT_THROW(AcceleratorBrick(BrickId{1}, TrayId{1}, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace dredbox::hw
