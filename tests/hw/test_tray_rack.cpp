#include <gtest/gtest.h>

#include "hw/rack.hpp"

namespace dredbox::hw {
namespace {

TEST(TrayTest, PlugAndUnplug) {
  Tray tray{TrayId{1}, 4};
  EXPECT_EQ(tray.free_slots(), 4u);
  const std::size_t slot = tray.plug(BrickId{10});
  EXPECT_EQ(slot, 0u);
  EXPECT_TRUE(tray.hosts(BrickId{10}));
  EXPECT_EQ(tray.occupied_slots(), 1u);
  EXPECT_TRUE(tray.unplug(BrickId{10}));
  EXPECT_FALSE(tray.hosts(BrickId{10}));
  EXPECT_FALSE(tray.unplug(BrickId{10}));
}

TEST(TrayTest, FullTrayRejectsPlug) {
  Tray tray{TrayId{1}, 2};
  tray.plug(BrickId{1});
  tray.plug(BrickId{2});
  EXPECT_THROW(tray.plug(BrickId{3}), std::logic_error);
}

TEST(TrayTest, DoublePlugRejected) {
  Tray tray{TrayId{1}, 4};
  tray.plug(BrickId{1});
  EXPECT_THROW(tray.plug(BrickId{1}), std::logic_error);
}

TEST(TrayTest, UnplugFreesSlotForReuse) {
  Tray tray{TrayId{1}, 1};
  tray.plug(BrickId{1});
  tray.unplug(BrickId{1});
  EXPECT_NO_THROW(tray.plug(BrickId{2}));
}

TEST(TrayTest, Validation) {
  EXPECT_THROW(Tray(TrayId{1}, 0), std::invalid_argument);
  Tray tray{TrayId{1}, 2};
  EXPECT_THROW(tray.plug(BrickId{}), std::invalid_argument);
}

TEST(RackTest, BuildMixedRack) {
  Rack rack;
  const TrayId t1 = rack.add_tray(8);
  const TrayId t2 = rack.add_tray(8);
  auto& cb = rack.add_compute_brick(t1);
  auto& mb = rack.add_memory_brick(t1);
  auto& ab = rack.add_accelerator_brick(t2);
  EXPECT_EQ(rack.brick_count(), 3u);
  EXPECT_EQ(rack.tray_count(), 2u);
  EXPECT_TRUE(rack.tray(t1).hosts(cb.id()));
  EXPECT_TRUE(rack.tray(t1).hosts(mb.id()));
  EXPECT_TRUE(rack.tray(t2).hosts(ab.id()));
}

TEST(RackTest, TypedAccessorsEnforceKind) {
  Rack rack;
  const TrayId t = rack.add_tray();
  auto& cb = rack.add_compute_brick(t);
  auto& mb = rack.add_memory_brick(t);
  EXPECT_NO_THROW(rack.compute_brick(cb.id()));
  EXPECT_NO_THROW(rack.memory_brick(mb.id()));
  EXPECT_THROW(rack.memory_brick(cb.id()), std::logic_error);
  EXPECT_THROW(rack.compute_brick(mb.id()), std::logic_error);
  EXPECT_THROW(rack.brick(BrickId{999}), std::out_of_range);
}

TEST(RackTest, BricksOfKindSorted) {
  Rack rack;
  const TrayId t = rack.add_tray();
  rack.add_compute_brick(t);
  rack.add_memory_brick(t);
  rack.add_compute_brick(t);
  const auto computes = rack.bricks_of_kind(BrickKind::kCompute);
  EXPECT_EQ(computes.size(), 2u);
  EXPECT_LT(computes[0], computes[1]);
  EXPECT_EQ(rack.bricks_of_kind(BrickKind::kAccelerator).size(), 0u);
}

TEST(RackTest, Aggregates) {
  Rack rack;
  const TrayId t = rack.add_tray();
  ComputeBrickConfig cc;
  cc.apu_cores = 4;
  rack.add_compute_brick(t, cc);
  rack.add_compute_brick(t, cc);
  MemoryBrickConfig mc;
  mc.capacity_bytes = 16ull << 30;
  rack.add_memory_brick(t, mc);
  EXPECT_EQ(rack.total_compute_cores(), 8u);
  EXPECT_EQ(rack.total_pool_memory_bytes(), 16ull << 30);
}

TEST(RackTest, RemoveBrickChecksState) {
  Rack rack;
  const TrayId t = rack.add_tray();
  auto& cb = rack.add_compute_brick(t);
  const BrickId id = cb.id();  // cb dies with remove_brick below
  cb.reserve_cores(1);
  EXPECT_THROW(rack.remove_brick(id), std::logic_error);
  cb.release_cores(1);
  EXPECT_NO_THROW(rack.remove_brick(id));
  EXPECT_FALSE(rack.has_brick(id));
}

TEST(RackTest, RemoveMemoryBrickWithSegmentsRejected) {
  Rack rack;
  const TrayId t = rack.add_tray();
  auto& mb = rack.add_memory_brick(t);
  auto seg = mb.allocate(1ull << 30, BrickId{1});
  ASSERT_TRUE(seg);
  EXPECT_THROW(rack.remove_brick(mb.id()), std::logic_error);
  mb.release(seg->id);
  EXPECT_NO_THROW(rack.remove_brick(mb.id()));
}

TEST(RackTest, RemoveBrickWithConnectedPortRejected) {
  Rack rack;
  const TrayId t = rack.add_tray();
  auto& cb = rack.add_compute_brick(t);
  cb.port(0).connected = true;
  EXPECT_THROW(rack.remove_brick(cb.id()), std::logic_error);
}

TEST(RackTest, PowerDrawFollowsStates) {
  Rack rack;
  const TrayId t = rack.add_tray();
  auto& cb = rack.add_compute_brick(t);
  auto& mb = rack.add_memory_brick(t);
  PowerModel pm;
  // Both idle.
  EXPECT_DOUBLE_EQ(rack.power_draw_watts(pm),
                   pm.compute_brick_idle_w + pm.memory_brick_idle_w);
  // Compute active.
  cb.reserve_cores(1);
  EXPECT_DOUBLE_EQ(rack.power_draw_watts(pm),
                   pm.compute_brick_active_w + pm.memory_brick_idle_w);
  // Memory brick powered off.
  mb.power_off();
  EXPECT_DOUBLE_EQ(rack.power_draw_watts(pm), pm.compute_brick_active_w);
  // Switch ports add 100 mW each.
  EXPECT_DOUBLE_EQ(rack.power_draw_watts(pm, 10),
                   pm.compute_brick_active_w + 10 * pm.optical_switch_port_w);
}

TEST(RackTest, DescribeSummarizesInventory) {
  Rack rack;
  const TrayId t = rack.add_tray();
  rack.add_compute_brick(t);
  rack.add_memory_brick(t);
  const std::string d = rack.describe();
  EXPECT_NE(d.find("1 dCOMPUBRICKs"), std::string::npos);
  EXPECT_NE(d.find("1 dMEMBRICKs"), std::string::npos);
}

}  // namespace
}  // namespace dredbox::hw
