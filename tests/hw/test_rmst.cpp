#include "hw/rmst.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace dredbox::hw {
namespace {

RmstEntry entry(std::uint32_t seg, std::uint64_t base, std::uint64_t size) {
  RmstEntry e;
  e.segment = SegmentId{seg};
  e.base = base;
  e.size = size;
  e.dest_brick = BrickId{9};
  e.dest_base = 0x1000;
  e.out_port = PortId{0};
  e.circuit = CircuitId{1};
  return e;
}

TEST(RmstTest, InsertAndLookup) {
  Rmst rmst;
  rmst.insert(entry(1, 0x1000, 0x1000));
  auto hit = rmst.lookup(0x1800);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->segment, SegmentId{1});
  EXPECT_FALSE(rmst.lookup(0x0FFF).has_value());
  EXPECT_FALSE(rmst.lookup(0x2000).has_value());  // end is exclusive
}

TEST(RmstTest, LookupBoundaries) {
  Rmst rmst;
  rmst.insert(entry(1, 0x1000, 0x1000));
  EXPECT_TRUE(rmst.lookup(0x1000).has_value());   // first byte
  EXPECT_TRUE(rmst.lookup(0x1FFF).has_value());   // last byte
}

TEST(RmstTest, RejectsOverlap) {
  Rmst rmst;
  rmst.insert(entry(1, 0x1000, 0x1000));
  EXPECT_THROW(rmst.insert(entry(2, 0x1800, 0x1000)), std::logic_error);  // tail overlap
  EXPECT_THROW(rmst.insert(entry(2, 0x0800, 0x1000)), std::logic_error);  // head overlap
  EXPECT_THROW(rmst.insert(entry(2, 0x1200, 0x0100)), std::logic_error);  // contained
  EXPECT_THROW(rmst.insert(entry(2, 0x0000, 0x4000)), std::logic_error);  // containing
}

TEST(RmstTest, AdjacentWindowsAllowed) {
  Rmst rmst;
  rmst.insert(entry(1, 0x1000, 0x1000));
  EXPECT_NO_THROW(rmst.insert(entry(2, 0x2000, 0x1000)));
  EXPECT_NO_THROW(rmst.insert(entry(3, 0x0000, 0x1000)));
}

TEST(RmstTest, RejectsDuplicateSegment) {
  Rmst rmst;
  rmst.insert(entry(1, 0x1000, 0x1000));
  EXPECT_THROW(rmst.insert(entry(1, 0x9000, 0x1000)), std::logic_error);
}

TEST(RmstTest, RejectsDegenerateEntries) {
  Rmst rmst;
  EXPECT_THROW(rmst.insert(entry(1, 0x1000, 0)), std::invalid_argument);
  RmstEntry bad = entry(0, 0x1000, 0x100);
  bad.segment = SegmentId{};
  EXPECT_THROW(rmst.insert(bad), std::invalid_argument);
  EXPECT_THROW(rmst.insert(entry(2, UINT64_MAX - 10, 0x100)), std::invalid_argument);
}

TEST(RmstTest, CapacityEnforced) {
  Rmst rmst{2};
  rmst.insert(entry(1, 0x0000, 0x100));
  rmst.insert(entry(2, 0x1000, 0x100));
  EXPECT_TRUE(rmst.full());
  EXPECT_THROW(rmst.insert(entry(3, 0x2000, 0x100)), std::logic_error);
}

TEST(RmstTest, ZeroCapacityRejected) {
  EXPECT_THROW(Rmst{0}, std::invalid_argument);
}

TEST(RmstTest, RemoveFreesSlot) {
  Rmst rmst{1};
  rmst.insert(entry(1, 0x0000, 0x100));
  EXPECT_TRUE(rmst.remove(SegmentId{1}));
  EXPECT_FALSE(rmst.remove(SegmentId{1}));
  EXPECT_EQ(rmst.size(), 0u);
  EXPECT_NO_THROW(rmst.insert(entry(2, 0x0000, 0x100)));
}

TEST(RmstTest, FindSegment) {
  Rmst rmst;
  rmst.insert(entry(7, 0x5000, 0x800));
  auto found = rmst.find_segment(SegmentId{7});
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->base, 0x5000u);
  EXPECT_FALSE(rmst.find_segment(SegmentId{8}).has_value());
}

TEST(RmstTest, MappedBytes) {
  Rmst rmst;
  rmst.insert(entry(1, 0x0000, 0x100));
  rmst.insert(entry(2, 0x1000, 0x200));
  EXPECT_EQ(rmst.mapped_bytes(), 0x300u);
  rmst.remove(SegmentId{1});
  EXPECT_EQ(rmst.mapped_bytes(), 0x200u);
}

TEST(RmstTest, ClearEmptiesTable) {
  Rmst rmst;
  rmst.insert(entry(1, 0x0000, 0x100));
  rmst.clear();
  EXPECT_EQ(rmst.size(), 0u);
  EXPECT_FALSE(rmst.lookup(0x50).has_value());
}

/// Property: for randomly inserted non-overlapping windows, every address
/// inside a window resolves to that window and addresses in gaps miss.
class RmstPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RmstPropertyTest, LookupMatchesGroundTruth) {
  sim::Rng rng{GetParam()};
  Rmst rmst{32};
  std::vector<RmstEntry> truth;
  // Windows at 1 MiB-aligned slots so non-overlap is easy to guarantee.
  std::vector<std::uint64_t> slots;
  for (std::uint64_t s = 0; s < 64; ++s) slots.push_back(s << 20);
  rng.shuffle(slots);
  for (std::uint32_t i = 0; i < 20; ++i) {
    const std::uint64_t size = 1 + static_cast<std::uint64_t>(rng.uniform_int(0, (1 << 20) - 1));
    auto e = entry(i + 1, slots[i], size);
    rmst.insert(e);
    truth.push_back(e);
  }
  for (const auto& e : truth) {
    const std::uint64_t inside =
        e.base + static_cast<std::uint64_t>(rng.uniform_int(0, static_cast<std::int64_t>(e.size) - 1));
    auto hit = rmst.lookup(inside);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->segment, e.segment);
    if (e.size < (1 << 20)) {
      EXPECT_FALSE(rmst.lookup(e.base + e.size).has_value() &&
                   rmst.lookup(e.base + e.size)->segment == e.segment);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RmstPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace dredbox::hw
