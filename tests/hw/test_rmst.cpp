#include "hw/rmst.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace dredbox::hw {
namespace {

RmstEntry entry(std::uint32_t seg, std::uint64_t base, std::uint64_t size) {
  RmstEntry e;
  e.segment = SegmentId{seg};
  e.base = base;
  e.size = size;
  e.dest_brick = BrickId{9};
  e.dest_base = 0x1000;
  e.out_port = PortId{0};
  e.circuit = CircuitId{1};
  return e;
}

TEST(RmstTest, InsertAndLookup) {
  Rmst rmst;
  rmst.insert(entry(1, 0x1000, 0x1000));
  auto hit = rmst.lookup(0x1800);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->segment, SegmentId{1});
  EXPECT_FALSE(rmst.lookup(0x0FFF).has_value());
  EXPECT_FALSE(rmst.lookup(0x2000).has_value());  // end is exclusive
}

TEST(RmstTest, LookupBoundaries) {
  Rmst rmst;
  rmst.insert(entry(1, 0x1000, 0x1000));
  EXPECT_TRUE(rmst.lookup(0x1000).has_value());   // first byte
  EXPECT_TRUE(rmst.lookup(0x1FFF).has_value());   // last byte
}

TEST(RmstTest, RejectsOverlap) {
  Rmst rmst;
  rmst.insert(entry(1, 0x1000, 0x1000));
  EXPECT_THROW(rmst.insert(entry(2, 0x1800, 0x1000)), std::logic_error);  // tail overlap
  EXPECT_THROW(rmst.insert(entry(2, 0x0800, 0x1000)), std::logic_error);  // head overlap
  EXPECT_THROW(rmst.insert(entry(2, 0x1200, 0x0100)), std::logic_error);  // contained
  EXPECT_THROW(rmst.insert(entry(2, 0x0000, 0x4000)), std::logic_error);  // containing
}

TEST(RmstTest, AdjacentWindowsAllowed) {
  Rmst rmst;
  rmst.insert(entry(1, 0x1000, 0x1000));
  EXPECT_NO_THROW(rmst.insert(entry(2, 0x2000, 0x1000)));
  EXPECT_NO_THROW(rmst.insert(entry(3, 0x0000, 0x1000)));
}

TEST(RmstTest, RejectsDuplicateSegment) {
  Rmst rmst;
  rmst.insert(entry(1, 0x1000, 0x1000));
  EXPECT_THROW(rmst.insert(entry(1, 0x9000, 0x1000)), std::logic_error);
}

TEST(RmstTest, RejectsDegenerateEntries) {
  Rmst rmst;
  EXPECT_THROW(rmst.insert(entry(1, 0x1000, 0)), std::invalid_argument);
  RmstEntry bad = entry(0, 0x1000, 0x100);
  bad.segment = SegmentId{};
  EXPECT_THROW(rmst.insert(bad), std::invalid_argument);
  EXPECT_THROW(rmst.insert(entry(2, UINT64_MAX - 10, 0x100)), std::invalid_argument);
}

TEST(RmstTest, CapacityEnforced) {
  Rmst rmst{2};
  rmst.insert(entry(1, 0x0000, 0x100));
  rmst.insert(entry(2, 0x1000, 0x100));
  EXPECT_TRUE(rmst.full());
  EXPECT_THROW(rmst.insert(entry(3, 0x2000, 0x100)), std::logic_error);
}

TEST(RmstTest, ZeroCapacityRejected) {
  EXPECT_THROW(Rmst{0}, std::invalid_argument);
}

TEST(RmstTest, RemoveFreesSlot) {
  Rmst rmst{1};
  rmst.insert(entry(1, 0x0000, 0x100));
  EXPECT_TRUE(rmst.remove(SegmentId{1}));
  EXPECT_FALSE(rmst.remove(SegmentId{1}));
  EXPECT_EQ(rmst.size(), 0u);
  EXPECT_NO_THROW(rmst.insert(entry(2, 0x0000, 0x100)));
}

TEST(RmstTest, FindSegment) {
  Rmst rmst;
  rmst.insert(entry(7, 0x5000, 0x800));
  auto found = rmst.find_segment(SegmentId{7});
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->base, 0x5000u);
  EXPECT_FALSE(rmst.find_segment(SegmentId{8}).has_value());
}

TEST(RmstTest, MappedBytes) {
  Rmst rmst;
  rmst.insert(entry(1, 0x0000, 0x100));
  rmst.insert(entry(2, 0x1000, 0x200));
  EXPECT_EQ(rmst.mapped_bytes(), 0x300u);
  rmst.remove(SegmentId{1});
  EXPECT_EQ(rmst.mapped_bytes(), 0x200u);
}

TEST(RmstTest, ClearEmptiesTable) {
  Rmst rmst;
  rmst.insert(entry(1, 0x0000, 0x100));
  rmst.clear();
  EXPECT_EQ(rmst.size(), 0u);
  EXPECT_FALSE(rmst.lookup(0x50).has_value());
}

// ---------------------------------------------------------------------
// Boundary windows at the top of the address space. base + size == 2^64
// wraps the naive sum to 0 but the window itself is well-formed: its last
// byte is UINT64_MAX. Such windows must insert, look up, and participate
// in disjointness checks correctly.

TEST(RmstBoundaryTest, WindowEndingExactlyAtTopOfAddressSpace) {
  Rmst rmst;
  EXPECT_NO_THROW(rmst.insert(entry(1, UINT64_MAX - 0xFFF, 0x1000)));
  EXPECT_TRUE(rmst.lookup(UINT64_MAX).has_value());            // last byte
  EXPECT_TRUE(rmst.lookup(UINT64_MAX - 0xFFF).has_value());    // first byte
  EXPECT_FALSE(rmst.lookup(UINT64_MAX - 0x1000).has_value());  // one below
  EXPECT_NO_THROW(rmst.check_invariants());
}

TEST(RmstBoundaryTest, SingleByteWindowAtTopOfAddressSpace) {
  Rmst rmst;
  EXPECT_NO_THROW(rmst.insert(entry(1, UINT64_MAX, 1)));
  auto hit = rmst.lookup(UINT64_MAX);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->segment, SegmentId{1});
  EXPECT_FALSE(rmst.lookup(UINT64_MAX - 1).has_value());
  EXPECT_NO_THROW(rmst.check_invariants());
}

TEST(RmstBoundaryTest, WindowWhoseLastByteWrapsIsStillRejected) {
  Rmst rmst;
  // Last byte would be at 2^64 + 0xFE: genuinely malformed.
  EXPECT_THROW(rmst.insert(entry(1, UINT64_MAX - 10, 0x100)), std::invalid_argument);
  // Whole-space-and-then-some from a nonzero base.
  EXPECT_THROW(rmst.insert(entry(2, 0x1000, UINT64_MAX)), std::invalid_argument);
}

TEST(RmstBoundaryTest, TopWindowParticipatesInDisjointnessChecks) {
  Rmst rmst;
  rmst.insert(entry(1, UINT64_MAX - 0xFFF, 0x1000));
  // Overlapping the top window from below must still be caught even though
  // the top window's naive end wrapped to 0.
  EXPECT_THROW(rmst.insert(entry(2, UINT64_MAX - 0x17FF, 0x1000)), std::logic_error);
  // A second top-of-space window overlaps trivially.
  EXPECT_THROW(rmst.insert(entry(2, UINT64_MAX, 1)), std::logic_error);
  // Adjacent-below is fine (end-exclusive).
  EXPECT_NO_THROW(rmst.insert(entry(3, UINT64_MAX - 0x1FFF, 0x1000)));
  EXPECT_NO_THROW(rmst.check_invariants());
}

TEST(RmstBoundaryTest, WindowFitsHelper) {
  EXPECT_TRUE(window_fits(0, 1));
  EXPECT_TRUE(window_fits(0, UINT64_MAX));
  EXPECT_TRUE(window_fits(1, UINT64_MAX));         // ends exactly at 2^64
  EXPECT_TRUE(window_fits(UINT64_MAX, 1));         // last byte of the space
  EXPECT_FALSE(window_fits(UINT64_MAX, 2));        // wraps
  EXPECT_FALSE(window_fits(2, UINT64_MAX));        // wraps by one byte
}

TEST(RmstBoundaryTest, WindowsDisjointHelperAtTheTop) {
  // [MAX-0xFFF, 2^64) vs [MAX-0x1FFF, MAX-0xFFF): adjacent, disjoint.
  EXPECT_TRUE(windows_disjoint(UINT64_MAX - 0xFFF, 0x1000, UINT64_MAX - 0x1FFF, 0x1000));
  // Overlapping by one byte.
  EXPECT_FALSE(windows_disjoint(UINT64_MAX - 0xFFF, 0x1000, UINT64_MAX - 0x1FFF, 0x1001));
  // Same base always overlaps.
  EXPECT_FALSE(windows_disjoint(0x1000, 1, 0x1000, 1));
}

// ---------------------------------------------------------------------
// Error precedence: entry validation must run before table-state checks,
// so an invalid insert into a full table reports the real defect
// (invalid_argument) instead of "table full" (logic_error).

TEST(RmstErrorOrderTest, InvalidInsertIntoFullTableReportsInvalidArgument) {
  Rmst rmst{2};
  rmst.insert(entry(1, 0x0000, 0x100));
  rmst.insert(entry(2, 0x1000, 0x100));
  ASSERT_TRUE(rmst.full());
  EXPECT_THROW(rmst.insert(entry(3, 0x2000, 0)), std::invalid_argument);  // zero size
  RmstEntry bad = entry(3, 0x2000, 0x100);
  bad.segment = SegmentId{};
  EXPECT_THROW(rmst.insert(bad), std::invalid_argument);  // invalid id
  EXPECT_THROW(rmst.insert(entry(3, UINT64_MAX - 1, 0x100)),
               std::invalid_argument);  // wrapping window
  // A well-formed entry against the full table is the state error.
  EXPECT_THROW(rmst.insert(entry(3, 0x2000, 0x100)), std::logic_error);
  EXPECT_EQ(rmst.size(), 2u);  // no partial mutation from any rejected insert
}

TEST(RmstErrorOrderTest, StateConflictsAreLogicErrors) {
  Rmst rmst;
  rmst.insert(entry(1, 0x1000, 0x1000));
  EXPECT_THROW(rmst.insert(entry(1, 0x9000, 0x1000)), std::logic_error);  // duplicate id
  EXPECT_THROW(rmst.insert(entry(2, 0x1800, 0x1000)), std::logic_error);  // overlap
}

// ---------------------------------------------------------------------
// find(): pointer-returning fast path.

TEST(RmstFindTest, FindReturnsStablePointerIntoTable) {
  Rmst rmst;
  rmst.insert(entry(1, 0x1000, 0x1000));
  rmst.insert(entry(2, 0x4000, 0x1000));
  const RmstEntry* a = rmst.find(0x1800);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->segment, SegmentId{1});
  // Repeat lookup (MRU hit) returns the same pointer.
  EXPECT_EQ(rmst.find(0x1801), a);
  // The pointer aims into the entries() storage, not a copy.
  bool aliases = false;
  for (const auto& e : rmst.entries()) aliases = aliases || (&e == a);
  EXPECT_TRUE(aliases);
  EXPECT_EQ(rmst.find(0x3000), nullptr);  // gap
  // Alternating between segments breaks the MRU but still resolves.
  EXPECT_EQ(rmst.find(0x4000)->segment, SegmentId{2});
  EXPECT_EQ(rmst.find(0x1000)->segment, SegmentId{1});
}

TEST(RmstFindTest, FindSurvivesRemovalOfTheCachedEntry) {
  Rmst rmst;
  rmst.insert(entry(1, 0x1000, 0x1000));
  rmst.insert(entry(2, 0x4000, 0x1000));
  ASSERT_NE(rmst.find(0x4800), nullptr);  // prime the MRU with segment 2
  rmst.remove(SegmentId{2});
  EXPECT_EQ(rmst.find(0x4800), nullptr);  // stale MRU must not resurrect it
  ASSERT_NE(rmst.find(0x1800), nullptr);
  EXPECT_EQ(rmst.find(0x1800)->segment, SegmentId{1});
}

/// Property: for randomly inserted non-overlapping windows, every address
/// inside a window resolves to that window and addresses in gaps miss.
class RmstPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RmstPropertyTest, LookupMatchesGroundTruth) {
  sim::Rng rng{GetParam()};
  Rmst rmst{32};
  std::vector<RmstEntry> truth;
  // Windows at 1 MiB-aligned slots so non-overlap is easy to guarantee.
  std::vector<std::uint64_t> slots;
  for (std::uint64_t s = 0; s < 64; ++s) slots.push_back(s << 20);
  rng.shuffle(slots);
  for (std::uint32_t i = 0; i < 20; ++i) {
    const std::uint64_t size = 1 + static_cast<std::uint64_t>(rng.uniform_int(0, (1 << 20) - 1));
    auto e = entry(i + 1, slots[i], size);
    rmst.insert(e);
    truth.push_back(e);
  }
  for (const auto& e : truth) {
    const std::uint64_t inside =
        e.base + static_cast<std::uint64_t>(rng.uniform_int(0, static_cast<std::int64_t>(e.size) - 1));
    auto hit = rmst.lookup(inside);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->segment, e.segment);
    if (e.size < (1 << 20)) {
      EXPECT_FALSE(rmst.lookup(e.base + e.size).has_value() &&
                   rmst.lookup(e.base + e.size)->segment == e.segment);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RmstPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

/// The paper-faithful reference: a fully associative linear scan over the
/// valid-entry set. The interval index + MRU cache must agree with this
/// on every address, after every mutation.
const RmstEntry* linear_scan(const Rmst& rmst, std::uint64_t addr) {
  for (const auto& e : rmst.entries()) {
    if (e.contains(addr)) return &e;
  }
  return nullptr;
}

/// Equivalence property: drive a random insert/remove/lookup sequence and
/// check that the indexed find() (including its MRU cache, which the
/// repeated probes exercise) returns exactly what the linear scan returns.
class RmstEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RmstEquivalenceTest, IndexAndMruMatchLinearScan) {
  sim::Rng rng{GetParam()};
  Rmst rmst{32};
  // 1 MiB-aligned slots, the top one flush against the end of the address
  // space so the boundary window is part of the random mix.
  std::vector<std::uint64_t> slots;
  for (std::uint64_t s = 0; s < 47; ++s) slots.push_back(s << 20);
  slots.push_back(UINT64_MAX - ((1ull << 20) - 1));
  std::vector<std::size_t> installed;  // indices into slots
  std::uint32_t next_segment = 1;
  std::vector<std::uint32_t> slot_segment(slots.size(), 0);

  auto probe = [&](std::uint64_t addr) {
    const RmstEntry* expect = linear_scan(rmst, addr);
    const RmstEntry* got = rmst.find(addr);
    if (expect == nullptr) {
      ASSERT_EQ(got, nullptr) << "addr 0x" << std::hex << addr;
    } else {
      ASSERT_NE(got, nullptr) << "addr 0x" << std::hex << addr;
      EXPECT_EQ(got->segment, expect->segment);
    }
    // Probe twice: the second call takes the MRU fast path and must agree.
    EXPECT_EQ(rmst.find(addr), got);
  };

  for (int op = 0; op < 400; ++op) {
    const int kind = rng.uniform_int(0, 9);
    if (kind < 3 && installed.size() < slots.size() && !rmst.full()) {
      // Insert into a random free slot with a random size <= the slot pitch.
      std::size_t slot;
      do {
        slot = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(slots.size()) - 1));
      } while (slot_segment[slot] != 0);
      const auto size = 1 + static_cast<std::uint64_t>(rng.uniform_int(0, (1 << 20) - 1));
      rmst.insert(entry(next_segment, slots[slot], size));
      slot_segment[slot] = next_segment++;
      installed.push_back(slot);
    } else if (kind < 5 && !installed.empty()) {
      // Remove a random installed segment.
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(installed.size()) - 1));
      const std::size_t slot = installed[pick];
      ASSERT_TRUE(rmst.remove(SegmentId{slot_segment[slot]}));
      slot_segment[slot] = 0;
      installed.erase(installed.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      // Look up: half targeted at an installed slot, half anywhere.
      std::uint64_t addr;
      if (!installed.empty() && rng.uniform_int(0, 1) == 0) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(installed.size()) - 1));
        addr = slots[installed[pick]] +
               static_cast<std::uint64_t>(rng.uniform_int(0, (1 << 20) + 16));
      } else {
        addr = static_cast<std::uint64_t>(rng.uniform_int(0, 48)) << 20;
        addr += static_cast<std::uint64_t>(rng.uniform_int(0, (1 << 20) - 1));
      }
      probe(addr);
    }
  }
  // Final sweep: every slot boundary and interior point agrees.
  for (std::size_t s = 0; s < slots.size(); ++s) {
    probe(slots[s]);
    probe(slots[s] + 1);
    probe(slots[s] + ((1ull << 20) - 1));
  }
  probe(UINT64_MAX);
  EXPECT_NO_THROW(rmst.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RmstEquivalenceTest,
                         ::testing::Values(7u, 11u, 23u, 42u, 1234u, 99991u));

}  // namespace
}  // namespace dredbox::hw
