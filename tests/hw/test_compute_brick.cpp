#include "hw/compute_brick.hpp"

#include <gtest/gtest.h>

namespace dredbox::hw {
namespace {

ComputeBrick make_brick() { return ComputeBrick{BrickId{1}, TrayId{1}}; }

TEST(ComputeBrickTest, DefaultsMatchZynqUltrascale) {
  auto b = make_brick();
  EXPECT_EQ(b.apu_cores(), 4u);           // quad-core A53 APU
  EXPECT_EQ(b.config().rpu_cores, 2u);    // dual-core R5 RPU
  EXPECT_EQ(b.port_count(), 8u);          // GTH lanes
  EXPECT_EQ(b.kind(), BrickKind::kCompute);
}

TEST(ComputeBrickTest, CoreReservation) {
  auto b = make_brick();
  EXPECT_EQ(b.cores_free(), 4u);
  b.reserve_cores(3);
  EXPECT_EQ(b.cores_in_use(), 3u);
  EXPECT_EQ(b.cores_free(), 1u);
  EXPECT_EQ(b.power_state(), PowerState::kActive);
  b.release_cores(3);
  EXPECT_EQ(b.cores_free(), 4u);
  EXPECT_EQ(b.power_state(), PowerState::kIdle);
}

TEST(ComputeBrickTest, OverReservationThrows) {
  auto b = make_brick();
  b.reserve_cores(4);
  EXPECT_THROW(b.reserve_cores(1), std::logic_error);
  EXPECT_THROW(b.release_cores(5), std::logic_error);
}

TEST(ComputeBrickTest, ZeroCoreConfigRejected) {
  ComputeBrickConfig cfg;
  cfg.apu_cores = 0;
  EXPECT_THROW(ComputeBrick(BrickId{1}, TrayId{1}, cfg), std::invalid_argument);
}

TEST(ComputeBrickTest, RemoteAddressDecode) {
  auto b = make_brick();
  const std::uint64_t base = b.config().remote_window_base;
  EXPECT_FALSE(b.is_remote_address(0));
  EXPECT_FALSE(b.is_remote_address(base - 1));
  EXPECT_TRUE(b.is_remote_address(base));
  EXPECT_TRUE(b.is_remote_address(base + (1ull << 30)));
}

TEST(ComputeBrickTest, FindRemoteWindowStartsAtBase) {
  auto b = make_brick();
  EXPECT_EQ(b.find_remote_window(1ull << 30), b.config().remote_window_base);
}

TEST(ComputeBrickTest, FindRemoteWindowSkipsMappedRanges) {
  auto b = make_brick();
  const std::uint64_t base = b.config().remote_window_base;
  RmstEntry e;
  e.segment = SegmentId{1};
  e.base = base;
  e.size = 2ull << 30;
  e.dest_brick = BrickId{9};
  b.tgl().rmst().insert(e);
  EXPECT_EQ(b.find_remote_window(1ull << 30), base + (2ull << 30));
}

TEST(ComputeBrickTest, FindRemoteWindowFillsGaps) {
  auto b = make_brick();
  const std::uint64_t base = b.config().remote_window_base;
  RmstEntry lo;
  lo.segment = SegmentId{1};
  lo.base = base;
  lo.size = 1ull << 30;
  lo.dest_brick = BrickId{9};
  RmstEntry hi;
  hi.segment = SegmentId{2};
  hi.base = base + (4ull << 30);
  hi.size = 1ull << 30;
  hi.dest_brick = BrickId{9};
  b.tgl().rmst().insert(lo);
  b.tgl().rmst().insert(hi);
  // A 3 GiB gap sits between the mappings; a 2 GiB request fits there.
  EXPECT_EQ(b.find_remote_window(2ull << 30), base + (1ull << 30));
  // An 8 GiB request does not fit in the gap and goes above.
  EXPECT_EQ(b.find_remote_window(8ull << 30), base + (5ull << 30));
}

TEST(ComputeBrickTest, DescribeResourcesMentionsCounts) {
  auto b = make_brick();
  b.reserve_cores(2);
  const std::string d = b.describe_resources();
  EXPECT_NE(d.find("cores=2/4"), std::string::npos);
  EXPECT_NE(d.find("rmst=0/"), std::string::npos);
}

}  // namespace
}  // namespace dredbox::hw
