#include <gtest/gtest.h>

#include "hyp/hypervisor.hpp"
#include "sim/random.hpp"

namespace dredbox::hyp {
namespace {

constexpr std::uint64_t kGiB = 1ull << 30;

/// Property suite: under any random interleaving of VM lifecycle,
/// expansion, shrink and balloon operations, the hypervisor's accounting
/// identities hold:
///   committed == sum of installed guest bytes
///   available == host_ram + ballooned - committed
///   cores_in_use == sum of guest vcpus
class HypervisorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  HypervisorPropertyTest()
      : brick_{hw::BrickId{1}, hw::TrayId{1}, config()}, os_{brick_}, hv_{brick_, os_} {}

  static hw::ComputeBrickConfig config() {
    hw::ComputeBrickConfig cfg;
    cfg.apu_cores = 8;
    cfg.local_memory_bytes = 8 * kGiB;
    return cfg;
  }

  void check_identities() {
    std::uint64_t installed = 0;
    std::size_t vcpus = 0;
    std::uint64_t ballooned = 0;
    for (hw::VmId id : hv_.vms()) {
      installed += hv_.vm(id).installed_bytes();
      vcpus += hv_.vm(id).vcpus();
      ballooned += hv_.vm(id).balloon_bytes();
    }
    ASSERT_EQ(hv_.committed_bytes(), installed);
    ASSERT_EQ(hv_.ballooned_bytes(), ballooned);
    ASSERT_EQ(brick_.cores_in_use(), vcpus);
    const std::uint64_t host = os_.total_ram_bytes() + ballooned;
    ASSERT_EQ(hv_.available_bytes(), host - hv_.committed_bytes());
    ASSERT_LE(hv_.committed_bytes(), host);
  }

  hw::ComputeBrick brick_;
  os::BareMetalOs os_;
  Hypervisor hv_;
};

TEST_P(HypervisorPropertyTest, AccountingSurvivesRandomOperations) {
  sim::Rng rng{GetParam()};
  std::vector<hw::VmId> vms;
  std::uint64_t next_remote_block = 0;
  std::uint32_t next_segment = 1;
  // (vm, segment) pairs whose DIMMs can be shrunk.
  std::vector<std::pair<hw::VmId, hw::SegmentId>> dimms;

  for (int step = 0; step < 400; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 5));
    switch (op) {
      case 0: {  // create
        const auto vcpus = static_cast<std::size_t>(rng.uniform_int(1, 3));
        const std::uint64_t mem = kGiB
                                  << static_cast<std::uint64_t>(rng.uniform_int(0, 1));
        auto vm = hv_.create_vm(vcpus, mem);
        if (vm) vms.push_back(*vm);
        break;
      }
      case 1: {  // destroy
        if (vms.empty()) break;
        const auto idx = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(vms.size()) - 1));
        EXPECT_TRUE(hv_.destroy_vm(vms[idx]));
        dimms.erase(std::remove_if(dimms.begin(), dimms.end(),
                                   [&](const auto& d) { return d.first == vms[idx]; }),
                    dimms.end());
        vms.erase(vms.begin() + static_cast<std::ptrdiff_t>(idx));
        break;
      }
      case 2: {  // hot-add + expand
        if (vms.empty()) break;
        const hw::VmId vm = vms[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(vms.size()) - 1))];
        const std::uint64_t size = kGiB;
        const std::uint64_t base =
            brick_.config().remote_window_base + next_remote_block * kGiB;
        os_.attach_remote_memory(base, size);
        ++next_remote_block;
        const hw::SegmentId seg{next_segment++};
        hv_.expand_vm_memory(vm, size, seg, sim::Time::ms(step));
        dimms.emplace_back(vm, seg);
        break;
      }
      case 3: {  // shrink a previously expanded DIMM (legal only when the
                 // balloon leaves room — the kernel cannot offline frames
                 // the balloon holds)
        if (dimms.empty()) break;
        const auto idx = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(dimms.size()) - 1));
        const auto& guest = hv_.vm(dimms[idx].first);
        if (guest.balloon_bytes() + kGiB > guest.installed_bytes()) break;
        hv_.shrink_vm_memory(dimms[idx].first, dimms[idx].second);
        dimms.erase(dimms.begin() + static_cast<std::ptrdiff_t>(idx));
        break;
      }
      case 4: {  // balloon reclaim
        if (vms.empty()) break;
        const hw::VmId vm = vms[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(vms.size()) - 1))];
        if (hv_.vm(vm).usable_bytes() >= kGiB) hv_.balloon_reclaim(vm, kGiB / 2);
        break;
      }
      case 5: {  // balloon return (when the pages are still free)
        if (vms.empty()) break;
        const hw::VmId vm = vms[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(vms.size()) - 1))];
        const std::uint64_t b = hv_.vm(vm).balloon_bytes();
        if (b > 0 && hv_.available_bytes() >= b) hv_.balloon_return(vm, b);
        break;
      }
    }
    check_identities();
  }

  // Teardown to zero.
  for (hw::VmId vm : vms) EXPECT_TRUE(hv_.destroy_vm(vm));
  EXPECT_EQ(hv_.committed_bytes(), 0u);
  EXPECT_EQ(brick_.cores_in_use(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HypervisorPropertyTest,
                         ::testing::Values(5u, 17u, 59u, 97u, 151u));

}  // namespace
}  // namespace dredbox::hyp
