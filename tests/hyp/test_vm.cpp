#include "hyp/vm.hpp"

#include <gtest/gtest.h>

namespace dredbox::hyp {
namespace {

constexpr std::uint64_t kGiB = 1ull << 30;

TEST(VmTest, BootDimmInstalledAtConstruction) {
  VirtualMachine vm{hw::VmId{1}, 2, 2 * kGiB};
  EXPECT_EQ(vm.vcpus(), 2u);
  EXPECT_EQ(vm.installed_bytes(), 2 * kGiB);
  EXPECT_EQ(vm.hotplugged_bytes(), 0u);
  EXPECT_EQ(vm.dimms().size(), 1u);
  EXPECT_EQ(vm.state(), VmState::kProvisioning);
}

TEST(VmTest, Validation) {
  EXPECT_THROW(VirtualMachine(hw::VmId{1}, 0, kGiB), std::invalid_argument);
  EXPECT_THROW(VirtualMachine(hw::VmId{1}, 1, 0), std::invalid_argument);
}

TEST(VmTest, StateTransitions) {
  VirtualMachine vm{hw::VmId{1}, 1, kGiB};
  vm.set_running();
  EXPECT_EQ(vm.state(), VmState::kRunning);
  vm.terminate();
  EXPECT_EQ(vm.state(), VmState::kTerminated);
  EXPECT_EQ(to_string(VmState::kRunning), "running");
}

TEST(VmTest, HotplugDimmGrowsGuest) {
  VirtualMachine vm{hw::VmId{1}, 1, kGiB};
  GuestDimm dimm;
  dimm.size = 2 * kGiB;
  dimm.hotplugged = true;
  dimm.backing_segment = hw::SegmentId{7};
  vm.add_dimm(dimm);
  EXPECT_EQ(vm.installed_bytes(), 3 * kGiB);
  EXPECT_EQ(vm.hotplugged_bytes(), 2 * kGiB);
}

TEST(VmTest, AddDimmValidation) {
  VirtualMachine vm{hw::VmId{1}, 1, kGiB};
  GuestDimm empty;
  EXPECT_THROW(vm.add_dimm(empty), std::invalid_argument);
  vm.terminate();
  GuestDimm ok;
  ok.size = kGiB;
  EXPECT_THROW(vm.add_dimm(ok), std::logic_error);
}

TEST(VmTest, RemoveDimmBySegment) {
  VirtualMachine vm{hw::VmId{1}, 1, kGiB};
  GuestDimm dimm;
  dimm.size = 2 * kGiB;
  dimm.hotplugged = true;
  dimm.backing_segment = hw::SegmentId{7};
  vm.add_dimm(dimm);
  EXPECT_EQ(vm.remove_dimm(hw::SegmentId{7}), 2 * kGiB);
  EXPECT_EQ(vm.installed_bytes(), kGiB);
  EXPECT_EQ(vm.remove_dimm(hw::SegmentId{7}), 0u);  // already gone
}

TEST(VmTest, RemoveDimmPicksMostRecent) {
  VirtualMachine vm{hw::VmId{1}, 1, kGiB};
  for (std::uint64_t s : {1, 2}) {
    GuestDimm d;
    d.size = s * kGiB;
    d.hotplugged = true;
    d.backing_segment = hw::SegmentId{9};
    vm.add_dimm(d);
  }
  EXPECT_EQ(vm.remove_dimm(hw::SegmentId{9}), 2 * kGiB);  // the later one
  EXPECT_EQ(vm.remove_dimm(hw::SegmentId{9}), 1 * kGiB);
}

TEST(VmTest, RemoveDimmRejectedWhileBalloonHoldsIt) {
  VirtualMachine vm{hw::VmId{1}, 1, kGiB};
  GuestDimm dimm;
  dimm.size = 2 * kGiB;
  dimm.hotplugged = true;
  dimm.backing_segment = hw::SegmentId{7};
  vm.add_dimm(dimm);
  // Balloon claims most of the guest: hot-removing the 2 GiB DIMM would
  // leave less memory than the balloon holds.
  vm.balloon_inflate(2 * kGiB);
  EXPECT_THROW(vm.remove_dimm(hw::SegmentId{7}), std::logic_error);
  // Deflating first makes the removal legal.
  vm.balloon_deflate(2 * kGiB);
  EXPECT_EQ(vm.remove_dimm(hw::SegmentId{7}), 2 * kGiB);
}

TEST(VmTest, BalloonInflateDeflate) {
  VirtualMachine vm{hw::VmId{1}, 1, 4 * kGiB};
  vm.balloon_inflate(kGiB);
  EXPECT_EQ(vm.balloon_bytes(), kGiB);
  EXPECT_EQ(vm.usable_bytes(), 3 * kGiB);
  vm.balloon_deflate(kGiB);
  EXPECT_EQ(vm.usable_bytes(), 4 * kGiB);
}

TEST(VmTest, BalloonBounds) {
  VirtualMachine vm{hw::VmId{1}, 1, 2 * kGiB};
  EXPECT_THROW(vm.balloon_inflate(3 * kGiB), std::logic_error);
  vm.balloon_inflate(kGiB);
  EXPECT_THROW(vm.balloon_deflate(2 * kGiB), std::logic_error);
}

TEST(VmTest, DescribeMentionsShape) {
  VirtualMachine vm{hw::VmId{3}, 2, kGiB};
  const std::string d = vm.describe();
  EXPECT_NE(d.find("vm#3"), std::string::npos);
  EXPECT_NE(d.find("2 vCPUs"), std::string::npos);
}

}  // namespace
}  // namespace dredbox::hyp
