#include "hyp/hypervisor.hpp"

#include <gtest/gtest.h>

namespace dredbox::hyp {
namespace {

constexpr std::uint64_t kGiB = 1ull << 30;

class HypervisorTest : public ::testing::Test {
 protected:
  HypervisorTest()
      : brick_{hw::BrickId{1}, hw::TrayId{1}, config()},
        os_{brick_},
        hv_{brick_, os_} {}

  static hw::ComputeBrickConfig config() {
    hw::ComputeBrickConfig cfg;
    cfg.apu_cores = 4;
    cfg.local_memory_bytes = 4 * kGiB;
    return cfg;
  }

  hw::ComputeBrick brick_;
  os::BareMetalOs os_;
  Hypervisor hv_;
};

TEST_F(HypervisorTest, CreateVmReservesResources) {
  auto vm = hv_.create_vm(2, 2 * kGiB);
  ASSERT_TRUE(vm.has_value());
  EXPECT_EQ(brick_.cores_in_use(), 2u);
  EXPECT_EQ(hv_.committed_bytes(), 2 * kGiB);
  EXPECT_EQ(hv_.available_bytes(), 2 * kGiB);
  EXPECT_EQ(hv_.vm(*vm).state(), VmState::kRunning);
  EXPECT_TRUE(hv_.has_vm(*vm));
  EXPECT_EQ(hv_.vm_count(), 1u);
}

TEST_F(HypervisorTest, CreateVmFailsOnCoreShortage) {
  ASSERT_TRUE(hv_.create_vm(4, kGiB));
  EXPECT_FALSE(hv_.create_vm(1, kGiB).has_value());
}

TEST_F(HypervisorTest, CreateVmFailsOnMemoryShortage) {
  EXPECT_FALSE(hv_.create_vm(1, 5 * kGiB).has_value());
  ASSERT_TRUE(hv_.create_vm(1, 3 * kGiB));
  EXPECT_FALSE(hv_.create_vm(1, 2 * kGiB).has_value());
}

TEST_F(HypervisorTest, DestroyVmReleasesResources) {
  auto vm = hv_.create_vm(3, 2 * kGiB);
  ASSERT_TRUE(vm);
  EXPECT_TRUE(hv_.destroy_vm(*vm));
  EXPECT_EQ(brick_.cores_in_use(), 0u);
  EXPECT_EQ(hv_.committed_bytes(), 0u);
  EXPECT_FALSE(hv_.destroy_vm(*vm));
  EXPECT_THROW(hv_.vm(*vm), std::out_of_range);
}

TEST_F(HypervisorTest, ExpandRequiresHostMemory) {
  auto vm = hv_.create_vm(1, 4 * kGiB);  // consumes all local DDR
  ASSERT_TRUE(vm);
  EXPECT_THROW(hv_.expand_vm_memory(*vm, kGiB, hw::SegmentId{1}, sim::Time::zero()),
               std::logic_error);
}

TEST_F(HypervisorTest, ExpandAfterHotplugSucceeds) {
  auto vm = hv_.create_vm(1, 4 * kGiB);
  ASSERT_TRUE(vm);
  // Baremetal OS onlines 2 GiB of remote memory first.
  os_.attach_remote_memory(brick_.config().remote_window_base, 2 * kGiB);
  const sim::Time latency =
      hv_.expand_vm_memory(*vm, 2 * kGiB, hw::SegmentId{1}, sim::Time::zero());
  EXPECT_GT(latency, sim::Time::zero());
  EXPECT_EQ(hv_.vm(*vm).installed_bytes(), 6 * kGiB);
  EXPECT_EQ(hv_.vm(*vm).hotplugged_bytes(), 2 * kGiB);
  EXPECT_EQ(hv_.committed_bytes(), 6 * kGiB);
  EXPECT_EQ(hv_.available_bytes(), 0u);
}

TEST_F(HypervisorTest, ExpandLatencyScalesWithSize) {
  auto vm = hv_.create_vm(1, kGiB);
  ASSERT_TRUE(vm);
  os_.attach_remote_memory(brick_.config().remote_window_base, 4 * kGiB);
  const sim::Time t1 = hv_.expand_vm_memory(*vm, kGiB, hw::SegmentId{1}, sim::Time::zero());
  const sim::Time t3 =
      hv_.expand_vm_memory(*vm, 3 * kGiB, hw::SegmentId{2}, sim::Time::zero());
  EXPECT_GT(t3, t1);
}

TEST_F(HypervisorTest, ShrinkRemovesDimmAndAccounting) {
  auto vm = hv_.create_vm(1, kGiB);
  ASSERT_TRUE(vm);
  os_.attach_remote_memory(brick_.config().remote_window_base, 2 * kGiB);
  hv_.expand_vm_memory(*vm, 2 * kGiB, hw::SegmentId{5}, sim::Time::zero());
  const sim::Time latency = hv_.shrink_vm_memory(*vm, hw::SegmentId{5});
  EXPECT_GT(latency, sim::Time::zero());
  EXPECT_EQ(hv_.vm(*vm).installed_bytes(), kGiB);
  EXPECT_EQ(hv_.committed_bytes(), kGiB);
}

TEST_F(HypervisorTest, ShrinkUnknownSegmentIsNoop) {
  auto vm = hv_.create_vm(1, kGiB);
  ASSERT_TRUE(vm);
  EXPECT_EQ(hv_.shrink_vm_memory(*vm, hw::SegmentId{99}), sim::Time::zero());
}

TEST_F(HypervisorTest, VmsListedSorted) {
  auto v1 = hv_.create_vm(1, kGiB);
  auto v2 = hv_.create_vm(1, kGiB);
  ASSERT_TRUE(v1 && v2);
  const auto vms = hv_.vms();
  ASSERT_EQ(vms.size(), 2u);
  EXPECT_LT(vms[0], vms[1]);
}

TEST_F(HypervisorTest, MismatchedOsRejected) {
  hw::ComputeBrick other{hw::BrickId{2}, hw::TrayId{1}, config()};
  EXPECT_THROW(Hypervisor(other, os_), std::invalid_argument);
}

TEST_F(HypervisorTest, MultipleVmsShareHost) {
  auto v1 = hv_.create_vm(2, kGiB);
  auto v2 = hv_.create_vm(2, 2 * kGiB);
  ASSERT_TRUE(v1 && v2);
  EXPECT_EQ(hv_.committed_bytes(), 3 * kGiB);
  EXPECT_EQ(brick_.cores_free(), 0u);
  hv_.destroy_vm(*v1);
  EXPECT_EQ(hv_.committed_bytes(), 2 * kGiB);
  EXPECT_EQ(brick_.cores_free(), 2u);
}

}  // namespace
}  // namespace dredbox::hyp
