#include <gtest/gtest.h>

#include "hyp/hypervisor.hpp"

namespace dredbox::hyp {
namespace {

constexpr std::uint64_t kGiB = 1ull << 30;

class BalloonTest : public ::testing::Test {
 protected:
  BalloonTest()
      : brick_{hw::BrickId{1}, hw::TrayId{1}, config()}, os_{brick_}, hv_{brick_, os_} {}

  static hw::ComputeBrickConfig config() {
    hw::ComputeBrickConfig cfg;
    cfg.apu_cores = 4;
    cfg.local_memory_bytes = 8 * kGiB;
    return cfg;
  }

  hw::ComputeBrick brick_;
  os::BareMetalOs os_;
  Hypervisor hv_;
};

TEST_F(BalloonTest, ReclaimReturnsPagesToHost) {
  auto vm = hv_.create_vm(1, 6 * kGiB);
  ASSERT_TRUE(vm);
  EXPECT_EQ(hv_.available_bytes(), 2 * kGiB);
  const sim::Time latency = hv_.balloon_reclaim(*vm, 2 * kGiB);
  EXPECT_GT(latency, sim::Time::zero());
  EXPECT_EQ(hv_.ballooned_bytes(), 2 * kGiB);
  EXPECT_EQ(hv_.available_bytes(), 4 * kGiB);
  EXPECT_EQ(hv_.vm(*vm).usable_bytes(), 4 * kGiB);
}

TEST_F(BalloonTest, ReclaimedPagesBackAnotherGuest) {
  auto donor = hv_.create_vm(1, 6 * kGiB);
  ASSERT_TRUE(donor);
  hv_.balloon_reclaim(*donor, 3 * kGiB);
  // 2 GiB free + 3 GiB ballooned = 5 GiB available for a second guest.
  auto taker = hv_.create_vm(1, 5 * kGiB);
  EXPECT_TRUE(taker.has_value());
  EXPECT_EQ(hv_.available_bytes(), 0u);
}

TEST_F(BalloonTest, ReturnRequiresAvailability) {
  auto donor = hv_.create_vm(1, 6 * kGiB);
  ASSERT_TRUE(donor);
  hv_.balloon_reclaim(*donor, 3 * kGiB);
  ASSERT_TRUE(hv_.create_vm(1, 5 * kGiB));  // consumes the ballooned pages
  // The donor cannot deflate: its pages are committed elsewhere now.
  EXPECT_THROW(hv_.balloon_return(*donor, 3 * kGiB), std::logic_error);
}

TEST_F(BalloonTest, ReturnRestoresGuest) {
  auto donor = hv_.create_vm(1, 6 * kGiB);
  ASSERT_TRUE(donor);
  hv_.balloon_reclaim(*donor, 2 * kGiB);
  const sim::Time latency = hv_.balloon_return(*donor, 2 * kGiB);
  EXPECT_GT(latency, sim::Time::zero());
  EXPECT_EQ(hv_.ballooned_bytes(), 0u);
  EXPECT_EQ(hv_.vm(*donor).usable_bytes(), 6 * kGiB);
  EXPECT_EQ(hv_.available_bytes(), 2 * kGiB);
}

TEST_F(BalloonTest, CannotReturnMoreThanBallooned) {
  auto donor = hv_.create_vm(1, 4 * kGiB);
  ASSERT_TRUE(donor);
  hv_.balloon_reclaim(*donor, kGiB);
  EXPECT_THROW(hv_.balloon_return(*donor, 2 * kGiB), std::logic_error);
}

TEST_F(BalloonTest, CannotReclaimBeyondGuestMemory) {
  auto donor = hv_.create_vm(1, 2 * kGiB);
  ASSERT_TRUE(donor);
  EXPECT_THROW(hv_.balloon_reclaim(*donor, 3 * kGiB), std::logic_error);
}

}  // namespace
}  // namespace dredbox::hyp
