#include "orch/scale_out.hpp"

#include <gtest/gtest.h>

#include "sim/stats.hpp"

namespace dredbox::orch {
namespace {

using sim::Time;

TEST(ScaleOutTest, SingleSpawnTakesRoughlyAHundredSeconds) {
  // Mao & Humphrey [13]: VM startup on public clouds is on the order of
  // a hundred seconds.
  ScaleOutBaseline baseline;
  sim::Rng rng{1};
  sim::SampleSet delays;
  for (int i = 0; i < 100; ++i) {
    baseline.reset();
    delays.add(baseline.spawn(Time::zero(), rng).delay().as_sec());
  }
  EXPECT_GT(delays.mean(), 60.0);
  EXPECT_LT(delays.mean(), 160.0);
}

TEST(ScaleOutTest, SchedulerSerializesConcurrentRequests) {
  ScaleOutTiming timing;
  timing.jitter_fraction = 0.0;
  ScaleOutBaseline baseline{timing};
  sim::Rng rng{2};
  const auto r1 = baseline.spawn(Time::zero(), rng);
  const auto r2 = baseline.spawn(Time::zero(), rng);
  const auto r3 = baseline.spawn(Time::zero(), rng);
  EXPECT_EQ(r2.delay() - r1.delay(), timing.placement_service);
  EXPECT_EQ(r3.delay() - r2.delay(), timing.placement_service);
}

TEST(ScaleOutTest, SpacedRequestsDoNotQueue) {
  ScaleOutTiming timing;
  timing.jitter_fraction = 0.0;
  ScaleOutBaseline baseline{timing};
  sim::Rng rng{3};
  const auto r1 = baseline.spawn(Time::zero(), rng);
  const auto r2 = baseline.spawn(Time::sec(1000), rng);
  EXPECT_EQ(r1.delay(), r2.delay());
}

TEST(ScaleOutTest, JitterVariesHostWork) {
  ScaleOutBaseline baseline;
  sim::Rng rng{4};
  const auto a = baseline.spawn(Time::zero(), rng).delay();
  baseline.reset();
  const auto b = baseline.spawn(Time::zero(), rng).delay();
  EXPECT_NE(a, b);
}

TEST(ScaleOutTest, ResetClearsSchedulerQueue) {
  ScaleOutTiming timing;
  timing.jitter_fraction = 0.0;
  ScaleOutBaseline baseline{timing};
  sim::Rng rng{5};
  baseline.spawn(Time::zero(), rng);
  baseline.reset();
  const auto fresh = baseline.spawn(Time::zero(), rng);
  EXPECT_EQ(fresh.delay(),
            timing.placement_service + timing.image_provision + timing.guest_boot);
}

}  // namespace
}  // namespace dredbox::orch
