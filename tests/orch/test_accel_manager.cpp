#include "orch/accel_manager.hpp"

#include <gtest/gtest.h>

namespace dredbox::orch {
namespace {

using sim::Time;

hw::Bitstream classifier() {
  hw::Bitstream bs;
  bs.name = "classifier";
  bs.size_bytes = 16ull << 20;
  bs.kernel_ops_per_sec = 1e9;
  return bs;
}

class AccelManagerTest : public ::testing::Test {
 protected:
  AccelManagerTest() : mgr_{rack_} {
    const hw::TrayId tray = rack_.add_tray();
    compute_ = rack_.add_compute_brick(tray).id();
    accel1_ = rack_.add_accelerator_brick(tray).id();
    accel2_ = rack_.add_accelerator_brick(tray).id();
  }

  hw::Rack rack_;
  AcceleratorManager mgr_;
  hw::BrickId compute_;
  hw::BrickId accel1_;
  hw::BrickId accel2_;
};

TEST_F(AccelManagerTest, DeployReservesAndLoads) {
  const auto d = mgr_.deploy(compute_, classifier(), Time::zero());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->owner, compute_);
  EXPECT_TRUE(mgr_.is_reserved(d->accel));
  EXPECT_EQ(mgr_.free_count(), 1u);
  EXPECT_GT(d->ready_at, Time::zero());
  EXPECT_TRUE(d->breakdown.has("bitstream transfer"));
  EXPECT_TRUE(d->breakdown.has("PCAP reconfiguration"));
  EXPECT_EQ(rack_.accelerator_brick(d->accel).active_accelerator(), "classifier");
}

TEST_F(AccelManagerTest, PoolExhaustion) {
  ASSERT_TRUE(mgr_.deploy(compute_, classifier(), Time::zero()));
  ASSERT_TRUE(mgr_.deploy(compute_, classifier(), Time::zero()));
  EXPECT_FALSE(mgr_.deploy(compute_, classifier(), Time::zero()).has_value());
  EXPECT_EQ(mgr_.reserved_count(), 2u);
}

TEST_F(AccelManagerTest, ReleaseReturnsBrickToPool) {
  const auto d = mgr_.deploy(compute_, classifier(), Time::zero());
  ASSERT_TRUE(d);
  EXPECT_TRUE(mgr_.release(d->accel));
  EXPECT_FALSE(mgr_.release(d->accel));
  EXPECT_EQ(mgr_.free_count(), 2u);
  EXPECT_TRUE(mgr_.deploy(compute_, classifier(), Time::zero()).has_value());
}

TEST_F(AccelManagerTest, OffloadRequiresReservationAndBitstream) {
  const auto bad = mgr_.offload(accel1_, 1000, 1 << 20, Time::zero());
  EXPECT_FALSE(bad.ok);
  const auto d = mgr_.deploy(compute_, classifier(), Time::zero());
  ASSERT_TRUE(d);
  const auto good = mgr_.offload(d->accel, 1000, 1 << 20, d->ready_at);
  EXPECT_TRUE(good.ok) << good.error;
}

TEST_F(AccelManagerTest, OffloadMovesOnlyDescriptorsOverTheNetwork) {
  const auto d = mgr_.deploy(compute_, classifier(), Time::zero());
  ASSERT_TRUE(d);
  const std::uint64_t data = 1ull << 30;  // 1 GiB lives near the accelerator
  const auto near = mgr_.offload(d->accel, 1'000'000, data, d->ready_at);
  ASSERT_TRUE(near.ok);
  EXPECT_LT(near.network_bytes, 10'000u);  // descriptor + result only

  const auto haul = mgr_.process_on_compute(data, /*cpu_gbps=*/20.0, d->ready_at);
  EXPECT_EQ(haul.network_bytes, data);
  // Near-data processing reduces network utilization by orders of
  // magnitude (Section II's rationale for dACCELBRICKs).
  EXPECT_LT(static_cast<double>(near.network_bytes),
            1e-4 * static_cast<double>(haul.network_bytes));
}

TEST_F(AccelManagerTest, NearDataFasterForBigData) {
  const auto d = mgr_.deploy(compute_, classifier(), Time::zero());
  ASSERT_TRUE(d);
  const std::uint64_t data = 8ull << 30;
  const auto near = mgr_.offload(d->accel, 1'000'000, data, d->ready_at);
  const auto haul = mgr_.process_on_compute(data, 20.0, d->ready_at);
  ASSERT_TRUE(near.ok && haul.ok);
  EXPECT_LT(near.completed_at - d->ready_at, haul.completed_at - d->ready_at);
}

TEST_F(AccelManagerTest, KernelBoundWhenComputeHeavy) {
  // A slow kernel dominates the streaming phase.
  hw::Bitstream heavy = classifier();
  heavy.kernel_ops_per_sec = 1e3;
  const auto d = mgr_.deploy(compute_, heavy, Time::zero());
  ASSERT_TRUE(d);
  const auto result = mgr_.offload(d->accel, 10'000, 1 << 10, d->ready_at);
  ASSERT_TRUE(result.ok);
  // 10k ops at 1k ops/s = 10 s of kernel time.
  EXPECT_NEAR(result.breakdown.of("near-data processing").as_sec(), 10.0, 0.01);
}

/// Direct dMEMBRICK links (Fig. 5's wrapper transceivers).
class AccelLinkTest : public AccelManagerTest {
 protected:
  AccelLinkTest() : circuits_{switch_} {
    hw::MemoryBrickConfig mc;
    mc.capacity_bytes = 32ull << 30;
    membrick_ = rack_.add_memory_brick(rack_.brick(compute_).tray(), mc).id();
  }
  optics::OpticalSwitch switch_;
  optics::CircuitManager circuits_;
  hw::BrickId membrick_;
};

TEST_F(AccelLinkTest, LinkWiresDirectCircuits) {
  const auto d = mgr_.deploy(compute_, classifier(), Time::zero());
  ASSERT_TRUE(d);
  EXPECT_TRUE(mgr_.link_memory(d->accel, membrick_, /*lanes=*/2, circuits_));
  EXPECT_TRUE(mgr_.has_memory_link(d->accel));
  EXPECT_EQ(switch_.ports_in_use(), 4u);  // 2 lanes x 2 ports
  EXPECT_EQ(rack_.brick(d->accel).free_port_count(true), 6u);
  EXPECT_EQ(rack_.brick(membrick_).free_port_count(true), 6u);
}

TEST_F(AccelLinkTest, LinkRequiresReservation) {
  EXPECT_FALSE(mgr_.link_memory(accel1_, membrick_, 1, circuits_));
}

TEST_F(AccelLinkTest, DoubleLinkRejected) {
  const auto d = mgr_.deploy(compute_, classifier(), Time::zero());
  ASSERT_TRUE(d);
  ASSERT_TRUE(mgr_.link_memory(d->accel, membrick_, 1, circuits_));
  EXPECT_FALSE(mgr_.link_memory(d->accel, membrick_, 1, circuits_));
}

TEST_F(AccelLinkTest, OffloadFromMembrickStreamsOverBondedLanes) {
  const auto d = mgr_.deploy(compute_, classifier(), Time::zero());
  ASSERT_TRUE(d);
  ASSERT_TRUE(mgr_.link_memory(d->accel, membrick_, 4, circuits_));
  const std::uint64_t data = 4ull << 30;
  const auto job = mgr_.offload_from_membrick(d->accel, data / 64, data, d->ready_at);
  ASSERT_TRUE(job.ok) << job.error;
  EXPECT_TRUE(job.breakdown.has("stream from dMEMBRICK"));
  EXPECT_LT(job.network_bytes, 10'000u);  // shared network untouched by data

  // A single-lane link streams the same data ~4x slower.
  const auto d2 = mgr_.deploy(compute_, classifier(), Time::zero());
  ASSERT_TRUE(d2);
  ASSERT_TRUE(mgr_.link_memory(d2->accel, membrick_, 1, circuits_));
  const auto slow = mgr_.offload_from_membrick(d2->accel, data / 64, data, d2->ready_at);
  ASSERT_TRUE(slow.ok);
  EXPECT_GT(slow.breakdown.of("stream from dMEMBRICK").as_sec(),
            3.0 * job.breakdown.of("stream from dMEMBRICK").as_sec());
}

TEST_F(AccelLinkTest, OffloadWithoutLinkFails) {
  const auto d = mgr_.deploy(compute_, classifier(), Time::zero());
  ASSERT_TRUE(d);
  const auto job = mgr_.offload_from_membrick(d->accel, 100, 1 << 20, d->ready_at);
  EXPECT_FALSE(job.ok);
}

TEST_F(AccelLinkTest, UnlinkReleasesEverything) {
  const auto d = mgr_.deploy(compute_, classifier(), Time::zero());
  ASSERT_TRUE(d);
  ASSERT_TRUE(mgr_.link_memory(d->accel, membrick_, 2, circuits_));
  EXPECT_TRUE(mgr_.unlink_memory(d->accel, circuits_));
  EXPECT_FALSE(mgr_.unlink_memory(d->accel, circuits_));
  EXPECT_EQ(switch_.ports_in_use(), 0u);
  EXPECT_EQ(rack_.brick(d->accel).free_port_count(true), 8u);
  EXPECT_EQ(rack_.brick(membrick_).free_port_count(true), 8u);
}

TEST_F(AccelLinkTest, LinkRollsBackOnSwitchExhaustion) {
  const auto d = mgr_.deploy(compute_, classifier(), Time::zero());
  ASSERT_TRUE(d);
  // Leave room for only one lane on the switch, then ask for three.
  for (std::size_t p = 0; p < switch_.port_count() - 2; p += 2) switch_.connect(p, p + 1);
  EXPECT_FALSE(mgr_.link_memory(d->accel, membrick_, 3, circuits_));
  EXPECT_FALSE(mgr_.has_memory_link(d->accel));
  EXPECT_EQ(rack_.brick(d->accel).free_port_count(true), 8u);  // no leak
}

TEST_F(AccelManagerTest, ConfigValidation) {
  AcceleratorManager::Config bad;
  bad.transfer_gbps = 0;
  EXPECT_THROW(AcceleratorManager(rack_, bad), std::invalid_argument);
}

}  // namespace
}  // namespace dredbox::orch
