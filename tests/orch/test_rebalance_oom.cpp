#include <gtest/gtest.h>

#include <memory>

#include "orch/oom_guard.hpp"
#include "orch/sdm_controller.hpp"

namespace dredbox::orch {
namespace {

using sim::Time;
constexpr std::uint64_t kGiB = 1ull << 30;

class RebalanceOomTest : public ::testing::Test {
 protected:
  RebalanceOomTest()
      : circuits_{switch_}, fabric_{rack_, circuits_}, sdm_{rack_, fabric_, circuits_} {
    const hw::TrayId tray_a = rack_.add_tray();
    const hw::TrayId tray_b = rack_.add_tray();
    hw::ComputeBrickConfig cc;
    cc.apu_cores = 4;
    cc.local_memory_bytes = 8 * kGiB;
    auto& cb = rack_.add_compute_brick(tray_a, cc);
    stack_ = std::make_unique<Stack>(cb);
    sdm_.register_agent(stack_->agent);
    compute_ = cb.id();
    hw::MemoryBrickConfig mc;
    mc.capacity_bytes = 32 * kGiB;
    membrick_ = rack_.add_memory_brick(tray_b, mc).id();
  }

  struct Stack {
    explicit Stack(hw::ComputeBrick& brick)
        : os{brick}, hypervisor{brick, os}, agent{hypervisor, os} {}
    os::BareMetalOs os;
    hyp::Hypervisor hypervisor;
    SdmAgent agent;
  };

  hw::VmId boot(std::size_t vcpus, std::uint64_t memory) {
    AllocationRequest req;
    req.vcpus = vcpus;
    req.memory_bytes = memory;
    const auto result = sdm_.allocate_vm(req, Time::zero());
    EXPECT_TRUE(result.ok) << result.error;
    return result.vm;
  }

  hw::Rack rack_;
  optics::OpticalSwitch switch_;
  optics::CircuitManager circuits_;
  memsys::RemoteMemoryFabric fabric_;
  SdmController sdm_;
  std::unique_ptr<Stack> stack_;
  hw::BrickId compute_;
  hw::BrickId membrick_;
};

TEST_F(RebalanceOomTest, RebalanceMovesMemoryBetweenGuests) {
  const hw::VmId donor = boot(1, 5 * kGiB);
  const hw::VmId taker = boot(1, 2 * kGiB);
  const auto result = sdm_.rebalance(donor, taker, compute_, 2 * kGiB, Time::sec(1));
  ASSERT_TRUE(result.ok) << result.error;
  auto& hv = stack_->hypervisor;
  EXPECT_EQ(hv.vm(donor).usable_bytes(), 3 * kGiB);
  EXPECT_EQ(hv.vm(taker).usable_bytes(), 4 * kGiB);
  // No fabric involvement: no segments, no switch ports.
  EXPECT_EQ(fabric_.attachment_count(), 0u);
  EXPECT_EQ(switch_.ports_in_use(), 0u);
}

TEST_F(RebalanceOomTest, RebalanceFasterThanScaleUp) {
  const hw::VmId donor = boot(1, 5 * kGiB);
  const hw::VmId taker = boot(1, 2 * kGiB);
  const auto balloon = sdm_.rebalance(donor, taker, compute_, kGiB, Time::sec(1));
  ASSERT_TRUE(balloon.ok);

  ScaleUpRequest req;
  req.vm = taker;
  req.compute = compute_;
  req.bytes = kGiB;
  req.posted_at = Time::sec(100);
  const auto attach = sdm_.scale_up(req);
  ASSERT_TRUE(attach.ok);
  // The balloon tier skips circuit setup and kernel hotplug entirely.
  EXPECT_LT(balloon.delay(), attach.delay());
  EXPECT_FALSE(balloon.breakdown.has("baremetal hotplug"));
  EXPECT_TRUE(balloon.breakdown.has("balloon reclaim (donor)"));
}

TEST_F(RebalanceOomTest, RebalanceValidatesDonorSlack) {
  const hw::VmId donor = boot(1, 2 * kGiB);
  const hw::VmId taker = boot(1, 2 * kGiB);
  const auto result = sdm_.rebalance(donor, taker, compute_, 4 * kGiB, Time::sec(1));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("donor"), std::string::npos);
}

TEST_F(RebalanceOomTest, RebalanceValidatesResidency) {
  const hw::VmId vm = boot(1, 2 * kGiB);
  const auto result = sdm_.rebalance(vm, hw::VmId{999}, compute_, kGiB, Time::sec(1));
  EXPECT_FALSE(result.ok);
}

TEST_F(RebalanceOomTest, OomGuardScalesUpUnderPressure) {
  const hw::VmId vm = boot(1, 2 * kGiB);
  OomGuard guard{sdm_};
  guard.watch(vm, compute_);

  // Low pressure: no intervention.
  EXPECT_FALSE(guard.report_usage(vm, 1 * kGiB, Time::sec(1)).has_value());
  EXPECT_EQ(guard.interventions(), 0u);

  // 95% usage: the guard attaches a chunk before the guest OOMs.
  const auto action = guard.report_usage(vm, 1945ull << 20, Time::sec(10));
  ASSERT_TRUE(action.has_value());
  EXPECT_TRUE(action->ok) << action->error;
  EXPECT_EQ(guard.interventions(), 1u);
  EXPECT_EQ(stack_->hypervisor.vm(vm).usable_bytes(), 3 * kGiB);
}

TEST_F(RebalanceOomTest, OomGuardHonoursCooldown) {
  const hw::VmId vm = boot(1, 2 * kGiB);
  OomGuard guard{sdm_};
  guard.watch(vm, compute_);
  ASSERT_TRUE(guard.report_usage(vm, 2 * kGiB, Time::sec(10)).has_value());
  // A second report right away is swallowed by the cooldown.
  EXPECT_FALSE(guard.report_usage(vm, 3 * kGiB, Time::sec(11)).has_value());
  // After the cooldown it acts again.
  EXPECT_TRUE(guard.report_usage(vm, 3 * kGiB, Time::sec(20)).has_value());
  EXPECT_EQ(guard.interventions(), 2u);
}

TEST_F(RebalanceOomTest, OomGuardReleasesWhenPressureDrops) {
  const hw::VmId vm = boot(1, 2 * kGiB);
  OomGuard guard{sdm_};
  guard.watch(vm, compute_);
  ASSERT_TRUE(guard.report_usage(vm, 2 * kGiB, Time::sec(10)).has_value());
  ASSERT_EQ(stack_->hypervisor.vm(vm).usable_bytes(), 3 * kGiB);
  // Usage collapses: the guard gives the granted chunk back.
  const auto release = guard.report_usage(vm, 256ull << 20, Time::sec(60));
  ASSERT_TRUE(release.has_value());
  EXPECT_TRUE(release->ok);
  EXPECT_EQ(guard.releases(), 1u);
  EXPECT_EQ(stack_->hypervisor.vm(vm).usable_bytes(), 2 * kGiB);
  EXPECT_EQ(fabric_.attached_bytes(compute_), 0u);
}

TEST_F(RebalanceOomTest, OomGuardIgnoresUnwatchedVms) {
  const hw::VmId vm = boot(1, 2 * kGiB);
  OomGuard guard{sdm_};
  EXPECT_FALSE(guard.report_usage(vm, 2 * kGiB, Time::sec(1)).has_value());
  guard.watch(vm, compute_);
  guard.unwatch(vm);
  EXPECT_FALSE(guard.report_usage(vm, 2 * kGiB, Time::sec(1)).has_value());
}

TEST_F(RebalanceOomTest, OomGuardConfigValidation) {
  OomGuardConfig bad;
  bad.pressure_threshold = 1.5;
  EXPECT_THROW(OomGuard(sdm_, bad), std::invalid_argument);
  bad.pressure_threshold = 0.9;
  bad.relax_threshold = 0.95;
  EXPECT_THROW(OomGuard(sdm_, bad), std::invalid_argument);
}

}  // namespace
}  // namespace dredbox::orch
