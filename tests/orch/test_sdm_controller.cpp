#include "orch/sdm_controller.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "orch/openstack.hpp"

namespace dredbox::orch {
namespace {

using sim::Time;
constexpr std::uint64_t kGiB = 1ull << 30;

/// Two compute bricks (4 cores, 4 GiB local each) and two 16 GiB memory
/// bricks, with the full per-brick software stack.
class SdmControllerTest : public ::testing::Test {
 protected:
  SdmControllerTest() : circuits_{switch_}, fabric_{rack_, circuits_}, sdm_{rack_, fabric_, circuits_} {
    // Compute bricks and memory bricks on separate trays so these tests
    // exercise the cross-tray optical control path (switch programming).
    const hw::TrayId compute_tray = rack_.add_tray();
    const hw::TrayId memory_tray = rack_.add_tray();
    for (int i = 0; i < 2; ++i) {
      hw::ComputeBrickConfig cc;
      cc.apu_cores = 4;
      cc.local_memory_bytes = 4 * kGiB;
      auto& cb = rack_.add_compute_brick(compute_tray, cc);
      auto stack = std::make_unique<Stack>(cb);
      sdm_.register_agent(stack->agent);
      computes_.push_back(cb.id());
      stacks_.push_back(std::move(stack));
    }
    for (int i = 0; i < 2; ++i) {
      hw::MemoryBrickConfig mc;
      mc.capacity_bytes = 16 * kGiB;
      membricks_.push_back(rack_.add_memory_brick(memory_tray, mc).id());
    }
  }

  struct Stack {
    explicit Stack(hw::ComputeBrick& brick)
        : os{brick}, hypervisor{brick, os}, agent{hypervisor, os} {}
    os::BareMetalOs os;
    hyp::Hypervisor hypervisor;
    SdmAgent agent;
  };

  ScaleUpResult do_scale_up(hw::VmId vm, hw::BrickId brick, std::uint64_t bytes, Time at) {
    ScaleUpRequest req;
    req.vm = vm;
    req.compute = brick;
    req.bytes = bytes;
    req.posted_at = at;
    return sdm_.scale_up(req);
  }

  hw::Rack rack_;
  optics::OpticalSwitch switch_;
  optics::CircuitManager circuits_;
  memsys::RemoteMemoryFabric fabric_;
  SdmController sdm_;
  std::vector<std::unique_ptr<Stack>> stacks_;
  std::vector<hw::BrickId> computes_;
  std::vector<hw::BrickId> membricks_;
};

TEST_F(SdmControllerTest, AllocateVmFromLocalMemory) {
  AllocationRequest req;
  req.vcpus = 2;
  req.memory_bytes = 2 * kGiB;
  const auto result = sdm_.allocate_vm(req, Time::zero());
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.remote_bytes, 0u);
  EXPECT_EQ(result.local_bytes, 2 * kGiB);
  EXPECT_GT(result.completed_at, Time::zero());
}

TEST_F(SdmControllerTest, AllocateVmTopsUpWithRemoteMemory) {
  AllocationRequest req;
  req.vcpus = 2;
  req.memory_bytes = 10 * kGiB;  // local DDR is only 4 GiB
  const auto result = sdm_.allocate_vm(req, Time::zero());
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GE(result.remote_bytes, 6 * kGiB);
  // The fabric holds the attachment and the switch carries the circuit.
  EXPECT_GT(fabric_.attached_bytes(result.compute), 0u);
  EXPECT_GT(switch_.ports_in_use(), 0u);
}

TEST_F(SdmControllerTest, AllocateVmFailsWhenNoCores) {
  AllocationRequest req;
  req.vcpus = 5;  // more than any brick has
  const auto result = sdm_.allocate_vm(req, Time::zero());
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("free cores"), std::string::npos);
}

TEST_F(SdmControllerTest, SelectComputePacksActiveBricksFirst) {
  AllocationRequest req;
  req.vcpus = 1;
  req.memory_bytes = kGiB;
  const auto first = sdm_.allocate_vm(req, Time::zero());
  ASSERT_TRUE(first.ok);
  const auto second = sdm_.allocate_vm(req, Time::zero());
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(first.compute, second.compute);  // packed, not spread
}

TEST_F(SdmControllerTest, ScaleUpPipelineCompletes) {
  AllocationRequest req;
  req.vcpus = 1;
  req.memory_bytes = kGiB;
  const auto vm = sdm_.allocate_vm(req, Time::zero());
  ASSERT_TRUE(vm.ok);
  const auto result = do_scale_up(vm.vm, vm.compute, 2 * kGiB, Time::sec(1));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.delay(), Time::ms(100));  // hotplug dominates
  EXPECT_LT(result.delay(), Time::sec(10));
  // The guest actually grew.
  auto& hv = sdm_.agent_for(vm.compute).hypervisor();
  EXPECT_EQ(hv.vm(vm.vm).hotplugged_bytes(), 2 * kGiB);
}

TEST_F(SdmControllerTest, ScaleUpBreakdownHasPipelineStages) {
  AllocationRequest req;
  const auto vm = sdm_.allocate_vm(req, Time::zero());
  ASSERT_TRUE(vm.ok);
  const auto result = do_scale_up(vm.vm, vm.compute, kGiB, Time::sec(1));
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.breakdown.has("Scale-up API relay"));
  EXPECT_TRUE(result.breakdown.has("SDM-C inspect+reserve"));
  EXPECT_TRUE(result.breakdown.has("switch programming"));
  EXPECT_TRUE(result.breakdown.has("baremetal hotplug"));
  EXPECT_TRUE(result.breakdown.has("QEMU DIMM add + guest online"));
}

TEST_F(SdmControllerTest, SecondScaleUpSkipsSwitchProgramming) {
  AllocationRequest req;
  const auto vm = sdm_.allocate_vm(req, Time::zero());
  ASSERT_TRUE(vm.ok);
  const auto first = do_scale_up(vm.vm, vm.compute, kGiB, Time::sec(1));
  const auto second = do_scale_up(vm.vm, vm.compute, kGiB, Time::sec(100));
  ASSERT_TRUE(first.ok && second.ok);
  EXPECT_GT(first.breakdown.of("switch programming"), Time::zero());
  EXPECT_EQ(second.breakdown.of("switch programming"), Time::zero());
  EXPECT_LT(second.delay(), first.delay());
}

TEST_F(SdmControllerTest, ConcurrentRequestsQueueAtController) {
  AllocationRequest req;
  const auto vm1 = sdm_.allocate_vm(req, Time::zero());
  ASSERT_TRUE(vm1.ok);
  sdm_.reset_queues();
  // Two requests posted at the same instant: the second sees queueing.
  const auto r1 = do_scale_up(vm1.vm, vm1.compute, kGiB, Time::sec(1));
  const auto r2 = do_scale_up(vm1.vm, vm1.compute, kGiB, Time::sec(1));
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_EQ(r1.breakdown.of("SDM-C queueing"), Time::zero());
  EXPECT_GT(r2.breakdown.of("SDM-C queueing"), Time::zero());
  EXPECT_GT(r2.delay(), r1.delay());
}

TEST_F(SdmControllerTest, PowerConsciousMembrickSelectionPacks) {
  AllocationRequest req;
  const auto vm = sdm_.allocate_vm(req, Time::zero());
  ASSERT_TRUE(vm.ok);
  const auto r1 = do_scale_up(vm.vm, vm.compute, kGiB, Time::sec(1));
  const auto r2 = do_scale_up(vm.vm, vm.compute, kGiB, Time::sec(50));
  ASSERT_TRUE(r1.ok && r2.ok);
  // Both land on the same dMEMBRICK (wired + active beats cold).
  EXPECT_EQ(r1.membrick, r2.membrick);
  // The other memory brick stayed idle and could be powered off.
  const hw::BrickId other =
      r1.membrick == membricks_[0] ? membricks_[1] : membricks_[0];
  EXPECT_EQ(rack_.brick(other).power_state(), hw::PowerState::kIdle);
}

TEST_F(SdmControllerTest, ScaleUpFailsWhenPoolExhausted) {
  AllocationRequest req;
  const auto vm = sdm_.allocate_vm(req, Time::zero());
  ASSERT_TRUE(vm.ok);
  const auto result = do_scale_up(vm.vm, vm.compute, 64 * kGiB, Time::sec(1));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("no dMEMBRICK"), std::string::npos);
}

TEST_F(SdmControllerTest, ScaleDownUnwindsScaleUp) {
  AllocationRequest req;
  const auto vm = sdm_.allocate_vm(req, Time::zero());
  ASSERT_TRUE(vm.ok);
  const auto up = do_scale_up(vm.vm, vm.compute, 2 * kGiB, Time::sec(1));
  ASSERT_TRUE(up.ok);
  const auto down = sdm_.scale_down(vm.vm, vm.compute, up.segment, Time::sec(60));
  ASSERT_TRUE(down.ok) << down.error;
  EXPECT_GT(down.delay(), Time::zero());
  EXPECT_EQ(fabric_.attached_bytes(vm.compute), 0u);
  EXPECT_EQ(switch_.ports_in_use(), 0u);
  auto& hv = sdm_.agent_for(vm.compute).hypervisor();
  EXPECT_EQ(hv.vm(vm.vm).hotplugged_bytes(), 0u);
}

TEST_F(SdmControllerTest, ScaleDownUnknownSegmentFails) {
  AllocationRequest req;
  const auto vm = sdm_.allocate_vm(req, Time::zero());
  ASSERT_TRUE(vm.ok);
  const auto down = sdm_.scale_down(vm.vm, vm.compute, hw::SegmentId{42}, Time::sec(1));
  EXPECT_FALSE(down.ok);
}

TEST_F(SdmControllerTest, AgentLookupValidation) {
  EXPECT_THROW(sdm_.agent_for(hw::BrickId{999}), std::out_of_range);
  EXPECT_TRUE(sdm_.has_agent(computes_[0]));
  EXPECT_FALSE(sdm_.has_agent(membricks_[0]));
}

TEST_F(SdmControllerTest, CompletedCounterIncrements) {
  AllocationRequest req;
  const auto vm = sdm_.allocate_vm(req, Time::zero());
  ASSERT_TRUE(vm.ok);
  EXPECT_EQ(sdm_.completed_scale_ups(), 0u);
  do_scale_up(vm.vm, vm.compute, kGiB, Time::sec(1));
  EXPECT_EQ(sdm_.completed_scale_ups(), 1u);
}

TEST_F(SdmControllerTest, IntraTrayMembrickPreferredWhenAvailable) {
  // Add a memory brick on the compute tray: it should win selection over
  // the cross-tray ones, and its attach must skip switch programming.
  hw::MemoryBrickConfig mc;
  mc.capacity_bytes = 16 * kGiB;
  const hw::TrayId compute_tray = rack_.brick(computes_[0]).tray();
  const hw::BrickId local_mb = rack_.add_memory_brick(compute_tray, mc).id();

  AllocationRequest req;
  const auto vm = sdm_.allocate_vm(req, Time::zero());
  ASSERT_TRUE(vm.ok);
  const auto result = do_scale_up(vm.vm, vm.compute, kGiB, Time::sec(1));
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.membrick, local_mb);
  EXPECT_EQ(result.breakdown.of("switch programming"), Time::zero());
  EXPECT_EQ(switch_.ports_in_use(), 0u);
  const auto attachments = fabric_.attachments_of(vm.compute);
  ASSERT_EQ(attachments.size(), 1u);
  EXPECT_EQ(attachments[0].medium, memsys::LinkMedium::kElectrical);
}

TEST_F(SdmControllerTest, InventoryReflectsRackState) {
  AllocationRequest req;
  req.vcpus = 2;
  req.memory_bytes = 2 * kGiB;
  const auto vm = sdm_.allocate_vm(req, Time::zero());
  ASSERT_TRUE(vm.ok);
  const auto up = do_scale_up(vm.vm, vm.compute, kGiB, Time::sec(1));
  ASSERT_TRUE(up.ok);

  const auto inventory = sdm_.inventory();
  ASSERT_EQ(inventory.size(), 4u);  // 2 compute + 2 memory bricks
  std::size_t total_cores_used = 0;
  std::uint64_t total_mem_used = 0;
  std::size_t vms = 0;
  for (const auto& s : inventory) {
    total_cores_used += s.cores_used;
    total_mem_used += s.memory_used;
    vms += s.vms;
    if (s.brick == vm.compute) {
      EXPECT_EQ(s.kind, hw::BrickKind::kCompute);
      EXPECT_EQ(s.power, hw::PowerState::kActive);
      EXPECT_EQ(s.ports_used, 1u);  // the scale-up circuit
    }
    if (s.brick == up.membrick) {
      EXPECT_EQ(s.segments, 1u);
    }
  }
  EXPECT_EQ(total_cores_used, 2u);
  EXPECT_EQ(total_mem_used, kGiB);
  EXPECT_EQ(vms, 1u);
}

TEST(OpenStackFrontendTest, BootRecordsInstances) {
  hw::Rack rack;
  const hw::TrayId tray = rack.add_tray();
  auto& cb = rack.add_compute_brick(tray);
  optics::OpticalSwitch sw;
  optics::CircuitManager circuits{sw};
  memsys::RemoteMemoryFabric fabric{rack, circuits};
  SdmController sdm{rack, fabric, circuits};
  os::BareMetalOs os{cb};
  hyp::Hypervisor hv{cb, os};
  SdmAgent agent{hv, os};
  sdm.register_agent(agent);

  OpenStackFrontend front{sdm};
  const auto ok = front.boot("web-1", 1, 1ull << 30, Time::zero());
  EXPECT_TRUE(ok.ok);
  const auto fail = front.boot("web-2", 64, 1ull << 30, Time::zero());
  EXPECT_FALSE(fail.ok);
  EXPECT_EQ(front.active_instances(), 1u);
  EXPECT_EQ(front.instances()[0].name, "web-1");
}

}  // namespace
}  // namespace dredbox::orch
