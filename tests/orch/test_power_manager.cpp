#include "orch/power_manager.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "orch/sdm_controller.hpp"

namespace dredbox::orch {
namespace {

using sim::Time;
constexpr std::uint64_t kGiB = 1ull << 30;

TEST(PowerManagerTest, TickPowersOffIdleBricks) {
  hw::Rack rack;
  const hw::TrayId tray = rack.add_tray();
  rack.add_memory_brick(tray);
  rack.add_memory_brick(tray);
  PowerManager pm{rack};
  // Too early: nothing idle long enough.
  EXPECT_EQ(pm.tick(Time::sec(30)), 0u);
  // Past the timeout both idle bricks go dark.
  EXPECT_EQ(pm.tick(Time::sec(61)), 2u);
  EXPECT_EQ(pm.powered_off_bricks(), 2u);
  EXPECT_EQ(pm.power_offs(), 2u);
}

TEST(PowerManagerTest, ActivityResetsIdleClock) {
  hw::Rack rack;
  const hw::TrayId tray = rack.add_tray();
  const hw::BrickId mb = rack.add_memory_brick(tray).id();
  PowerManager pm{rack};
  pm.note_activity(mb, Time::sec(50));
  EXPECT_EQ(pm.tick(Time::sec(100)), 0u);  // idle only 50 s
  EXPECT_EQ(pm.tick(Time::sec(111)), 1u);
}

TEST(PowerManagerTest, ActiveBricksAreNeverSwept) {
  hw::Rack rack;
  const hw::TrayId tray = rack.add_tray();
  auto& mb = rack.add_memory_brick(tray);
  auto seg = mb.allocate(kGiB, hw::BrickId{1});  // brick becomes kActive
  ASSERT_TRUE(seg);
  PowerManager pm{rack};
  EXPECT_EQ(pm.tick(Time::sec(1000)), 0u);
  EXPECT_EQ(mb.power_state(), hw::PowerState::kActive);
}

TEST(PowerManagerTest, BricksWithCircuitsAreNotSwept) {
  hw::Rack rack;
  const hw::TrayId tray = rack.add_tray();
  auto& mb = rack.add_memory_brick(tray);
  mb.port(0).connected = true;  // live circuit endpoint
  PowerManager pm{rack};
  EXPECT_EQ(pm.tick(Time::sec(1000)), 0u);
}

TEST(PowerManagerTest, KeepComputeBricksOnPolicy) {
  hw::Rack rack;
  const hw::TrayId tray = rack.add_tray();
  rack.add_compute_brick(tray);
  rack.add_memory_brick(tray);
  PowerPolicyConfig policy;
  policy.keep_compute_bricks_on = true;
  PowerManager pm{rack, policy};
  EXPECT_EQ(pm.tick(Time::sec(1000)), 1u);  // only the memory brick
}

TEST(PowerManagerTest, EnsurePoweredChargesWakeLatency) {
  hw::Rack rack;
  const hw::TrayId tray = rack.add_tray();
  const hw::BrickId mb = rack.add_memory_brick(tray).id();
  PowerManager pm{rack};
  pm.tick(Time::sec(100));
  ASSERT_EQ(rack.brick(mb).power_state(), hw::PowerState::kOff);
  const Time wake = pm.ensure_powered(mb, Time::sec(200));
  EXPECT_EQ(wake, pm.config().wake_latency);
  EXPECT_EQ(rack.brick(mb).power_state(), hw::PowerState::kIdle);
  EXPECT_EQ(pm.wake_ups(), 1u);
  // Already powered: free.
  EXPECT_EQ(pm.ensure_powered(mb, Time::sec(201)), Time::zero());
  EXPECT_EQ(pm.wake_ups(), 1u);
}

TEST(PowerManagerTest, SdmChargesWakeUpInScaleUpPath) {
  hw::Rack rack;
  optics::OpticalSwitch sw;
  optics::CircuitManager circuits{sw};
  memsys::RemoteMemoryFabric fabric{rack, circuits};
  SdmController sdm{rack, fabric, circuits};

  const hw::TrayId tray_a = rack.add_tray();
  const hw::TrayId tray_b = rack.add_tray();
  hw::ComputeBrickConfig cc;
  cc.apu_cores = 2;
  cc.local_memory_bytes = 4 * kGiB;
  auto& cb = rack.add_compute_brick(tray_a, cc);
  os::BareMetalOs os{cb};
  hyp::Hypervisor hv{cb, os};
  SdmAgent agent{hv, os};
  sdm.register_agent(agent);
  const hw::BrickId mb = rack.add_memory_brick(tray_b).id();

  PowerManager pm{rack};
  sdm.set_power_manager(&pm);

  AllocationRequest req;
  const auto vm = sdm.allocate_vm(req, Time::zero());
  ASSERT_TRUE(vm.ok);

  // Sweep the idle memory brick, then scale up: the request pays the wake.
  pm.tick(Time::sec(100));
  ASSERT_EQ(rack.brick(mb).power_state(), hw::PowerState::kOff);
  ScaleUpRequest sr;
  sr.vm = vm.vm;
  sr.compute = vm.compute;
  sr.bytes = kGiB;
  sr.posted_at = Time::sec(200);
  const auto result = sdm.scale_up(sr);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.breakdown.of("brick wake-up"), pm.config().wake_latency);
  EXPECT_GT(result.delay(), pm.config().wake_latency);
}

}  // namespace
}  // namespace dredbox::orch
