#include "orch/migration.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace dredbox::orch {
namespace {

using sim::Time;
constexpr std::uint64_t kGiB = 1ull << 30;

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest()
      : circuits_{switch_}, fabric_{rack_, circuits_}, sdm_{rack_, fabric_, circuits_},
        engine_{rack_, fabric_, sdm_} {
    const hw::TrayId tray_a = rack_.add_tray();
    const hw::TrayId tray_b = rack_.add_tray();
    hw::ComputeBrickConfig cc;
    cc.apu_cores = 4;
    cc.local_memory_bytes = 4 * kGiB;
    for (hw::TrayId tray : {tray_a, tray_b}) {
      auto& cb = rack_.add_compute_brick(tray, cc);
      stacks_.push_back(std::make_unique<Stack>(cb));
      sdm_.register_agent(stacks_.back()->agent);
      computes_.push_back(cb.id());
    }
    hw::MemoryBrickConfig mc;
    mc.capacity_bytes = 32 * kGiB;
    membrick_ = rack_.add_memory_brick(tray_b, mc).id();
  }

  struct Stack {
    explicit Stack(hw::ComputeBrick& brick)
        : os{brick}, hypervisor{brick, os}, agent{hypervisor, os} {}
    os::BareMetalOs os;
    hyp::Hypervisor hypervisor;
    SdmAgent agent;
  };

  /// Boots a VM on computes_[0] with 1 GiB local and `remote_gib`
  /// disaggregated.
  hw::VmId boot_with_remote(std::uint64_t remote_gib) {
    AllocationRequest req;
    req.vcpus = 2;
    req.memory_bytes = kGiB;
    auto vm = sdm_.allocate_vm(req, Time::zero());
    EXPECT_TRUE(vm.ok) << vm.error;
    EXPECT_EQ(vm.compute, computes_[0]);
    for (std::uint64_t g = 0; g < remote_gib; ++g) {
      ScaleUpRequest sr;
      sr.vm = vm.vm;
      sr.compute = vm.compute;
      sr.bytes = kGiB;
      sr.posted_at = Time::sec(1 + static_cast<double>(g));
      const auto r = sdm_.scale_up(sr);
      EXPECT_TRUE(r.ok) << r.error;
    }
    return vm.vm;
  }

  hw::Rack rack_;
  optics::OpticalSwitch switch_;
  optics::CircuitManager circuits_;
  memsys::RemoteMemoryFabric fabric_;
  SdmController sdm_;
  MigrationEngine engine_;
  std::vector<std::unique_ptr<Stack>> stacks_;
  std::vector<hw::BrickId> computes_;
  hw::BrickId membrick_;
};

TEST_F(MigrationTest, MigratesVmAndRepointsSegments) {
  const hw::VmId vm = boot_with_remote(2);
  const auto result = engine_.migrate(vm, computes_[0], computes_[1], Time::sec(100));
  ASSERT_TRUE(result.ok) << result.error;

  // Source instance retired; destination instance running with the same
  // footprint.
  EXPECT_FALSE(stacks_[0]->hypervisor.has_vm(vm));
  auto& dst = stacks_[1]->hypervisor;
  ASSERT_TRUE(dst.has_vm(result.new_vm));
  EXPECT_EQ(dst.vm(result.new_vm).installed_bytes(), 3 * kGiB);
  EXPECT_EQ(dst.vm(result.new_vm).hotplugged_bytes(), 2 * kGiB);

  // Segments re-pointed, not copied.
  EXPECT_EQ(result.repointed_bytes, 2 * kGiB);
  EXPECT_EQ(fabric_.attached_bytes(computes_[0]), 0u);
  EXPECT_EQ(fabric_.attached_bytes(computes_[1]), 2 * kGiB);
  // Data never moved on the dMEMBRICK: same segments, new owner.
  EXPECT_EQ(rack_.memory_brick(membrick_).bytes_owned_by(computes_[1]), 2 * kGiB);

  // Source kernel dropped the remote regions.
  EXPECT_EQ(stacks_[0]->os.remote_bytes(), 0u);
  EXPECT_EQ(stacks_[1]->os.remote_bytes(), 2 * kGiB);

  // Cores moved.
  EXPECT_EQ(rack_.compute_brick(computes_[0]).cores_in_use(), 0u);
  EXPECT_EQ(rack_.compute_brick(computes_[1]).cores_in_use(), 2u);
}

TEST_F(MigrationTest, OnlyLocalMemoryIsCopied) {
  const hw::VmId vm = boot_with_remote(3);
  const auto result = engine_.migrate(vm, computes_[0], computes_[1], Time::sec(100));
  ASSERT_TRUE(result.ok);
  // Copied bytes ~ local 1 GiB plus dirty-page rounds; far below the
  // 4 GiB total footprint.
  EXPECT_GE(result.copied_bytes, 1 * kGiB);
  EXPECT_LT(result.copied_bytes, 2 * kGiB);
  EXPECT_EQ(result.repointed_bytes, 3 * kGiB);
  EXPECT_GT(result.precopy_iterations, 0u);
}

TEST_F(MigrationTest, DisaggregationBeatsConventionalCopy) {
  const hw::VmId vm = boot_with_remote(3);  // 1 GiB local + 3 GiB remote
  const auto result = engine_.migrate(vm, computes_[0], computes_[1], Time::sec(100));
  ASSERT_TRUE(result.ok);
  const sim::Time conventional = engine_.conventional_copy_time(4 * kGiB);
  EXPECT_LT(result.total_time, conventional);
}

TEST_F(MigrationTest, DowntimeIsSmallFractionOfTotal) {
  const hw::VmId vm = boot_with_remote(2);
  const auto result = engine_.migrate(vm, computes_[0], computes_[1], Time::sec(100));
  ASSERT_TRUE(result.ok);
  EXPECT_GT(result.downtime, Time::zero());
  EXPECT_LT(result.downtime, sim::scale(result.total_time, 0.75));
}

TEST_F(MigrationTest, ValidatesArguments) {
  const hw::VmId vm = boot_with_remote(0);
  EXPECT_FALSE(engine_.migrate(vm, computes_[0], computes_[0], Time::sec(10)).ok);
  EXPECT_FALSE(engine_.migrate(hw::VmId{99}, computes_[0], computes_[1], Time::sec(10)).ok);
  EXPECT_FALSE(engine_.migrate(vm, computes_[1], computes_[0], Time::sec(10)).ok);
}

TEST_F(MigrationTest, DestinationMustFitCoresAndLocalMemory) {
  const hw::VmId vm = boot_with_remote(0);
  // Saturate destination cores.
  auto& dst_hv = stacks_[1]->hypervisor;
  ASSERT_TRUE(dst_hv.create_vm(4, kGiB));
  const auto result = engine_.migrate(vm, computes_[0], computes_[1], Time::sec(10));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("cores"), std::string::npos);
}

TEST_F(MigrationTest, ConfigValidation) {
  MigrationConfig bad;
  bad.dirty_rate_bytes_per_sec = 2e9;  // above 10 Gb/s
  EXPECT_THROW(MigrationEngine(rack_, fabric_, sdm_, bad), std::invalid_argument);
  bad = MigrationConfig{};
  bad.network_bandwidth_gbps = 0;
  EXPECT_THROW(MigrationEngine(rack_, fabric_, sdm_, bad), std::invalid_argument);
}

TEST_F(MigrationTest, MigratedVmKeepsWorking) {
  const hw::VmId vm = boot_with_remote(1);
  const auto result = engine_.migrate(vm, computes_[0], computes_[1], Time::sec(100));
  ASSERT_TRUE(result.ok);
  // The re-pointed segment is readable from the new brick.
  const auto attachments = fabric_.attachments_of(computes_[1]);
  ASSERT_EQ(attachments.size(), 1u);
  const auto tx = fabric_.read(computes_[1], attachments[0].compute_base, 64, Time::sec(200));
  EXPECT_TRUE(tx.ok());
  // And a further scale-up on the new brick succeeds.
  ScaleUpRequest sr;
  sr.vm = result.new_vm;
  sr.compute = computes_[1];
  sr.bytes = kGiB;
  sr.posted_at = Time::sec(300);
  EXPECT_TRUE(sdm_.scale_up(sr).ok);
}

}  // namespace
}  // namespace dredbox::orch
