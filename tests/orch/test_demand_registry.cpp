#include "orch/demand_registry.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "orch/sdm_controller.hpp"

namespace dredbox::orch {
namespace {

using sim::Time;
constexpr std::uint64_t kGiB = 1ull << 30;

MemoryDemandRegistry::Report report(hw::BrickId brick, std::uint64_t used,
                                    std::uint64_t usable, Time at) {
  MemoryDemandRegistry::Report r;
  r.compute = brick;
  r.used_bytes = used;
  r.usable_bytes = usable;
  r.at = at;
  return r;
}

TEST(DemandRegistryTest, SlackLeavesHeadroom) {
  MemoryDemandRegistry reg;
  reg.report(hw::VmId{1}, report(hw::BrickId{1}, 2 * kGiB, 8 * kGiB, Time::sec(10)));
  // Reserve 25% over usage: 8 - 2.5 = 5.5 GiB slack.
  EXPECT_EQ(reg.slack_of(hw::VmId{1}, Time::sec(15), Time::sec(30)),
            8 * kGiB - (2 * kGiB + kGiB / 2));
}

TEST(DemandRegistryTest, StaleReportsAreDistrusted) {
  MemoryDemandRegistry reg;
  reg.report(hw::VmId{1}, report(hw::BrickId{1}, kGiB, 8 * kGiB, Time::sec(10)));
  EXPECT_GT(reg.slack_of(hw::VmId{1}, Time::sec(20), Time::sec(30)), 0u);
  EXPECT_EQ(reg.slack_of(hw::VmId{1}, Time::sec(100), Time::sec(30)), 0u);
}

TEST(DemandRegistryTest, UnknownVmHasNoSlack) {
  MemoryDemandRegistry reg;
  EXPECT_EQ(reg.slack_of(hw::VmId{9}, Time::sec(1), Time::sec(30)), 0u);
  EXPECT_FALSE(reg.latest(hw::VmId{9}).has_value());
}

TEST(DemandRegistryTest, BestDonorPicksLargestColocatedSlack) {
  MemoryDemandRegistry reg;
  const Time now = Time::sec(10);
  reg.report(hw::VmId{1}, report(hw::BrickId{1}, kGiB, 4 * kGiB, now));      // slack 2.75G
  reg.report(hw::VmId{2}, report(hw::BrickId{1}, kGiB, 8 * kGiB, now));      // slack 6.75G
  reg.report(hw::VmId{3}, report(hw::BrickId{2}, 0, 16 * kGiB, now));        // other brick
  const auto donor =
      reg.best_donor(hw::BrickId{1}, 2 * kGiB, hw::VmId{99}, now, Time::sec(30));
  ASSERT_TRUE(donor.has_value());
  EXPECT_EQ(*donor, hw::VmId{2});
}

TEST(DemandRegistryTest, BestDonorExcludesRequester) {
  MemoryDemandRegistry reg;
  const Time now = Time::sec(10);
  reg.report(hw::VmId{1}, report(hw::BrickId{1}, 0, 8 * kGiB, now));
  EXPECT_FALSE(reg.best_donor(hw::BrickId{1}, kGiB, hw::VmId{1}, now, Time::sec(30)));
}

TEST(DemandRegistryTest, ForgetRemovesVm) {
  MemoryDemandRegistry reg;
  reg.report(hw::VmId{1}, report(hw::BrickId{1}, 0, kGiB, Time::zero()));
  EXPECT_EQ(reg.tracked(), 1u);
  reg.forget(hw::VmId{1});
  EXPECT_EQ(reg.tracked(), 0u);
}

/// scale_up_smart end-to-end: donor present -> balloon tier; absent ->
/// attach tier.
class SmartScaleUpTest : public ::testing::Test {
 protected:
  SmartScaleUpTest() : circuits_{switch_}, fabric_{rack_, circuits_}, sdm_{rack_, fabric_, circuits_} {
    const hw::TrayId tray_a = rack_.add_tray();
    const hw::TrayId tray_b = rack_.add_tray();
    hw::ComputeBrickConfig cc;
    cc.apu_cores = 4;
    cc.local_memory_bytes = 16 * kGiB;
    auto& cb = rack_.add_compute_brick(tray_a, cc);
    stack_ = std::make_unique<Stack>(cb);
    sdm_.register_agent(stack_->agent);
    compute_ = cb.id();
    rack_.add_memory_brick(tray_b);
  }

  struct Stack {
    explicit Stack(hw::ComputeBrick& brick)
        : os{brick}, hypervisor{brick, os}, agent{hypervisor, os} {}
    os::BareMetalOs os;
    hyp::Hypervisor hypervisor;
    SdmAgent agent;
  };

  hw::Rack rack_;
  optics::OpticalSwitch switch_;
  optics::CircuitManager circuits_;
  memsys::RemoteMemoryFabric fabric_;
  SdmController sdm_;
  std::unique_ptr<Stack> stack_;
  hw::BrickId compute_;
};

TEST_F(SmartScaleUpTest, UsesBalloonTierWhenDonorReported) {
  auto donor = stack_->hypervisor.create_vm(1, 8 * kGiB);
  auto taker = stack_->hypervisor.create_vm(1, 2 * kGiB);
  ASSERT_TRUE(donor && taker);
  // The donor reports it only uses 1 GiB of its 8 GiB.
  sdm_.demand_registry().report(
      *donor, MemoryDemandRegistry::Report{compute_, kGiB, 8 * kGiB, Time::sec(5)});

  ScaleUpRequest req;
  req.vm = *taker;
  req.compute = compute_;
  req.bytes = 2 * kGiB;
  req.posted_at = Time::sec(10);
  const auto result = sdm_.scale_up_smart(req);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.breakdown.has("balloon reclaim (donor)"));
  EXPECT_EQ(fabric_.attachment_count(), 0u);  // fabric untouched
  EXPECT_EQ(stack_->hypervisor.vm(*donor).usable_bytes(), 6 * kGiB);
  EXPECT_EQ(stack_->hypervisor.vm(*taker).usable_bytes(), 4 * kGiB);
}

TEST_F(SmartScaleUpTest, FallsBackToAttachWithoutDonor) {
  auto taker = stack_->hypervisor.create_vm(1, 2 * kGiB);
  ASSERT_TRUE(taker);
  ScaleUpRequest req;
  req.vm = *taker;
  req.compute = compute_;
  req.bytes = 2 * kGiB;
  req.posted_at = Time::sec(10);
  const auto result = sdm_.scale_up_smart(req);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.breakdown.has("baremetal hotplug"));
  EXPECT_EQ(fabric_.attachment_count(), 1u);
}

TEST_F(SmartScaleUpTest, StaleDonorReportIgnored) {
  auto donor = stack_->hypervisor.create_vm(1, 8 * kGiB);
  auto taker = stack_->hypervisor.create_vm(1, 2 * kGiB);
  ASSERT_TRUE(donor && taker);
  sdm_.demand_registry().report(
      *donor, MemoryDemandRegistry::Report{compute_, kGiB, 8 * kGiB, Time::sec(5)});
  ScaleUpRequest req;
  req.vm = *taker;
  req.compute = compute_;
  req.bytes = 2 * kGiB;
  req.posted_at = Time::sec(500);  // far beyond the staleness limit
  const auto result = sdm_.scale_up_smart(req);
  ASSERT_TRUE(result.ok);
  EXPECT_FALSE(result.breakdown.has("balloon reclaim (donor)"));
  EXPECT_EQ(fabric_.attachment_count(), 1u);
}

TEST_F(SmartScaleUpTest, ReportGuestUsageFeedsRegistry) {
  auto donor = stack_->hypervisor.create_vm(1, 8 * kGiB);
  auto taker = stack_->hypervisor.create_vm(1, 2 * kGiB);
  ASSERT_TRUE(donor && taker);
  // The agent reports usage directly; usable is taken from the hypervisor.
  sdm_.report_guest_usage(*donor, compute_, kGiB, Time::sec(5));
  const auto latest = sdm_.demand_registry().latest(*donor);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->usable_bytes, 8 * kGiB);
  EXPECT_EQ(latest->used_bytes, kGiB);

  // And the smart path can now serve from the balloon tier.
  ScaleUpRequest req;
  req.vm = *taker;
  req.compute = compute_;
  req.bytes = 2 * kGiB;
  req.posted_at = Time::sec(10);
  const auto result = sdm_.scale_up_smart(req);
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.breakdown.has("balloon reclaim (donor)"));
}

TEST_F(SmartScaleUpTest, ReportForUnknownVmForgetsEntry) {
  sdm_.demand_registry().report(
      hw::VmId{77}, MemoryDemandRegistry::Report{compute_, 0, kGiB, Time::sec(1)});
  sdm_.report_guest_usage(hw::VmId{77}, compute_, kGiB, Time::sec(2));
  EXPECT_FALSE(sdm_.demand_registry().latest(hw::VmId{77}).has_value());
}

TEST_F(SmartScaleUpTest, RegistryUpdatedAfterDonation) {
  auto donor = stack_->hypervisor.create_vm(1, 8 * kGiB);
  auto taker = stack_->hypervisor.create_vm(1, 2 * kGiB);
  ASSERT_TRUE(donor && taker);
  sdm_.demand_registry().report(
      *donor, MemoryDemandRegistry::Report{compute_, kGiB, 8 * kGiB, Time::sec(5)});
  ScaleUpRequest req;
  req.vm = *taker;
  req.compute = compute_;
  req.bytes = 2 * kGiB;
  req.posted_at = Time::sec(10);
  ASSERT_TRUE(sdm_.scale_up_smart(req).ok);
  const auto latest = sdm_.demand_registry().latest(*donor);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->usable_bytes, 6 * kGiB);
}

}  // namespace
}  // namespace dredbox::orch
