#include "orch/consolidator.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace dredbox::orch {
namespace {

using sim::Time;
constexpr std::uint64_t kGiB = 1ull << 30;

class ConsolidatorTest : public ::testing::Test {
 protected:
  ConsolidatorTest()
      : circuits_{switch_},
        fabric_{rack_, circuits_},
        sdm_{rack_, fabric_, circuits_},
        engine_{rack_, fabric_, sdm_},
        power_{rack_} {
    // Four compute bricks on two trays, memory bricks on a third tray.
    const hw::TrayId tray_a = rack_.add_tray();
    const hw::TrayId tray_b = rack_.add_tray();
    const hw::TrayId tray_m = rack_.add_tray();
    hw::ComputeBrickConfig cc;
    cc.apu_cores = 4;
    cc.local_memory_bytes = 8 * kGiB;
    for (hw::TrayId tray : {tray_a, tray_a, tray_b, tray_b}) {
      auto& cb = rack_.add_compute_brick(tray, cc);
      stacks_.push_back(std::make_unique<Stack>(cb));
      sdm_.register_agent(stacks_.back()->agent);
      computes_.push_back(cb.id());
    }
    hw::MemoryBrickConfig mc;
    mc.capacity_bytes = 64 * kGiB;
    rack_.add_memory_brick(tray_m, mc);
  }

  struct Stack {
    explicit Stack(hw::ComputeBrick& brick)
        : os{brick}, hypervisor{brick, os}, agent{hypervisor, os} {}
    os::BareMetalOs os;
    hyp::Hypervisor hypervisor;
    SdmAgent agent;
  };

  /// Boots one 1-core VM on a specific brick (bypassing placement).
  hw::VmId boot_on(std::size_t brick_index) {
    auto& hv = stacks_[brick_index]->hypervisor;
    auto vm = hv.create_vm(1, kGiB);
    EXPECT_TRUE(vm.has_value());
    return *vm;
  }

  hw::Rack rack_;
  optics::OpticalSwitch switch_;
  optics::CircuitManager circuits_;
  memsys::RemoteMemoryFabric fabric_;
  SdmController sdm_;
  MigrationEngine engine_;
  PowerManager power_;
  std::vector<std::unique_ptr<Stack>> stacks_;
  std::vector<hw::BrickId> computes_;
};

TEST_F(ConsolidatorTest, PacksScatteredVmsOntoFewerBricks) {
  // One single-core VM on each of the four bricks: 4 bricks at 25%.
  for (std::size_t i = 0; i < 4; ++i) boot_on(i);
  Consolidator consolidator{rack_, sdm_, engine_, power_};
  const auto report = consolidator.consolidate(Time::sec(10));

  EXPECT_GT(report.migrations, 0u);
  EXPECT_GE(report.bricks_emptied, 2u);
  // All four VMs still run somewhere.
  std::size_t total_vms = 0;
  for (const auto& s : stacks_) total_vms += s->hypervisor.vm_count();
  EXPECT_EQ(total_vms, 4u);
  // At most one brick hosts them all (4 x 1 core fits a 4-core brick).
  std::size_t hosting = 0;
  for (const auto& s : stacks_) hosting += s->hypervisor.vm_count() > 0 ? 1 : 0;
  EXPECT_EQ(hosting, 1u);
  // The sweep turns off the 3 emptied compute bricks (plus the idle
  // memory brick, which holds no segments in this scenario).
  EXPECT_GE(report.bricks_powered_off, 3u);
  std::size_t compute_off = 0;
  for (hw::BrickId cb : computes_) {
    if (rack_.brick(cb).power_state() == hw::PowerState::kOff) ++compute_off;
  }
  EXPECT_EQ(compute_off, 3u);
}

TEST_F(ConsolidatorTest, BusyBricksAreNotDonors) {
  // Brick 0 full (4 cores), brick 1 has one VM.
  for (int i = 0; i < 4; ++i) boot_on(0);
  boot_on(1);
  Consolidator consolidator{rack_, sdm_, engine_, power_};
  const auto report = consolidator.consolidate(Time::sec(10));
  // Only the light brick evacuates... but brick 0 has no room, so the VM
  // has nowhere to go (other bricks are empty donors themselves, but an
  // empty brick is a worse target than staying put: util 0 targets are
  // allowed, so it may move to one. Either way brick 0's VMs never move.
  EXPECT_EQ(stacks_[0]->hypervisor.vm_count(), 4u);
}

TEST_F(ConsolidatorTest, RespectsMigrationBudget) {
  for (std::size_t i = 0; i < 4; ++i) boot_on(i);
  Consolidator::Config cfg;
  cfg.max_migrations_per_pass = 1;
  Consolidator consolidator{rack_, sdm_, engine_, power_, cfg};
  const auto report = consolidator.consolidate(Time::sec(10));
  EXPECT_LE(report.migrations, 1u);
}

TEST_F(ConsolidatorTest, NoWorkOnEmptyRack) {
  Consolidator consolidator{rack_, sdm_, engine_, power_};
  const auto report = consolidator.consolidate(Time::sec(10));
  EXPECT_EQ(report.migrations, 0u);
  EXPECT_EQ(report.bricks_emptied, 0u);
}

TEST_F(ConsolidatorTest, MovesCarryDisaggregatedMemory) {
  // VM on brick 0 with a remote segment; VM on brick 1 as the anchor.
  auto& hv0 = stacks_[0]->hypervisor;
  auto vm0 = hv0.create_vm(1, kGiB);
  ASSERT_TRUE(vm0);
  ScaleUpRequest req;
  req.vm = *vm0;
  req.compute = computes_[0];
  req.bytes = 2 * kGiB;
  req.posted_at = Time::sec(1);
  ASSERT_TRUE(sdm_.scale_up(req).ok);
  boot_on(1);
  boot_on(1);  // brick 1 is the busiest target

  Consolidator consolidator{rack_, sdm_, engine_, power_};
  const auto report = consolidator.consolidate(Time::sec(60));
  ASSERT_GE(report.migrations, 1u);
  // The remote memory followed the VM (re-pointed to its new host).
  EXPECT_EQ(fabric_.attached_bytes(computes_[0]), 0u);
  std::uint64_t total_attached = 0;
  for (hw::BrickId cb : computes_) total_attached += fabric_.attached_bytes(cb);
  EXPECT_EQ(total_attached, 2 * kGiB);
  for (const auto& move : report.moves) {
    if (move.from == computes_[0]) EXPECT_EQ(move.repointed_bytes, 2 * kGiB);
  }
}

}  // namespace
}  // namespace dredbox::orch
