#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/retry.hpp"

// Property coverage for sim::BackoffSchedule, exercised across a sweep of
// policies and failure timings. These are the guarantees retry.hpp
// documents: bounded attempts, monotone non-decreasing delays, and a
// deadline that always fires.

namespace dredbox::sim {
namespace {

std::vector<RetryPolicy> policy_sweep() {
  std::vector<RetryPolicy> policies;
  for (std::size_t attempts : {1u, 2u, 4u, 8u, 32u}) {
    for (double multiplier : {1.0, 1.5, 2.0, 10.0}) {
      RetryPolicy p;
      p.max_attempts = attempts;
      p.multiplier = multiplier;
      policies.push_back(p);
      RetryPolicy tight = p;
      tight.timeout = Time::us(25);  // deadline binds before attempts do
      policies.push_back(tight);
      RetryPolicy capped = p;
      capped.max_backoff = Time::us(15);  // cap binds quickly
      policies.push_back(capped);
    }
  }
  return policies;
}

/// Drains a schedule: reports a failure immediately after every granted
/// delay elapses, collecting the granted delays.
std::vector<Time> drain(BackoffSchedule& schedule, Time first_issue,
                        Time attempt_cost = Time::zero()) {
  std::vector<Time> delays;
  Time now = first_issue + attempt_cost;
  while (auto delay = schedule.next(now)) {
    delays.push_back(*delay);
    now = now + *delay + attempt_cost;
    if (delays.size() > 1000) break;  // safety net; never hit if bounded
  }
  return delays;
}

TEST(RetryProperties, AtMostMaxAttemptsAreEverIssued) {
  for (const RetryPolicy& policy : policy_sweep()) {
    BackoffSchedule schedule{policy, Time::ms(1)};
    const auto delays = drain(schedule, Time::ms(1));
    // First attempt + one per granted delay.
    EXPECT_LE(1 + delays.size(), policy.max_attempts) << policy.to_string();
    EXPECT_LE(schedule.attempts(), policy.max_attempts) << policy.to_string();
    EXPECT_TRUE(schedule.exhausted());
  }
}

TEST(RetryProperties, DelaysAreMonotonicallyNonDecreasing) {
  for (const RetryPolicy& policy : policy_sweep()) {
    BackoffSchedule schedule{policy, Time::zero()};
    const auto delays = drain(schedule, Time::zero());
    for (std::size_t i = 1; i < delays.size(); ++i) {
      EXPECT_GE(delays[i], delays[i - 1]) << policy.to_string() << " at retry " << i;
    }
  }
}

TEST(RetryProperties, DelaysNeverExceedTheCap) {
  for (const RetryPolicy& policy : policy_sweep()) {
    BackoffSchedule schedule{policy, Time::zero()};
    for (const Time delay : drain(schedule, Time::zero())) {
      EXPECT_LE(delay, policy.max_backoff) << policy.to_string();
    }
  }
}

TEST(RetryProperties, DeadlineAlwaysFires) {
  // No retry is ever scheduled at or past first_issue + timeout, even when
  // each attempt itself burns time.
  for (const RetryPolicy& policy : policy_sweep()) {
    for (const Time cost : {Time::zero(), Time::us(3), Time::ms(20)}) {
      const Time first_issue = Time::ms(5);
      BackoffSchedule schedule{policy, first_issue};
      const Time deadline = first_issue + policy.timeout;
      EXPECT_EQ(schedule.deadline(), deadline);
      Time now = first_issue + cost;
      while (auto delay = schedule.next(now)) {
        now = now + *delay;
        EXPECT_LT(now, deadline) << policy.to_string();
        now = now + cost;
      }
    }
  }
}

TEST(RetryProperties, NulloptIsSticky) {
  for (const RetryPolicy& policy : policy_sweep()) {
    BackoffSchedule schedule{policy, Time::zero()};
    drain(schedule, Time::zero());
    ASSERT_TRUE(schedule.exhausted());
    for (int i = 0; i < 3; ++i) {
      EXPECT_FALSE(schedule.next(Time::us(i)).has_value());
    }
  }
}

TEST(RetryProperties, FailurePastDeadlineGrantsNothing) {
  RetryPolicy policy;
  BackoffSchedule schedule{policy, Time::zero()};
  EXPECT_TRUE(schedule.expired(policy.timeout));
  EXPECT_FALSE(schedule.next(policy.timeout + Time::us(1)).has_value());
  EXPECT_TRUE(schedule.exhausted());
}

TEST(RetryProperties, SingleAttemptPolicyNeverRetries) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  BackoffSchedule schedule{policy, Time::zero()};
  EXPECT_FALSE(schedule.next(Time::us(1)).has_value());
  EXPECT_EQ(schedule.attempts(), 1u);
}

TEST(RetryProperties, ValidateRejectsMalformedPolicies) {
  RetryPolicy ok;
  EXPECT_NO_THROW(ok.validate());

  RetryPolicy zero_attempts;
  zero_attempts.max_attempts = 0;
  EXPECT_THROW(zero_attempts.validate(), std::invalid_argument);

  RetryPolicy shrinking;
  shrinking.multiplier = 0.5;
  EXPECT_THROW(shrinking.validate(), std::invalid_argument);

  RetryPolicy no_deadline;
  no_deadline.timeout = Time::zero();
  EXPECT_THROW(no_deadline.validate(), std::invalid_argument);

  RetryPolicy negative_backoff;
  negative_backoff.initial_backoff = Time::zero() - Time::us(1);
  EXPECT_THROW(negative_backoff.validate(), std::invalid_argument);
}

TEST(RetryProperties, SameHistorySameSchedule) {
  // Purely arithmetic: two schedules fed identical failure times agree on
  // every delay (the digest-reproducibility requirement).
  RetryPolicy policy;
  policy.max_attempts = 8;
  BackoffSchedule a{policy, Time::ms(3)};
  BackoffSchedule b{policy, Time::ms(3)};
  Time now = Time::ms(3);
  for (;;) {
    const auto da = a.next(now);
    const auto db = b.next(now);
    ASSERT_EQ(da.has_value(), db.has_value());
    if (!da) break;
    EXPECT_EQ(*da, *db);
    now = now + *da + Time::us(2);
  }
}

}  // namespace
}  // namespace dredbox::sim
