#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/retry.hpp"

// Property coverage for sim::BackoffSchedule, exercised across a sweep of
// policies and failure timings. These are the guarantees retry.hpp
// documents: bounded attempts, monotone non-decreasing delays, and a
// deadline that always fires.

namespace dredbox::sim {
namespace {

std::vector<RetryPolicy> policy_sweep() {
  std::vector<RetryPolicy> policies;
  for (std::size_t attempts : {1u, 2u, 4u, 8u, 32u}) {
    for (double multiplier : {1.0, 1.5, 2.0, 10.0}) {
      RetryPolicy p;
      p.max_attempts = attempts;
      p.multiplier = multiplier;
      policies.push_back(p);
      RetryPolicy tight = p;
      tight.timeout = Time::us(25);  // deadline binds before attempts do
      policies.push_back(tight);
      RetryPolicy capped = p;
      capped.max_backoff = Time::us(15);  // cap binds quickly
      policies.push_back(capped);
    }
  }
  return policies;
}

/// Drains a schedule: reports a failure immediately after every granted
/// delay elapses, collecting the granted delays.
std::vector<Time> drain(BackoffSchedule& schedule, Time first_issue,
                        Time attempt_cost = Time::zero()) {
  std::vector<Time> delays;
  Time now = first_issue + attempt_cost;
  while (auto delay = schedule.next(now)) {
    delays.push_back(*delay);
    now = now + *delay + attempt_cost;
    if (delays.size() > 1000) break;  // safety net; never hit if bounded
  }
  return delays;
}

TEST(RetryProperties, AtMostMaxAttemptsAreEverIssued) {
  for (const RetryPolicy& policy : policy_sweep()) {
    BackoffSchedule schedule{policy, Time::ms(1)};
    const auto delays = drain(schedule, Time::ms(1));
    // First attempt + one per granted delay.
    EXPECT_LE(1 + delays.size(), policy.max_attempts) << policy.to_string();
    EXPECT_LE(schedule.attempts(), policy.max_attempts) << policy.to_string();
    EXPECT_TRUE(schedule.exhausted());
  }
}

TEST(RetryProperties, DelaysAreMonotonicallyNonDecreasing) {
  for (const RetryPolicy& policy : policy_sweep()) {
    BackoffSchedule schedule{policy, Time::zero()};
    const auto delays = drain(schedule, Time::zero());
    for (std::size_t i = 1; i < delays.size(); ++i) {
      EXPECT_GE(delays[i], delays[i - 1]) << policy.to_string() << " at retry " << i;
    }
  }
}

TEST(RetryProperties, DelaysNeverExceedTheCap) {
  for (const RetryPolicy& policy : policy_sweep()) {
    BackoffSchedule schedule{policy, Time::zero()};
    for (const Time delay : drain(schedule, Time::zero())) {
      EXPECT_LE(delay, policy.max_backoff) << policy.to_string();
    }
  }
}

TEST(RetryProperties, DeadlineAlwaysFires) {
  // No retry is ever scheduled at or past first_issue + timeout, even when
  // each attempt itself burns time.
  for (const RetryPolicy& policy : policy_sweep()) {
    for (const Time cost : {Time::zero(), Time::us(3), Time::ms(20)}) {
      const Time first_issue = Time::ms(5);
      BackoffSchedule schedule{policy, first_issue};
      const Time deadline = first_issue + policy.timeout;
      EXPECT_EQ(schedule.deadline(), deadline);
      Time now = first_issue + cost;
      while (auto delay = schedule.next(now)) {
        now = now + *delay;
        EXPECT_LT(now, deadline) << policy.to_string();
        now = now + cost;
      }
    }
  }
}

TEST(RetryProperties, NulloptIsSticky) {
  for (const RetryPolicy& policy : policy_sweep()) {
    BackoffSchedule schedule{policy, Time::zero()};
    drain(schedule, Time::zero());
    ASSERT_TRUE(schedule.exhausted());
    for (int i = 0; i < 3; ++i) {
      EXPECT_FALSE(schedule.next(Time::us(i)).has_value());
    }
  }
}

TEST(RetryProperties, FailurePastDeadlineGrantsNothing) {
  RetryPolicy policy;
  BackoffSchedule schedule{policy, Time::zero()};
  EXPECT_TRUE(schedule.expired(policy.timeout));
  EXPECT_FALSE(schedule.next(policy.timeout + Time::us(1)).has_value());
  EXPECT_TRUE(schedule.exhausted());
}

TEST(RetryProperties, SingleAttemptPolicyNeverRetries) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  BackoffSchedule schedule{policy, Time::zero()};
  EXPECT_FALSE(schedule.next(Time::us(1)).has_value());
  EXPECT_EQ(schedule.attempts(), 1u);
}

TEST(RetryProperties, ValidateRejectsMalformedPolicies) {
  RetryPolicy ok;
  EXPECT_NO_THROW(ok.validate());

  RetryPolicy zero_attempts;
  zero_attempts.max_attempts = 0;
  EXPECT_THROW(zero_attempts.validate(), std::invalid_argument);

  RetryPolicy shrinking;
  shrinking.multiplier = 0.5;
  EXPECT_THROW(shrinking.validate(), std::invalid_argument);

  RetryPolicy no_deadline;
  no_deadline.timeout = Time::zero();
  EXPECT_THROW(no_deadline.validate(), std::invalid_argument);

  RetryPolicy negative_backoff;
  negative_backoff.initial_backoff = Time::zero() - Time::us(1);
  EXPECT_THROW(negative_backoff.validate(), std::invalid_argument);
}

TEST(RetryProperties, DelaysSaturateAtCapAcrossManyAttempts) {
  // Drive 64+ attempts under aggressive multipliers: once the geometric
  // growth reaches max_backoff the delay must stay pinned there exactly —
  // never negative, never wrapped, never above the cap. Before the fix,
  // next_backoff_ kept multiplying past the cap and the int64 tick count
  // could overflow negative.
  for (double multiplier : {1.5, 2.0, 1e3, 1e9, 1e18}) {
    RetryPolicy policy;
    policy.max_attempts = 80;
    policy.initial_backoff = Time::ns(1);
    policy.multiplier = multiplier;
    policy.max_backoff = Time::us(10);
    policy.timeout = Time::sec(10);  // never binds: 80 * 10us << 10s
    BackoffSchedule schedule{policy, Time::zero()};
    std::vector<Time> delays;
    Time now = Time::zero();
    while (auto delay = schedule.next(now)) {
      delays.push_back(*delay);
      now = now + *delay;
    }
    // Attempts were the binding limit, so every retry was granted.
    ASSERT_EQ(delays.size(), policy.max_attempts - 1) << policy.to_string();
    bool saturated = false;
    for (std::size_t i = 0; i < delays.size(); ++i) {
      EXPECT_GE(delays[i], Time::zero()) << policy.to_string() << " at retry " << i;
      EXPECT_LE(delays[i], policy.max_backoff) << policy.to_string() << " at retry " << i;
      if (i > 0) {
        EXPECT_GE(delays[i], delays[i - 1]) << policy.to_string() << " at retry " << i;
      }
      if (saturated) {
        EXPECT_EQ(delays[i], policy.max_backoff)
            << policy.to_string() << " left the cap at retry " << i;
      }
      saturated = saturated || delays[i] == policy.max_backoff;
    }
    EXPECT_TRUE(saturated) << policy.to_string() << " never reached the cap";
  }
}

TEST(RetryProperties, HugeInitialBackoffTimesHugeMultiplierDoesNotWrap) {
  // next_backoff_ * multiplier overflows int64 ticks on the very first
  // growth step; the schedule must clamp to the cap instead of wrapping.
  RetryPolicy policy;
  policy.max_attempts = 70;
  policy.initial_backoff = Time::ms(400);
  policy.multiplier = 1e18;
  policy.max_backoff = Time::ms(500);
  policy.timeout = Time::sec(3600);
  BackoffSchedule schedule{policy, Time::zero()};
  Time now = Time::zero();
  std::size_t granted = 0;
  while (auto delay = schedule.next(now)) {
    EXPECT_GE(*delay, Time::zero());
    EXPECT_LE(*delay, policy.max_backoff);
    now = now + *delay;
    ++granted;
  }
  EXPECT_EQ(granted, policy.max_attempts - 1);
}

TEST(RetryProperties, ValidateRejectsInfinitePolicies) {
  // Infinite caps or timeouts would overflow deadline/backoff arithmetic.
  RetryPolicy infinite_cap;
  infinite_cap.max_backoff = Time::infinity();
  EXPECT_THROW(infinite_cap.validate(), std::invalid_argument);

  RetryPolicy infinite_timeout;
  infinite_timeout.timeout = Time::infinity();
  EXPECT_THROW(infinite_timeout.validate(), std::invalid_argument);
}

TEST(RetryProperties, SameHistorySameSchedule) {
  // Purely arithmetic: two schedules fed identical failure times agree on
  // every delay (the digest-reproducibility requirement).
  RetryPolicy policy;
  policy.max_attempts = 8;
  BackoffSchedule a{policy, Time::ms(3)};
  BackoffSchedule b{policy, Time::ms(3)};
  Time now = Time::ms(3);
  for (;;) {
    const auto da = a.next(now);
    const auto db = b.next(now);
    ASSERT_EQ(da.has_value(), db.has_value());
    if (!da) break;
    EXPECT_EQ(*da, *db);
    now = now + *da + Time::us(2);
  }
}

}  // namespace
}  // namespace dredbox::sim
