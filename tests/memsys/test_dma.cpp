#include "memsys/dma.hpp"

#include <gtest/gtest.h>

namespace dredbox::memsys {
namespace {

using sim::Time;
constexpr std::uint64_t kGiB = 1ull << 30;
constexpr std::uint64_t kMiB = 1ull << 20;

class DmaTest : public ::testing::Test {
 protected:
  DmaTest() : circuits_{switch_}, fabric_{rack_, circuits_} {
    const hw::TrayId tray_a = rack_.add_tray();
    const hw::TrayId tray_b = rack_.add_tray();
    compute_ = rack_.add_compute_brick(tray_a).id();
    membrick_ = rack_.add_memory_brick(tray_b).id();
    AttachRequest req;
    req.compute = compute_;
    req.membrick = membrick_;
    req.bytes = kGiB;
    attachment_ = *fabric_.attach(req, Time::zero());
  }

  sim::Simulator sim_;
  hw::Rack rack_;
  optics::OpticalSwitch switch_;
  optics::CircuitManager circuits_;
  RemoteMemoryFabric fabric_;
  hw::BrickId compute_;
  hw::BrickId membrick_;
  Attachment attachment_;
};

TEST_F(DmaTest, SingleTransferCompletes) {
  DmaEngine dma{sim_, fabric_, compute_};
  DmaCompletion result;
  DmaDescriptor desc;
  desc.address = attachment_.compute_base;
  desc.bytes = 1 * kMiB;
  dma.enqueue(desc, [&](const DmaCompletion& c) { result = c; });
  sim_.run();
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.bytes, 1 * kMiB);
  EXPECT_EQ(result.chunks, 256u);  // 1 MiB / 4 KiB
  EXPECT_GT(result.completed_at, result.enqueued_at);
  EXPECT_EQ(dma.completed_transfers(), 1u);
  EXPECT_EQ(dma.in_flight(), 0u);
}

TEST_F(DmaTest, ThroughputApproachesLineRate) {
  DmaEngine dma{sim_, fabric_, compute_, /*channels=*/1, /*chunk=*/65536};
  DmaCompletion result;
  DmaDescriptor desc;
  desc.address = attachment_.compute_base;
  desc.bytes = 16 * kMiB;
  dma.enqueue(desc, [&](const DmaCompletion& c) { result = c; });
  sim_.run();
  ASSERT_TRUE(result.ok);
  // 10 Gb/s line; big chunks amortise the per-chunk control latency.
  EXPECT_GT(result.effective_gbps(), 6.0);
  EXPECT_LT(result.effective_gbps(), 10.0);
}

TEST_F(DmaTest, SmallChunksPayMoreOverhead) {
  DmaCompletion small, big;
  {
    DmaEngine dma{sim_, fabric_, compute_, 1, 1024};
    DmaDescriptor d;
    d.address = attachment_.compute_base;
    d.bytes = 1 * kMiB;
    dma.enqueue(d, [&](const DmaCompletion& c) { small = c; });
    sim_.run();
  }
  {
    DmaEngine dma{sim_, fabric_, compute_, 1, 65536};
    DmaDescriptor d;
    d.address = attachment_.compute_base + 512 * kMiB;
    d.bytes = 1 * kMiB;
    dma.enqueue(d, [&](const DmaCompletion& c) { big = c; });
    sim_.run();
  }
  ASSERT_TRUE(small.ok && big.ok);
  // 64 KiB chunks amortise the fixed per-chunk round-trip overhead far
  // better than 1 KiB chunks (measured ~9.9 vs ~6.6 Gb/s on the 10 Gb/s
  // line: the ~425 ns control overhead nearly halves tiny chunks).
  EXPECT_GT(big.effective_gbps(), 1.3 * small.effective_gbps());
}

TEST_F(DmaTest, TwoChannelsOverlapTransfers) {
  // Two jobs over two independent attachments (separate circuits would be
  // ideal, but even one shared circuit pipelines request/response).
  DmaEngine dual{sim_, fabric_, compute_, /*channels=*/2, 4096};
  std::vector<DmaCompletion> done;
  for (int i = 0; i < 2; ++i) {
    DmaDescriptor d;
    d.address = attachment_.compute_base + static_cast<std::uint64_t>(i) * 128 * kMiB;
    d.bytes = 2 * kMiB;
    dual.enqueue(d, [&](const DmaCompletion& c) { done.push_back(c); });
  }
  EXPECT_EQ(dual.in_flight(), 2u);
  sim_.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_TRUE(done[0].ok && done[1].ok);
}

TEST_F(DmaTest, QueueDrainsInOrderOnOneChannel) {
  DmaEngine dma{sim_, fabric_, compute_, /*channels=*/1, 4096};
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    DmaDescriptor d;
    d.address = attachment_.compute_base + static_cast<std::uint64_t>(i) * kMiB;
    d.bytes = 64 * 1024;
    dma.enqueue(d, [&order, i](const DmaCompletion&) { order.push_back(i); });
  }
  EXPECT_EQ(dma.queued(), 2u);  // one running, two waiting
  sim_.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST_F(DmaTest, ReadDirectionWorks) {
  DmaEngine dma{sim_, fabric_, compute_};
  DmaCompletion result;
  DmaDescriptor d;
  d.address = attachment_.compute_base;
  d.bytes = 256 * 1024;
  d.direction = TransactionKind::kRead;
  dma.enqueue(d, [&](const DmaCompletion& c) { result = c; });
  sim_.run();
  EXPECT_TRUE(result.ok);
}

TEST_F(DmaTest, UnmappedAddressFailsCleanly) {
  DmaEngine dma{sim_, fabric_, compute_};
  DmaCompletion result;
  DmaDescriptor d;
  d.address = 0xDEAD0000;  // not in the remote window
  d.bytes = 8192;
  dma.enqueue(d, [&](const DmaCompletion& c) { result = c; });
  sim_.run();
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("no-mapping"), std::string::npos);
  EXPECT_EQ(result.bytes, 0u);
  EXPECT_EQ(dma.in_flight(), 0u);  // channel released for the next job
}

TEST_F(DmaTest, FailedCircuitSurfacesMidTransfer) {
  DmaEngine dma{sim_, fabric_, compute_};
  DmaCompletion result;
  DmaDescriptor d;
  d.address = attachment_.compute_base;
  d.bytes = 1 * kMiB;
  dma.enqueue(d, [&](const DmaCompletion& c) { result = c; });
  // Cut the fibre after ~50 us of simulated transfer.
  sim_.after(Time::us(50), [&] { fabric_.fail_circuit(attachment_.circuit); });
  sim_.run();
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("circuit-down"), std::string::npos);
  EXPECT_GT(result.bytes, 0u);              // some chunks landed
  EXPECT_LT(result.bytes, 1 * kMiB);        // but not all
}

TEST_F(DmaTest, Validation) {
  EXPECT_THROW(DmaEngine(sim_, fabric_, compute_, 0, 4096), std::invalid_argument);
  EXPECT_THROW(DmaEngine(sim_, fabric_, compute_, 2, 0), std::invalid_argument);
  DmaEngine dma{sim_, fabric_, compute_};
  DmaDescriptor empty;
  empty.address = attachment_.compute_base;
  EXPECT_THROW(dma.enqueue(empty, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace dredbox::memsys
