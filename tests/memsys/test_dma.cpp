#include "memsys/dma.hpp"

#include <gtest/gtest.h>

namespace dredbox::memsys {
namespace {

using sim::Time;
constexpr std::uint64_t kGiB = 1ull << 30;
constexpr std::uint64_t kMiB = 1ull << 20;

class DmaTest : public ::testing::Test {
 protected:
  DmaTest() : circuits_{switch_}, fabric_{rack_, circuits_} {
    const hw::TrayId tray_a = rack_.add_tray();
    const hw::TrayId tray_b = rack_.add_tray();
    compute_ = rack_.add_compute_brick(tray_a).id();
    membrick_ = rack_.add_memory_brick(tray_b).id();
    AttachRequest req;
    req.compute = compute_;
    req.membrick = membrick_;
    req.bytes = kGiB;
    attachment_ = *fabric_.attach(req, Time::zero());
  }

  sim::Simulator sim_;
  hw::Rack rack_;
  optics::OpticalSwitch switch_;
  optics::CircuitManager circuits_;
  RemoteMemoryFabric fabric_;
  hw::BrickId compute_;
  hw::BrickId membrick_;
  Attachment attachment_;
};

TEST_F(DmaTest, SingleTransferCompletes) {
  DmaEngine dma{sim_, fabric_, compute_};
  DmaCompletion result;
  DmaDescriptor desc;
  desc.address = attachment_.compute_base;
  desc.bytes = 1 * kMiB;
  dma.enqueue(desc, [&](const DmaCompletion& c) { result = c; });
  sim_.run();
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.bytes, 1 * kMiB);
  EXPECT_EQ(result.chunks, 256u);  // 1 MiB / 4 KiB
  EXPECT_GT(result.completed_at, result.enqueued_at);
  EXPECT_EQ(dma.completed_transfers(), 1u);
  EXPECT_EQ(dma.in_flight(), 0u);
}

TEST_F(DmaTest, ThroughputApproachesLineRate) {
  DmaEngine dma{sim_, fabric_, compute_, /*channels=*/1, /*chunk=*/65536};
  DmaCompletion result;
  DmaDescriptor desc;
  desc.address = attachment_.compute_base;
  desc.bytes = 16 * kMiB;
  dma.enqueue(desc, [&](const DmaCompletion& c) { result = c; });
  sim_.run();
  ASSERT_TRUE(result.ok);
  // 10 Gb/s line; big chunks amortise the per-chunk control latency.
  EXPECT_GT(result.effective_gbps(), 6.0);
  EXPECT_LT(result.effective_gbps(), 10.0);
}

TEST_F(DmaTest, SmallChunksPayMoreOverhead) {
  DmaCompletion small, big;
  {
    DmaEngine dma{sim_, fabric_, compute_, 1, 1024};
    DmaDescriptor d;
    d.address = attachment_.compute_base;
    d.bytes = 1 * kMiB;
    dma.enqueue(d, [&](const DmaCompletion& c) { small = c; });
    sim_.run();
  }
  {
    DmaEngine dma{sim_, fabric_, compute_, 1, 65536};
    DmaDescriptor d;
    d.address = attachment_.compute_base + 512 * kMiB;
    d.bytes = 1 * kMiB;
    dma.enqueue(d, [&](const DmaCompletion& c) { big = c; });
    sim_.run();
  }
  ASSERT_TRUE(small.ok && big.ok);
  // 64 KiB chunks amortise the fixed per-chunk round-trip overhead far
  // better than 1 KiB chunks (measured ~9.9 vs ~6.6 Gb/s on the 10 Gb/s
  // line: the ~425 ns control overhead nearly halves tiny chunks).
  EXPECT_GT(big.effective_gbps(), 1.3 * small.effective_gbps());
}

TEST_F(DmaTest, TwoChannelsOverlapTransfers) {
  // Two jobs over two independent attachments (separate circuits would be
  // ideal, but even one shared circuit pipelines request/response).
  DmaEngine dual{sim_, fabric_, compute_, /*channels=*/2, 4096};
  std::vector<DmaCompletion> done;
  for (int i = 0; i < 2; ++i) {
    DmaDescriptor d;
    d.address = attachment_.compute_base + static_cast<std::uint64_t>(i) * 128 * kMiB;
    d.bytes = 2 * kMiB;
    dual.enqueue(d, [&](const DmaCompletion& c) { done.push_back(c); });
  }
  EXPECT_EQ(dual.in_flight(), 2u);
  sim_.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_TRUE(done[0].ok && done[1].ok);
}

TEST_F(DmaTest, QueueDrainsInOrderOnOneChannel) {
  DmaEngine dma{sim_, fabric_, compute_, /*channels=*/1, 4096};
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    DmaDescriptor d;
    d.address = attachment_.compute_base + static_cast<std::uint64_t>(i) * kMiB;
    d.bytes = 64 * 1024;
    dma.enqueue(d, [&order, i](const DmaCompletion&) { order.push_back(i); });
  }
  EXPECT_EQ(dma.queued(), 2u);  // one running, two waiting
  sim_.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST_F(DmaTest, ReadDirectionWorks) {
  DmaEngine dma{sim_, fabric_, compute_};
  DmaCompletion result;
  DmaDescriptor d;
  d.address = attachment_.compute_base;
  d.bytes = 256 * 1024;
  d.direction = TransactionKind::kRead;
  dma.enqueue(d, [&](const DmaCompletion& c) { result = c; });
  sim_.run();
  EXPECT_TRUE(result.ok);
}

TEST_F(DmaTest, UnmappedAddressFailsCleanly) {
  DmaEngine dma{sim_, fabric_, compute_};
  DmaCompletion result;
  DmaDescriptor d;
  d.address = 0xDEAD0000;  // not in the remote window
  d.bytes = 8192;
  dma.enqueue(d, [&](const DmaCompletion& c) { result = c; });
  sim_.run();
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("no-mapping"), std::string::npos);
  EXPECT_EQ(result.bytes, 0u);
  EXPECT_EQ(dma.in_flight(), 0u);  // channel released for the next job
}

TEST_F(DmaTest, FailedCircuitSurfacesMidTransfer) {
  DmaEngine dma{sim_, fabric_, compute_};
  DmaCompletion result;
  DmaDescriptor d;
  d.address = attachment_.compute_base;
  d.bytes = 1 * kMiB;
  dma.enqueue(d, [&](const DmaCompletion& c) { result = c; });
  // Cut the fibre after ~50 us of simulated transfer.
  sim_.after(Time::us(50), [&] { fabric_.fail_circuit(attachment_.circuit); });
  sim_.run();
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("circuit-down"), std::string::npos);
  EXPECT_GT(result.bytes, 0u);              // some chunks landed
  EXPECT_LT(result.bytes, 1 * kMiB);        // but not all
}

// --- pooled-job lifecycle under faults (ISSUE 9c/9 satellite) ---
//
// Jobs live in a sim::IndexedArena and the scheduled chunk events carry
// (slot, generation) handles. These tests prove the fault-abandonment
// story: whether a transfer completes, fails fast, or dies mid-flight
// with retries exhausted, its slot is reclaimed (jobs_live back to 0),
// the generation is bumped (stale handles are distinguishable from the
// slot's next tenant), and nothing dangles.

TEST_F(DmaTest, CompletedTransferReclaimsItsPooledJob) {
  DmaEngine dma{sim_, fabric_, compute_};
  EXPECT_EQ(dma.jobs_live(), 0u);
  DmaDescriptor d;
  d.address = attachment_.compute_base;
  d.bytes = 64 * 1024;
  bool done = false;
  dma.enqueue(d, [&](const DmaCompletion& c) { done = c.ok; });
  EXPECT_EQ(dma.jobs_live(), 1u);
  const std::uint32_t generation_in_flight = dma.job_generation(0);
  EXPECT_NE(generation_in_flight, 0u);
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(dma.jobs_live(), 0u);
  EXPECT_EQ(dma.job_generation(0), generation_in_flight + 1)
      << "destroy must bump the generation so stale handles miss";
}

TEST_F(DmaTest, BrickCrashMidFlightAbandonsTheJobAndReclaimsItsSlot) {
  DmaEngine dma{sim_, fabric_, compute_};
  DmaCompletion result;
  bool delivered = false;
  DmaDescriptor d;
  d.address = attachment_.compute_base;
  d.bytes = 1 * kMiB;
  dma.enqueue(d, [&](const DmaCompletion& c) {
    result = c;
    delivered = true;
  });
  const std::uint32_t generation_in_flight = dma.job_generation(0);
  // Crash the serving dMEMBRICK ~50 us into the transfer: the next chunk's
  // fabric transaction dies with kBrickFailed (not retryable from the data
  // plane), so the engine must abandon the job.
  sim_.after(Time::us(50), [&] { rack_.brick(membrick_).fail(); });
  sim_.run();
  ASSERT_TRUE(delivered) << "an abandoned transfer still delivers its failure";
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("brick-failed"), std::string::npos) << result.error;
  EXPECT_GT(result.bytes, 0u);
  EXPECT_LT(result.bytes, 1 * kMiB);
  EXPECT_EQ(dma.jobs_live(), 0u) << "abandonment must reclaim the pooled slot";
  EXPECT_EQ(dma.job_generation(0), generation_in_flight + 1);
  EXPECT_EQ(dma.in_flight(), 0u) << "the channel is free for the next job";
}

TEST_F(DmaTest, RetryExhaustionUnderPersistentFaultReclaimsEverything) {
  // With a retry policy set, a mid-flight circuit failure sends the chunk
  // through scheduled backoff retries; the circuit never heals (no policy
  // on the fabric repairs it here — the engine's own retries re-execute
  // against the still-down circuit, and the fabric's synchronous loop
  // re-provisions). Use a brick crash instead, which no layer can retry
  // around, after arming a policy: the job must still be reclaimed once
  // the policy's attempts exhaust or the failure is recognized as fatal.
  sim::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = Time::us(5);
  fabric_.set_retry_policy(policy);
  DmaEngine dma{sim_, fabric_, compute_};
  DmaCompletion result;
  DmaDescriptor d;
  d.address = attachment_.compute_base;
  d.bytes = 1 * kMiB;
  dma.enqueue(d, [&](const DmaCompletion& c) { result = c; });
  sim_.after(Time::us(50), [&] { rack_.brick(membrick_).fail(); });
  sim_.run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(dma.jobs_live(), 0u);
  EXPECT_EQ(dma.in_flight(), 0u);
  // A fresh transfer reuses the reclaimed slot 0 under a new generation.
  rack_.brick(membrick_).restore();
  bool ok_again = false;
  DmaDescriptor retry_d;
  retry_d.address = attachment_.compute_base;
  retry_d.bytes = 64 * 1024;
  dma.enqueue(retry_d, [&](const DmaCompletion& c) { ok_again = c.ok; });
  EXPECT_EQ(dma.jobs_live(), 1u);
  sim_.run();
  EXPECT_TRUE(ok_again);
  EXPECT_EQ(dma.jobs_live(), 0u);
}

TEST_F(DmaTest, QueuedAndInFlightJobsAreAllPooledAndAllReclaimed) {
  DmaEngine dma{sim_, fabric_, compute_, /*channels=*/1, 4096};
  int completions = 0;
  for (int i = 0; i < 4; ++i) {
    DmaDescriptor d;
    d.address = attachment_.compute_base + static_cast<std::uint64_t>(i) * kMiB;
    d.bytes = 64 * 1024;
    dma.enqueue(d, [&completions](const DmaCompletion& c) {
      if (c.ok) ++completions;
    });
  }
  EXPECT_EQ(dma.jobs_live(), 4u);  // 1 in flight + 3 queued, all pooled
  sim_.run();
  EXPECT_EQ(completions, 4);
  EXPECT_EQ(dma.jobs_live(), 0u);
}

TEST_F(DmaTest, ReentrantEnqueueFromCompletionReusesTheReclaimedSlot) {
  // finish() destroys the pooled job BEFORE invoking the callback, so a
  // closed-loop callback that immediately enqueues may legally land in
  // the very slot its own job vacated — under a bumped generation.
  DmaEngine dma{sim_, fabric_, compute_};
  std::uint32_t first_generation = 0;
  std::uint32_t chained_generation = 0;
  bool chained_done = false;
  DmaDescriptor d;
  d.address = attachment_.compute_base;
  d.bytes = 64 * 1024;
  dma.enqueue(d, [&](const DmaCompletion& c) {
    ASSERT_TRUE(c.ok);
    EXPECT_EQ(dma.jobs_live(), 0u) << "slot reclaimed before the callback runs";
    DmaDescriptor chained;
    chained.address = attachment_.compute_base + kMiB;
    chained.bytes = 64 * 1024;
    dma.enqueue(chained, [&](const DmaCompletion& cc) { chained_done = cc.ok; });
    chained_generation = dma.job_generation(0);
  });
  first_generation = dma.job_generation(0);
  sim_.run();
  EXPECT_TRUE(chained_done);
  EXPECT_EQ(chained_generation, first_generation + 1)
      << "the reentrant enqueue reused slot 0 under the next generation";
  EXPECT_EQ(dma.jobs_live(), 0u);
}

TEST_F(DmaTest, Validation) {
  EXPECT_THROW(DmaEngine(sim_, fabric_, compute_, 0, 4096), std::invalid_argument);
  EXPECT_THROW(DmaEngine(sim_, fabric_, compute_, 2, 0), std::invalid_argument);
  DmaEngine dma{sim_, fabric_, compute_};
  DmaDescriptor empty;
  empty.address = attachment_.compute_base;
  EXPECT_THROW(dma.enqueue(empty, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace dredbox::memsys
