#include <gtest/gtest.h>

#include "memsys/remote_memory.hpp"
#include "sim/random.hpp"

namespace dredbox::memsys {
namespace {

using sim::Time;
constexpr std::uint64_t kGiB = 1ull << 30;

/// Property suite: after ANY interleaving of attach/detach/read across
/// multiple bricks and media, the fabric's bookkeeping stays consistent:
/// no leaked switch ports, no leaked brick ports, segment bytes match
/// attachment bytes, and every attachment remains readable.
class FabricPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  FabricPropertyTest() : circuits_{switch_}, fabric_{rack_, circuits_} {
    // Two trays, two compute bricks (one per tray), three memory bricks
    // spread so both electrical and optical media occur.
    const hw::TrayId tray_a = rack_.add_tray();
    const hw::TrayId tray_b = rack_.add_tray();
    computes_.push_back(rack_.add_compute_brick(tray_a).id());
    computes_.push_back(rack_.add_compute_brick(tray_b).id());
    hw::MemoryBrickConfig mc;
    mc.capacity_bytes = 8 * kGiB;
    membricks_.push_back(rack_.add_memory_brick(tray_a, mc).id());
    membricks_.push_back(rack_.add_memory_brick(tray_b, mc).id());
    membricks_.push_back(rack_.add_memory_brick(tray_b, mc).id());
  }

  void check_invariants() {
    // (1) Segment bytes on membricks == sum of attachment sizes.
    std::uint64_t attachment_bytes = 0;
    for (hw::BrickId cb : computes_) attachment_bytes += fabric_.attached_bytes(cb);
    std::uint64_t segment_bytes = 0;
    for (hw::BrickId mb : membricks_) {
      segment_bytes += rack_.memory_brick(mb).allocated_bytes();
    }
    ASSERT_EQ(attachment_bytes, segment_bytes);

    // (2) Optical switch ports in use == 2 x live optical circuits.
    ASSERT_EQ(switch_.ports_in_use(), 2 * circuits_.active_circuits());

    // (3) RMST entries mirror attachments per compute brick.
    for (hw::BrickId cb : computes_) {
      ASSERT_EQ(rack_.compute_brick(cb).tgl().rmst().size(),
                fabric_.attachments_of(cb).size());
    }

    // (4) Every live attachment is readable end to end.
    for (hw::BrickId cb : computes_) {
      for (const auto& a : fabric_.attachments_of(cb)) {
        const auto tx = fabric_.read(cb, a.compute_base, 64, clock_);
        ASSERT_TRUE(tx.ok()) << to_string(tx.status);
        clock_ += Time::us(10);
      }
    }
  }

  hw::Rack rack_;
  optics::OpticalSwitch switch_;
  optics::CircuitManager circuits_;
  RemoteMemoryFabric fabric_;
  std::vector<hw::BrickId> computes_;
  std::vector<hw::BrickId> membricks_;
  Time clock_ = Time::zero();
};

TEST_P(FabricPropertyTest, RandomInterleavingPreservesInvariants) {
  sim::Rng rng{GetParam()};
  struct Live {
    hw::BrickId compute;
    hw::SegmentId segment;
  };
  std::vector<Live> live;

  for (int step = 0; step < 200; ++step) {
    clock_ += Time::ms(1);
    if (live.empty() || rng.chance(0.55)) {
      AttachRequest req;
      req.compute = computes_[static_cast<std::size_t>(rng.uniform_int(0, 1))];
      req.membrick = membricks_[static_cast<std::size_t>(rng.uniform_int(0, 2))];
      req.bytes = (1ull << 28) << rng.uniform_int(0, 3);  // 256 MiB..2 GiB
      auto a = fabric_.attach(req, clock_);
      if (a) live.push_back(Live{a->compute, a->segment});
      // Failure is legal (capacity/ports); invariants must hold anyway.
    } else {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      ASSERT_TRUE(fabric_.detach(live[idx].compute, live[idx].segment));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    if (step % 20 == 0) check_invariants();
  }

  // Drain everything: the fabric must return to a pristine state.
  for (const auto& l : live) ASSERT_TRUE(fabric_.detach(l.compute, l.segment));
  ASSERT_EQ(fabric_.attachment_count(), 0u);
  ASSERT_EQ(switch_.ports_in_use(), 0u);
  ASSERT_EQ(fabric_.electrical_links(), 0u);
  for (hw::BrickId cb : computes_) {
    ASSERT_EQ(rack_.brick(cb).free_port_count(true), rack_.brick(cb).port_count());
  }
  for (hw::BrickId mb : membricks_) {
    ASSERT_EQ(rack_.memory_brick(mb).allocated_bytes(), 0u);
    ASSERT_EQ(rack_.brick(mb).free_port_count(true), rack_.brick(mb).port_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricPropertyTest,
                         ::testing::Values(11u, 23u, 47u, 83u, 131u, 211u));

/// Property: migration round trips — migrating a segment away and back
/// restores an equivalent state.
TEST_P(FabricPropertyTest, MigrationRoundTrip) {
  sim::Rng rng{GetParam() ^ 0xABCDEF};
  AttachRequest req;
  req.compute = computes_[0];
  req.membrick = membricks_[static_cast<std::size_t>(rng.uniform_int(0, 2))];
  req.bytes = 1 * kGiB;
  auto a = fabric_.attach(req, Time::zero());
  ASSERT_TRUE(a);

  auto there = fabric_.migrate_attachment(a->segment, computes_[0], computes_[1], Time::sec(1));
  ASSERT_TRUE(there.has_value());
  ASSERT_EQ(there->attachment.compute, computes_[1]);
  const auto tx1 = fabric_.read(computes_[1], there->attachment.compute_base, 64, Time::sec(2));
  ASSERT_TRUE(tx1.ok());

  auto back = fabric_.migrate_attachment(a->segment, computes_[1], computes_[0], Time::sec(3));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->attachment.compute, computes_[0]);
  const auto tx2 = fabric_.read(computes_[0], back->attachment.compute_base, 64, Time::sec(4));
  ASSERT_TRUE(tx2.ok());

  // Same medium class as the original (tray topology unchanged) and no
  // leaked circuits.
  ASSERT_EQ(back->attachment.medium, a->medium);
  ASSERT_TRUE(fabric_.detach(computes_[0], a->segment));
  ASSERT_EQ(switch_.ports_in_use(), 0u);
  ASSERT_EQ(fabric_.electrical_links(), 0u);
}

}  // namespace
}  // namespace dredbox::memsys
