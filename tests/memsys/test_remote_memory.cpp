#include "memsys/remote_memory.hpp"

#include <gtest/gtest.h>

namespace dredbox::memsys {
namespace {

using sim::Time;

class RemoteMemoryTest : public ::testing::Test {
 protected:
  RemoteMemoryTest() : circuits_{switch_}, fabric_{rack_, circuits_} {
    // Compute and memory bricks on *different* trays: these tests exercise
    // the cross-tray optical path. Intra-tray electrical behaviour has its
    // own suite below.
    const hw::TrayId tray_a = rack_.add_tray();
    const hw::TrayId tray_b = rack_.add_tray();
    compute_ = rack_.add_compute_brick(tray_a).id();
    hw::MemoryBrickConfig mc;
    mc.capacity_bytes = 16ull << 30;
    membrick_ = rack_.add_memory_brick(tray_b, mc).id();
  }

  AttachRequest request(std::uint64_t bytes = 1ull << 30) {
    AttachRequest req;
    req.compute = compute_;
    req.membrick = membrick_;
    req.bytes = bytes;
    return req;
  }

  hw::Rack rack_;
  optics::OpticalSwitch switch_;
  optics::CircuitManager circuits_;
  RemoteMemoryFabric fabric_;
  hw::BrickId compute_;
  hw::BrickId membrick_;
};

TEST_F(RemoteMemoryTest, AttachWiresEverything) {
  auto a = fabric_.attach(request(), Time::zero());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->compute, compute_);
  EXPECT_EQ(a->membrick, membrick_);
  EXPECT_EQ(a->size, 1ull << 30);
  // RMST entry installed on the compute brick.
  const auto& rmst = rack_.compute_brick(compute_).tgl().rmst();
  EXPECT_EQ(rmst.size(), 1u);
  // Segment carved on the memory brick.
  EXPECT_EQ(rack_.memory_brick(membrick_).allocated_bytes(), 1ull << 30);
  // Circuit live on the optical switch.
  EXPECT_EQ(switch_.ports_in_use(), 2u);
  // Brick ports marked connected.
  EXPECT_EQ(rack_.brick(compute_).free_port_count(true), 7u);
  EXPECT_EQ(rack_.brick(membrick_).free_port_count(true), 7u);
}

TEST_F(RemoteMemoryTest, SecondAttachmentReusesCircuit) {
  auto a1 = fabric_.attach(request(), Time::zero());
  auto a2 = fabric_.attach(request(), Time::zero());
  ASSERT_TRUE(a1 && a2);
  EXPECT_EQ(a1->circuit, a2->circuit);
  EXPECT_EQ(switch_.ports_in_use(), 2u);  // still one circuit
  EXPECT_EQ(fabric_.attached_bytes(compute_), 2ull << 30);
}

TEST_F(RemoteMemoryTest, WindowsDoNotOverlap) {
  auto a1 = fabric_.attach(request(2ull << 30), Time::zero());
  auto a2 = fabric_.attach(request(1ull << 30), Time::zero());
  ASSERT_TRUE(a1 && a2);
  const bool disjoint = a1->compute_base + a1->size <= a2->compute_base ||
                        a2->compute_base + a2->size <= a1->compute_base;
  EXPECT_TRUE(disjoint);
}

TEST_F(RemoteMemoryTest, AttachFailsWhenMemoryExhausted) {
  ASSERT_TRUE(fabric_.attach(request(16ull << 30), Time::zero()));
  EXPECT_FALSE(fabric_.attach(request(1ull << 30), Time::zero()));
  EXPECT_EQ(fabric_.last_error(), AttachError::kNoMemory);
}

TEST_F(RemoteMemoryTest, AttachFailsWhenSwitchExhausted) {
  // Consume every switch port with unrelated circuits.
  for (std::size_t p = 0; p < switch_.port_count(); p += 2) switch_.connect(p, p + 1);
  EXPECT_FALSE(fabric_.attach(request(), Time::zero()));
  EXPECT_EQ(fabric_.last_error(), AttachError::kNoSwitchPorts);
}

TEST_F(RemoteMemoryTest, AttachFailsWhenRmstFull) {
  // Fill the RMST with tiny attachments.
  const std::size_t cap = rack_.compute_brick(compute_).tgl().rmst().capacity();
  for (std::size_t i = 0; i < cap; ++i) {
    ASSERT_TRUE(fabric_.attach(request(1ull << 20), Time::zero()));
  }
  EXPECT_FALSE(fabric_.attach(request(1ull << 20), Time::zero()));
  EXPECT_EQ(fabric_.last_error(), AttachError::kRmstFull);
}

TEST_F(RemoteMemoryTest, DetachUnwindsState) {
  auto a = fabric_.attach(request(), Time::zero());
  ASSERT_TRUE(a);
  EXPECT_TRUE(fabric_.detach(compute_, a->segment));
  EXPECT_EQ(rack_.compute_brick(compute_).tgl().rmst().size(), 0u);
  EXPECT_EQ(rack_.memory_brick(membrick_).allocated_bytes(), 0u);
  EXPECT_EQ(switch_.ports_in_use(), 0u);  // last user tears the circuit down
  EXPECT_EQ(rack_.brick(compute_).free_port_count(true), 8u);
  EXPECT_FALSE(fabric_.detach(compute_, a->segment));
}

TEST_F(RemoteMemoryTest, DetachKeepsSharedCircuit) {
  auto a1 = fabric_.attach(request(), Time::zero());
  auto a2 = fabric_.attach(request(), Time::zero());
  ASSERT_TRUE(a1 && a2);
  fabric_.detach(compute_, a1->segment);
  EXPECT_EQ(switch_.ports_in_use(), 2u);  // a2 still rides the circuit
  fabric_.detach(compute_, a2->segment);
  EXPECT_EQ(switch_.ports_in_use(), 0u);
}

TEST_F(RemoteMemoryTest, ReadTranslatesAndCompletes) {
  auto a = fabric_.attach(request(), Time::zero());
  ASSERT_TRUE(a);
  const Transaction tx = fabric_.read(compute_, a->compute_base + 0x123, 64, Time::zero());
  EXPECT_TRUE(tx.ok());
  EXPECT_EQ(tx.destination, membrick_);
  EXPECT_EQ(tx.remote_address, 0x123u);  // first segment starts at pool base 0
  EXPECT_GT(tx.round_trip(), Time::zero());
  EXPECT_EQ(tx.breakdown.total(), tx.round_trip());
}

TEST_F(RemoteMemoryTest, ReadBreakdownHasCircuitPathStages) {
  auto a = fabric_.attach(request(), Time::zero());
  ASSERT_TRUE(a);
  const Transaction tx = fabric_.read(compute_, a->compute_base, 64, Time::zero());
  EXPECT_TRUE(tx.breakdown.has("TGL lookup (RMST)"));
  EXPECT_TRUE(tx.breakdown.has("GTH serdes (TX)"));
  EXPECT_TRUE(tx.breakdown.has("optical propagation"));
  EXPECT_TRUE(tx.breakdown.has("glue logic (dMEMBRICK)"));
  EXPECT_TRUE(tx.breakdown.has("memory access"));
  // No MAC framing on the circuit-switched mainline.
  EXPECT_FALSE(tx.breakdown.has("MAC/PHY (dCOMPUBRICK)"));
}

TEST_F(RemoteMemoryTest, UnmappedAddressFaults) {
  const Transaction tx = fabric_.read(compute_, 0xDEAD0000, 64, Time::zero());
  EXPECT_FALSE(tx.ok());
  EXPECT_EQ(tx.status, TransactionStatus::kNoMapping);
}

TEST_F(RemoteMemoryTest, WriteAndReadSymmetry) {
  auto a = fabric_.attach(request(), Time::zero());
  ASSERT_TRUE(a);
  const Transaction rd = fabric_.read(compute_, a->compute_base, 256, Time::zero());
  const Transaction wr = fabric_.write(compute_, a->compute_base, 256, Time::ms(1));
  EXPECT_TRUE(rd.ok());
  EXPECT_TRUE(wr.ok());
  // Same payload each way: round trips match (no contention).
  EXPECT_EQ(rd.round_trip(), wr.round_trip());
}

TEST_F(RemoteMemoryTest, CircuitContentionSerializes) {
  auto a = fabric_.attach(request(), Time::zero());
  ASSERT_TRUE(a);
  const Transaction t1 = fabric_.write(compute_, a->compute_base, 65536, Time::zero());
  const Transaction t2 = fabric_.write(compute_, a->compute_base, 65536, Time::zero());
  EXPECT_GT(t2.round_trip(), t1.round_trip());
  EXPECT_GT(t2.breakdown.of("circuit wait"), Time::zero());
}

TEST_F(RemoteMemoryTest, BondedLanesConsumePortsPerLane) {
  auto req = request();
  req.lanes = 4;
  auto a = fabric_.attach(req, Time::zero());
  ASSERT_TRUE(a);
  EXPECT_EQ(a->lanes, 4u);
  // 4 ports on each brick, 8 switch ports (2 per lane, 1 hop each).
  EXPECT_EQ(rack_.brick(compute_).free_port_count(true), 4u);
  EXPECT_EQ(rack_.brick(membrick_).free_port_count(true), 4u);
  EXPECT_EQ(switch_.ports_in_use(), 8u);
}

TEST_F(RemoteMemoryTest, BondedLanesSpeedUpLargeTransfers) {
  auto wide_req = request();
  wide_req.lanes = 4;
  auto wide = fabric_.attach(wide_req, Time::zero());
  ASSERT_TRUE(wide);

  // Independent single-lane fabric for the baseline.
  hw::Rack rack2;
  const hw::TrayId t1 = rack2.add_tray();
  const hw::TrayId t2 = rack2.add_tray();
  const hw::BrickId cpu2 = rack2.add_compute_brick(t1).id();
  const hw::BrickId mem2 = rack2.add_memory_brick(t2).id();
  optics::OpticalSwitch sw2;
  optics::CircuitManager circuits2{sw2};
  RemoteMemoryFabric fabric2{rack2, circuits2};
  AttachRequest narrow_req;
  narrow_req.compute = cpu2;
  narrow_req.membrick = mem2;
  auto narrow = fabric2.attach(narrow_req, Time::zero());
  ASSERT_TRUE(narrow);

  const auto wide_tx = fabric_.read(compute_, wide->compute_base, 16384, Time::zero());
  const auto narrow_tx = fabric2.read(cpu2, narrow->compute_base, 16384, Time::zero());
  ASSERT_TRUE(wide_tx.ok() && narrow_tx.ok());
  // 16 KiB at 10 Gb/s: ~13.1 us single lane vs ~3.3 us over 4 lanes.
  EXPECT_LT(wide_tx.round_trip(), sim::scale(narrow_tx.round_trip(), 0.5));
}

TEST_F(RemoteMemoryTest, BondTearsDownAllLanes) {
  auto req = request();
  req.lanes = 3;
  auto a = fabric_.attach(req, Time::zero());
  ASSERT_TRUE(a);
  EXPECT_EQ(switch_.ports_in_use(), 6u);
  EXPECT_TRUE(fabric_.detach(compute_, a->segment));
  EXPECT_EQ(switch_.ports_in_use(), 0u);
  EXPECT_EQ(rack_.brick(compute_).free_port_count(true), 8u);
  EXPECT_EQ(rack_.brick(membrick_).free_port_count(true), 8u);
}

TEST_F(RemoteMemoryTest, BondRejectedWhenPortsShort) {
  auto req = request();
  req.lanes = 9;  // bricks only have 8 transceivers
  EXPECT_FALSE(fabric_.attach(req, Time::zero()).has_value());
  EXPECT_EQ(fabric_.last_error(), AttachError::kNoComputePort);
  // Nothing leaked.
  EXPECT_EQ(rack_.brick(compute_).free_port_count(true), 8u);
  EXPECT_EQ(switch_.ports_in_use(), 0u);
}

TEST_F(RemoteMemoryTest, BondRejectedWhenSwitchShort) {
  optics::OpticalSwitchConfig tiny;
  tiny.ports = 4;
  optics::OpticalSwitch small_switch{tiny};
  optics::CircuitManager small_circuits{small_switch};
  RemoteMemoryFabric fabric{rack_, small_circuits};
  auto req = request();
  req.lanes = 4;  // needs 8 switch ports, only 4 exist
  EXPECT_FALSE(fabric.attach(req, Time::zero()).has_value());
  EXPECT_EQ(fabric.last_error(), AttachError::kNoSwitchPorts);
  EXPECT_EQ(small_switch.ports_in_use(), 0u);
  EXPECT_EQ(rack_.brick(compute_).free_port_count(true), 8u);
}

TEST_F(RemoteMemoryTest, SecondAttachmentInheritsBondLanes) {
  auto req = request();
  req.lanes = 2;
  auto a1 = fabric_.attach(req, Time::zero());
  auto single = request();  // lanes = 1, but the pair link already exists
  auto a2 = fabric_.attach(single, Time::zero());
  ASSERT_TRUE(a1 && a2);
  EXPECT_EQ(a2->lanes, 2u);
  EXPECT_EQ(a1->circuit, a2->circuit);
}

TEST_F(RemoteMemoryTest, MemoryControllerContention) {
  // Two compute bricks hammering one single-controller dMEMBRICK collide
  // at the controller; dimensioning the brick with more controllers
  // (Section II) absorbs the concurrency.
  hw::Rack rack;
  const hw::TrayId tray_a = rack.add_tray();
  const hw::TrayId tray_b = rack.add_tray();
  const hw::BrickId cpu1 = rack.add_compute_brick(tray_a).id();
  const hw::BrickId cpu2 = rack.add_compute_brick(tray_a).id();
  hw::MemoryBrickConfig one_mc;
  one_mc.memory_controllers = 1;
  const hw::BrickId mem1 = rack.add_memory_brick(tray_b, one_mc).id();
  hw::MemoryBrickConfig four_mc;
  four_mc.memory_controllers = 4;
  const hw::BrickId mem4 = rack.add_memory_brick(tray_b, four_mc).id();

  optics::OpticalSwitch sw;
  optics::CircuitManager circuits{sw};
  RemoteMemoryFabric fabric{rack, circuits};

  auto attach = [&](hw::BrickId cpu, hw::BrickId mem) {
    AttachRequest req;
    req.compute = cpu;
    req.membrick = mem;
    req.bytes = 1ull << 30;
    auto a = fabric.attach(req, Time::zero());
    EXPECT_TRUE(a.has_value());
    return *a;
  };
  const auto a1 = attach(cpu1, mem1);
  const auto a2 = attach(cpu2, mem1);
  const auto b1 = attach(cpu1, mem4);
  const auto b2 = attach(cpu2, mem4);

  // Same instant, addresses in different 4 KiB pages. One controller:
  // the second read waits. Four controllers: both proceed in parallel.
  const auto r1 = fabric.read(cpu1, a1.compute_base, 64, Time::zero());
  const auto r2 = fabric.read(cpu2, a2.compute_base + 4096, 64, Time::zero());
  EXPECT_GT(r2.breakdown.of("memory controller wait"), Time::zero());
  EXPECT_GT(r2.round_trip(), r1.round_trip());

  const auto q1 = fabric.read(cpu1, b1.compute_base, 64, Time::ms(1));
  const auto q2 = fabric.read(cpu2, b2.compute_base + 4096, 64, Time::ms(1));
  EXPECT_EQ(q2.breakdown.of("memory controller wait"), Time::zero());
  EXPECT_EQ(q1.round_trip(), q2.round_trip());
}

TEST_F(RemoteMemoryTest, CircuitRoundTripBelowPacketPath) {
  // The whole point of circuit switching: minimize remote-access latency.
  auto a = fabric_.attach(request(), Time::zero());
  ASSERT_TRUE(a);
  const Transaction tx = fabric_.read(compute_, a->compute_base, 64, Time::zero());
  EXPECT_LT(tx.round_trip(), Time::us(1));
}

TEST_F(RemoteMemoryTest, AttachmentsOfListsPerBrick) {
  auto a1 = fabric_.attach(request(), Time::zero());
  auto a2 = fabric_.attach(request(), Time::zero());
  ASSERT_TRUE(a1 && a2);
  EXPECT_EQ(fabric_.attachments_of(compute_).size(), 2u);
  EXPECT_TRUE(fabric_.attachments_of(membrick_).empty());
  EXPECT_EQ(fabric_.attachment_count(), 2u);
}

TEST_F(RemoteMemoryTest, CrossTrayAttachmentsAreOptical) {
  auto a = fabric_.attach(request(), Time::zero());
  ASSERT_TRUE(a);
  EXPECT_EQ(a->medium, LinkMedium::kOptical);
  EXPECT_EQ(fabric_.electrical_links(), 0u);
}

/// Intra-tray pairs: both bricks in one tray ride the electrical circuit
/// (Section II) — no optical switch ports are consumed and the round trip
/// is shorter.
class IntraTrayMemoryTest : public ::testing::Test {
 protected:
  IntraTrayMemoryTest() : circuits_{switch_}, fabric_{rack_, circuits_} {
    const hw::TrayId tray = rack_.add_tray();
    compute_ = rack_.add_compute_brick(tray).id();
    hw::MemoryBrickConfig mc;
    mc.capacity_bytes = 16ull << 30;
    membrick_ = rack_.add_memory_brick(tray, mc).id();
  }

  AttachRequest request(std::uint64_t bytes = 1ull << 30) {
    AttachRequest req;
    req.compute = compute_;
    req.membrick = membrick_;
    req.bytes = bytes;
    return req;
  }

  hw::Rack rack_;
  optics::OpticalSwitch switch_;
  optics::CircuitManager circuits_;
  RemoteMemoryFabric fabric_;
  hw::BrickId compute_;
  hw::BrickId membrick_;
};

TEST_F(IntraTrayMemoryTest, AttachUsesElectricalCircuit) {
  auto a = fabric_.attach(request(), Time::zero());
  ASSERT_TRUE(a);
  EXPECT_EQ(a->medium, LinkMedium::kElectrical);
  EXPECT_EQ(switch_.ports_in_use(), 0u);  // no optical switch involvement
  EXPECT_EQ(fabric_.electrical_links(), 1u);
  // Brick transceiver ports are still consumed (backplane lanes).
  EXPECT_EQ(rack_.brick(compute_).free_port_count(true), 7u);
  EXPECT_EQ(rack_.brick(membrick_).free_port_count(true), 7u);
}

TEST_F(IntraTrayMemoryTest, OpticalCanBeForced) {
  auto req = request();
  req.prefer_electrical_intra_tray = false;
  auto a = fabric_.attach(req, Time::zero());
  ASSERT_TRUE(a);
  EXPECT_EQ(a->medium, LinkMedium::kOptical);
  EXPECT_EQ(switch_.ports_in_use(), 2u);
}

TEST_F(IntraTrayMemoryTest, ElectricalReadFasterThanOptical) {
  auto a = fabric_.attach(request(), Time::zero());
  ASSERT_TRUE(a);
  const Transaction tx = fabric_.read(compute_, a->compute_base, 64, Time::zero());
  ASSERT_TRUE(tx.ok());
  EXPECT_TRUE(tx.breakdown.has("electrical propagation"));
  EXPECT_FALSE(tx.breakdown.has("optical propagation"));

  // Same shape over the optical path, forced, through an independent
  // fabric instance (the first pair already shares an electrical link, and
  // attachments between the same pair reuse the established circuit).
  RemoteMemoryFabric optical_fabric{rack_, circuits_};
  auto req2 = request();
  req2.prefer_electrical_intra_tray = false;
  auto b = optical_fabric.attach(req2, Time::zero());
  ASSERT_TRUE(b);
  const Transaction opt = optical_fabric.read(compute_, b->compute_base, 64, Time::ms(1));
  ASSERT_TRUE(opt.ok());
  EXPECT_LT(tx.round_trip(), opt.round_trip());
}

TEST_F(IntraTrayMemoryTest, DetachReleasesElectricalLink) {
  auto a = fabric_.attach(request(), Time::zero());
  ASSERT_TRUE(a);
  EXPECT_TRUE(fabric_.detach(compute_, a->segment));
  EXPECT_EQ(fabric_.electrical_links(), 0u);
  EXPECT_EQ(rack_.brick(compute_).free_port_count(true), 8u);
  EXPECT_EQ(rack_.brick(membrick_).free_port_count(true), 8u);
}

TEST_F(IntraTrayMemoryTest, SecondSegmentSharesElectricalLink) {
  auto a1 = fabric_.attach(request(), Time::zero());
  auto a2 = fabric_.attach(request(), Time::zero());
  ASSERT_TRUE(a1 && a2);
  EXPECT_EQ(a1->circuit, a2->circuit);
  EXPECT_EQ(fabric_.electrical_links(), 1u);
  fabric_.detach(compute_, a1->segment);
  EXPECT_EQ(fabric_.electrical_links(), 1u);  // still used by a2
  fabric_.detach(compute_, a2->segment);
  EXPECT_EQ(fabric_.electrical_links(), 0u);
}

}  // namespace
}  // namespace dredbox::memsys
