#include <gtest/gtest.h>

#include "memsys/remote_memory.hpp"

namespace dredbox::memsys {
namespace {

using sim::Time;
constexpr std::uint64_t kGiB = 1ull << 30;

class FailureRepairTest : public ::testing::Test {
 protected:
  FailureRepairTest() : circuits_{switch_}, fabric_{rack_, circuits_} {
    const hw::TrayId tray_a = rack_.add_tray();
    const hw::TrayId tray_b = rack_.add_tray();
    compute_ = rack_.add_compute_brick(tray_a).id();
    membrick_ = rack_.add_memory_brick(tray_b).id();
  }

  Attachment attach(std::uint64_t bytes = kGiB) {
    AttachRequest req;
    req.compute = compute_;
    req.membrick = membrick_;
    req.bytes = bytes;
    auto a = fabric_.attach(req, Time::zero());
    EXPECT_TRUE(a.has_value());
    return *a;
  }

  hw::Rack rack_;
  optics::OpticalSwitch switch_;
  optics::CircuitManager circuits_;
  RemoteMemoryFabric fabric_;
  hw::BrickId compute_;
  hw::BrickId membrick_;
};

TEST_F(FailureRepairTest, FailedCircuitSurfacesInTransactions) {
  const auto a = attach();
  ASSERT_TRUE(fabric_.fail_circuit(a.circuit));
  const Transaction tx = fabric_.read(compute_, a.compute_base, 64, Time::sec(1));
  EXPECT_FALSE(tx.ok());
  EXPECT_EQ(tx.status, TransactionStatus::kCircuitDown);
  // The fault released the switch cross-connects and the transceivers.
  EXPECT_EQ(switch_.ports_in_use(), 0u);
  EXPECT_EQ(rack_.brick(compute_).free_port_count(true), 8u);
}

TEST_F(FailureRepairTest, FailUnknownCircuitReturnsFalse) {
  EXPECT_FALSE(fabric_.fail_circuit(hw::CircuitId{999}));
}

TEST_F(FailureRepairTest, RepairRestoresService) {
  const auto a = attach();
  fabric_.fail_circuit(a.circuit);
  const auto healed = fabric_.repair(compute_, a.segment, Time::sec(2));
  ASSERT_TRUE(healed.has_value());
  EXPECT_NE(healed->circuit, a.circuit);  // fresh circuit
  EXPECT_EQ(switch_.ports_in_use(), 2u);
  const Transaction tx = fabric_.read(compute_, a.compute_base, 64, Time::sec(3));
  EXPECT_TRUE(tx.ok());
  // The segment and window survived the fault: same address still maps.
  EXPECT_EQ(tx.destination, membrick_);
}

TEST_F(FailureRepairTest, RepairHealsAllSharersOfTheCircuit) {
  const auto a1 = attach();
  const auto a2 = attach();
  ASSERT_EQ(a1.circuit, a2.circuit);
  fabric_.fail_circuit(a1.circuit);
  ASSERT_TRUE(fabric_.repair(compute_, a1.segment, Time::sec(2)));
  // Both attachments work again over the replacement circuit.
  EXPECT_TRUE(fabric_.read(compute_, a1.compute_base, 64, Time::sec(3)).ok());
  EXPECT_TRUE(fabric_.read(compute_, a2.compute_base, 64, Time::sec(4)).ok());
  EXPECT_EQ(switch_.ports_in_use(), 2u);  // one shared replacement
}

TEST_F(FailureRepairTest, RepairOnHealthyAttachmentIsNoop) {
  const auto a = attach();
  const auto same = fabric_.repair(compute_, a.segment, Time::sec(1));
  ASSERT_TRUE(same.has_value());
  EXPECT_EQ(same->circuit, a.circuit);
  EXPECT_EQ(switch_.ports_in_use(), 2u);
}

TEST_F(FailureRepairTest, RepairUnknownSegmentFails) {
  EXPECT_FALSE(fabric_.repair(compute_, hw::SegmentId{12345}, Time::sec(1)).has_value());
}

TEST_F(FailureRepairTest, RepairFailsWhenSwitchExhausted) {
  const auto a = attach();
  fabric_.fail_circuit(a.circuit);
  // Burn every switch port with unrelated cross-connects.
  for (std::size_t p = 0; p < switch_.port_count(); p += 2) switch_.connect(p, p + 1);
  EXPECT_FALSE(fabric_.repair(compute_, a.segment, Time::sec(2)).has_value());
  EXPECT_EQ(fabric_.last_error(), AttachError::kNoSwitchPorts);
}

TEST_F(FailureRepairTest, BondedLinkFailsAsAWhole) {
  AttachRequest req;
  req.compute = compute_;
  req.membrick = membrick_;
  req.lanes = 3;
  auto a = fabric_.attach(req, Time::zero());
  ASSERT_TRUE(a);
  ASSERT_EQ(switch_.ports_in_use(), 6u);
  ASSERT_TRUE(fabric_.fail_circuit(a->circuit));
  EXPECT_EQ(switch_.ports_in_use(), 0u);  // every lane dropped
  EXPECT_FALSE(fabric_.read(compute_, a->compute_base, 64, Time::sec(1)).ok());
  // Repair rebuilds the exact pre-failure link: all three bonded lanes.
  const auto healed = fabric_.repair(compute_, a->segment, Time::sec(2));
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(healed->lanes, 3u);
  EXPECT_EQ(switch_.ports_in_use(), 6u);
  EXPECT_TRUE(fabric_.read(compute_, a->compute_base, 64, Time::sec(3)).ok());
}

TEST_F(FailureRepairTest, RepairRestoresExactWindowAndLinkParameters) {
  AttachRequest req;
  req.compute = compute_;
  req.membrick = membrick_;
  req.bytes = kGiB;
  req.switch_hops = 3;
  req.fiber_length_m = 42.0;
  const auto a = fabric_.attach(req, Time::zero());
  ASSERT_TRUE(a);
  fabric_.fail_circuit(a->circuit);
  const auto healed = fabric_.repair(compute_, a->segment, Time::sec(2));
  ASSERT_TRUE(healed.has_value());
  // The RMST window is byte-identical and the link parameters of the
  // original provisioning (hop count, fibre run) are carried over.
  EXPECT_EQ(healed->compute_base, a->compute_base);
  EXPECT_EQ(healed->size, a->size);
  EXPECT_EQ(healed->switch_hops, 3u);
  EXPECT_DOUBLE_EQ(healed->fiber_length_m, 42.0);
  const auto circuit = circuits_.find(healed->circuit);
  ASSERT_TRUE(circuit.has_value());
  EXPECT_EQ(circuit->hops, 3u);
  EXPECT_DOUBLE_EQ(circuit->fiber_length_m, 42.0);
}

TEST_F(FailureRepairTest, RepairDegradesBondGracefullyUnderPortScarcity) {
  AttachRequest req;
  req.compute = compute_;
  req.membrick = membrick_;
  req.lanes = 3;
  const auto a = fabric_.attach(req, Time::zero());
  ASSERT_TRUE(a);
  fabric_.fail_circuit(a->circuit);
  // Leave only two free switch ports: a full 3-lane rebuild is impossible,
  // but repair still restores service on the lanes it can wire.
  for (std::size_t p = 0; p < switch_.port_count() - 2; p += 2) switch_.connect(p, p + 1);
  const auto healed = fabric_.repair(compute_, a->segment, Time::sec(2));
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(healed->lanes, 1u);
  EXPECT_TRUE(fabric_.read(compute_, a->compute_base, 64, Time::sec(3)).ok());
}

TEST_F(FailureRepairTest, DetachAfterFailureStillCleansUp) {
  const auto a = attach();
  fabric_.fail_circuit(a.circuit);
  EXPECT_TRUE(fabric_.detach(compute_, a.segment));
  EXPECT_EQ(fabric_.attachment_count(), 0u);
  EXPECT_EQ(rack_.memory_brick(membrick_).allocated_bytes(), 0u);
  EXPECT_EQ(switch_.ports_in_use(), 0u);
}

// Regression for the stale-field sweep (ISSUE 9 satellite): the retry
// loop builds every attempt as a FRESH transaction and merges into an
// accumulator, so a retried op must charge per-attempt components exactly
// once per attempt — never twice for the same attempt (the double-charge
// a pooled transaction reused without clearing would produce).
TEST_F(FailureRepairTest, RetriedTransactionBreakdownIsNotDoubleCharged) {
  const auto a = attach();
  sim::RetryPolicy policy;  // defaults: 4 attempts, 10 us initial backoff
  fabric_.set_retry_policy(policy);

  // Healthy single-attempt reference for the per-attempt charges.
  const Transaction healthy = fabric_.read(compute_, a.compute_base, 64, Time::sec(1));
  ASSERT_TRUE(healthy.ok());
  const Time lookup_per_attempt = healthy.breakdown.of("TGL lookup (RMST)");
  ASSERT_GT(lookup_per_attempt, Time::zero());

  // Cut the circuit: the next read pays attempt 1 (circuit-down, charges
  // only the TGL lookup), one backoff, one re-provision, then attempt 2
  // succeeds over the replacement circuit.
  ASSERT_TRUE(fabric_.fail_circuit(a.circuit));
  const Transaction tx = fabric_.read(compute_, a.compute_base, 64, Time::sec(2));
  ASSERT_TRUE(tx.ok());
  EXPECT_EQ(tx.retries, 1u);

  // Per-attempt component: exactly twice the single-attempt charge (one
  // failed + one successful attempt), not 3x or 4x.
  EXPECT_EQ(tx.breakdown.of("TGL lookup (RMST)"),
            lookup_per_attempt + lookup_per_attempt);
  // Recovery components: charged exactly once each.
  EXPECT_EQ(tx.breakdown.of("retry backoff"), policy.initial_backoff);
  EXPECT_EQ(tx.breakdown.of("circuit re-provision"), circuits_.setup_time());
  // Components charged only by the successful attempt appear once.
  EXPECT_EQ(tx.breakdown.of("serialization"), healthy.breakdown.of("serialization"));

  // Timestamps re-stamped for the whole retried span: issue at the
  // original issue time, completion at or after the last attempt, so
  // round_trip() covers backoff + re-provision + both attempts.
  EXPECT_EQ(tx.issued_at, Time::sec(2));
  EXPECT_GE(tx.completed_at, tx.issued_at + policy.initial_backoff + circuits_.setup_time());
  EXPECT_EQ(tx.round_trip(), tx.completed_at - tx.issued_at);
}

// ISSUE 9 satellite bugfix: asking a never-completed transaction for its
// round trip used to underflow Time (completed_at default-initialized
// before issued_at). It now returns zero — and trips DREDBOX_REQUIRE in
// -DDREDBOX_AUDIT=ON builds so reducers averaging it in are caught.
TEST(TransactionGuards, NeverCompletedRoundTripIsZeroNotUnderflow) {
  Transaction tx;
  tx.issued_at = Time::sec(1);  // completed_at still default (before issued_at)
#if DREDBOX_AUDIT_ENABLED
  EXPECT_THROW(tx.round_trip(), sim::ContractViolation);
#else
  EXPECT_EQ(tx.round_trip(), Time::zero());
  EXPECT_GE(tx.round_trip(), Time::zero()) << "round_trip must never go negative";
#endif
}

// Failed transactions are NOT "never completed": every failure path stamps
// completed_at with the failure time, so their round trip is a real
// duration and must stay exact (the determinism digest folds it in).
TEST_F(FailureRepairTest, FailedTransactionsStillHaveARealRoundTrip) {
  const auto a = attach();
  ASSERT_TRUE(fabric_.fail_circuit(a.circuit));
  const Transaction tx = fabric_.read(compute_, a.compute_base, 64, Time::sec(1));
  ASSERT_FALSE(tx.ok());
  EXPECT_GE(tx.completed_at, tx.issued_at);
  EXPECT_EQ(tx.round_trip(), tx.completed_at - tx.issued_at);
  EXPECT_GT(tx.round_trip(), Time::zero()) << "the TGL lookup took real time";
}

}  // namespace
}  // namespace dredbox::memsys
