#include <gtest/gtest.h>

#include "memsys/remote_memory.hpp"
#include "net/packet_network.hpp"

namespace dredbox::memsys {
namespace {

using sim::Time;
constexpr std::uint64_t kGiB = 1ull << 30;

/// Cross-tray pair with a tiny optical switch so circuit ports exhaust
/// quickly, plus a packet network registered for the fallback.
class PacketFallbackTest : public ::testing::Test {
 protected:
  PacketFallbackTest() : switch_{tiny_switch()}, circuits_{switch_}, fabric_{rack_, circuits_} {
    const hw::TrayId tray_a = rack_.add_tray();
    const hw::TrayId tray_b = rack_.add_tray();
    compute_ = rack_.add_compute_brick(tray_a).id();
    membrick_a_ = rack_.add_memory_brick(tray_b).id();
    membrick_b_ = rack_.add_memory_brick(tray_b).id();
    packet_net_.add_brick(compute_);
    packet_net_.add_brick(membrick_a_);
    packet_net_.add_brick(membrick_b_);
    fabric_.set_packet_network(&packet_net_);
  }

  static optics::OpticalSwitchConfig tiny_switch() {
    optics::OpticalSwitchConfig cfg;
    cfg.ports = 2;  // room for exactly one circuit
    return cfg;
  }

  AttachRequest request(hw::BrickId membrick, bool fallback = true) {
    AttachRequest req;
    req.compute = compute_;
    req.membrick = membrick;
    req.bytes = kGiB;
    req.allow_packet_fallback = fallback;
    return req;
  }

  hw::Rack rack_;
  optics::OpticalSwitch switch_;
  optics::CircuitManager circuits_;
  RemoteMemoryFabric fabric_;
  net::PacketNetwork packet_net_;
  hw::BrickId compute_;
  hw::BrickId membrick_a_;
  hw::BrickId membrick_b_;
};

TEST_F(PacketFallbackTest, FallsBackWhenSwitchExhausted) {
  // First attach takes the only circuit.
  auto a = fabric_.attach(request(membrick_a_), Time::zero());
  ASSERT_TRUE(a);
  EXPECT_EQ(a->medium, LinkMedium::kOptical);
  EXPECT_EQ(switch_.free_ports(), 0u);

  // Second pair cannot get a circuit: packet substrate takes over.
  auto b = fabric_.attach(request(membrick_b_), Time::zero());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->medium, LinkMedium::kPacket);
  EXPECT_EQ(fabric_.packet_links(), 1u);
  // No circuit-facing brick ports were burned for the packet attachment.
  EXPECT_EQ(rack_.brick(membrick_b_).free_port_count(true), 8u);
}

TEST_F(PacketFallbackTest, NoFallbackWithoutOptIn) {
  ASSERT_TRUE(fabric_.attach(request(membrick_a_), Time::zero()));
  auto b = fabric_.attach(request(membrick_b_, /*fallback=*/false), Time::zero());
  EXPECT_FALSE(b.has_value());
  EXPECT_EQ(fabric_.last_error(), AttachError::kNoSwitchPorts);
}

TEST_F(PacketFallbackTest, NoFallbackWithoutNetwork) {
  fabric_.set_packet_network(nullptr);
  ASSERT_TRUE(fabric_.attach(request(membrick_a_), Time::zero()));
  EXPECT_FALSE(fabric_.attach(request(membrick_b_), Time::zero()).has_value());
}

TEST_F(PacketFallbackTest, PacketReadWorksButIsSlower) {
  auto optical = fabric_.attach(request(membrick_a_), Time::zero());
  auto packet = fabric_.attach(request(membrick_b_), Time::zero());
  ASSERT_TRUE(optical && packet);
  ASSERT_EQ(packet->medium, LinkMedium::kPacket);

  const Transaction opt_tx = fabric_.read(compute_, optical->compute_base, 64, Time::zero());
  const Transaction pkt_tx = fabric_.read(compute_, packet->compute_base, 64, Time::ms(1));
  ASSERT_TRUE(opt_tx.ok());
  ASSERT_TRUE(pkt_tx.ok());
  // The packet path carries MAC/PHY overheads the circuit avoids.
  EXPECT_TRUE(pkt_tx.breakdown.has("MAC/PHY (dCOMPUBRICK)"));
  EXPECT_FALSE(opt_tx.breakdown.has("MAC/PHY (dCOMPUBRICK)"));
  EXPECT_GT(pkt_tx.round_trip(), opt_tx.round_trip());
}

TEST_F(PacketFallbackTest, PacketWriteRoundTrips) {
  ASSERT_TRUE(fabric_.attach(request(membrick_a_), Time::zero()));
  auto packet = fabric_.attach(request(membrick_b_), Time::zero());
  ASSERT_TRUE(packet);
  const Transaction tx = fabric_.write(compute_, packet->compute_base, 256, Time::zero());
  EXPECT_TRUE(tx.ok());
  EXPECT_EQ(tx.destination, membrick_b_);
  EXPECT_GT(tx.round_trip(), Time::zero());
}

TEST_F(PacketFallbackTest, SecondSegmentSharesPacketLink) {
  ASSERT_TRUE(fabric_.attach(request(membrick_a_), Time::zero()));
  auto p1 = fabric_.attach(request(membrick_b_), Time::zero());
  auto p2 = fabric_.attach(request(membrick_b_), Time::zero());
  ASSERT_TRUE(p1 && p2);
  EXPECT_EQ(p1->circuit, p2->circuit);
  EXPECT_EQ(fabric_.packet_links(), 1u);
}

TEST_F(PacketFallbackTest, DetachReleasesPacketLink) {
  ASSERT_TRUE(fabric_.attach(request(membrick_a_), Time::zero()));
  auto p = fabric_.attach(request(membrick_b_), Time::zero());
  ASSERT_TRUE(p);
  EXPECT_TRUE(fabric_.detach(compute_, p->segment));
  EXPECT_EQ(fabric_.packet_links(), 0u);
  EXPECT_EQ(rack_.memory_brick(membrick_b_).allocated_bytes(), 0u);
}

TEST_F(PacketFallbackTest, MixedMediaCoexist) {
  auto optical = fabric_.attach(request(membrick_a_), Time::zero());
  auto packet = fabric_.attach(request(membrick_b_), Time::zero());
  ASSERT_TRUE(optical && packet);
  EXPECT_EQ(fabric_.attachment_count(), 2u);
  // Detaching the optical one leaves the packet path alive.
  fabric_.detach(compute_, optical->segment);
  const Transaction tx = fabric_.read(compute_, packet->compute_base, 64, Time::sec(1));
  EXPECT_TRUE(tx.ok());
}

}  // namespace
}  // namespace dredbox::memsys
