// Schedule-order audit at quickstart scale: the full boot -> scale-up ->
// paced-remote-reads session (the same shape examples/quickstart.cpp and
// scripts/check.sh exercise) must produce an identical canonical digest
// under 16 seeded permutations of every same-timestamp dispatch batch —
// healthy AND under the check.sh fault plan, whose events used to collide
// with the 250 us read grid until FaultInjector started skewing
// transitions by one tick. This is the gating proof for the calendar-queue
// kernel rewrite (ROADMAP item 1): no outcome may lean on the queue's
// incidental FIFO tie-break.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "sim/digest.hpp"
#include "sim/fault.hpp"
#include "sim/schedule_audit.hpp"
#include "sim/timeseries.hpp"

namespace dredbox {
namespace {

using sim::AuditObservation;
using sim::SchedulePerturbation;
using sim::Time;

/// One full quickstart-shaped session under `perturbation`, reduced to a
/// canonical digest. Canonical means tie-order insensitive by construction:
/// per-read outcomes are keyed by the read's own index (never folded in
/// dispatch order), and the only aggregates are integer counter totals
/// folded in sorted-name order. Anything order-dependent that leaks into
/// this digest is a real simulation defect — exactly what the audit hunts.
AuditObservation run_session(const SchedulePerturbation& perturbation,
                             const std::string& fault_plan) {
  core::Scenario scenario = core::ScenarioBuilder{}
                                .racks(/*trays=*/2, /*compute_per_tray=*/2,
                                       /*memory_per_tray=*/2)
                                .telemetry()
                                .prefer_optical()
                                .build();
  core::Datacenter& dc = scenario.datacenter();
  dc.simulator().queue().set_perturbation(perturbation);

  const auto vm = dc.boot_vm("audit-guest", /*vcpus=*/2, /*memory=*/2ull << 30);
  EXPECT_TRUE(vm.ok) << vm.error;
  const auto up = dc.scale_up(vm.vm, vm.compute, 4ull << 30);
  EXPECT_TRUE(up.ok) << up.error;

  const auto attachment = dc.fabric().attachments_of(vm.compute).front();
  const Time t0 = dc.simulator().now();
  Time fault_end = t0;
  if (!fault_plan.empty()) {
    const sim::FaultPlan shifted = sim::FaultPlan::parse(fault_plan).shifted(t0);
    dc.inject_faults(shifted);
    fault_end = shifted.horizon();
  }
  const Time window_end = std::max(fault_end + Time::ms(1), t0 + Time::ms(2));

  // The quickstart's metric sampler ticks on the same 250 us grid as the
  // reads below, so every grid instant is a genuine two-event tie (sample
  // vs read). The sampled series is deliberately NOT part of the canonical
  // digest: a snapshot taken at the same instant as a read legitimately
  // sees pre- or post-read values depending on tie order.
  sim::TimeSeriesSampler sampler{dc.simulator(), dc.metrics(), Time::us(250)};
  sampler.start(window_end);

  // Paced 64 B remote reads on the quickstart's 250 us grid. The outcome of
  // read i lands in slot i regardless of how tied events dispatched.
  struct ReadOutcome {
    std::uint64_t status = 0;
    std::uint64_t round_trip_ticks = 0;
    std::uint64_t retries = 0;
  };
  std::vector<ReadOutcome> outcomes;
  std::size_t index = 0;
  for (Time t = t0; t < window_end; t += Time::us(250)) {
    const std::size_t slot = index++;
    outcomes.resize(index);
    dc.simulator().at(t, [&dc, &outcomes, slot, &vm, &attachment] {
      const auto tx = dc.remote_read(vm.compute, attachment.compute_base + 0x40, 64);
      outcomes[slot] = {static_cast<std::uint64_t>(tx.status),
                       static_cast<std::uint64_t>(tx.round_trip().ticks()),
                       static_cast<std::uint64_t>(tx.retries)};
    }, "audit.remote_read");
  }
  dc.advance_to(window_end);

  const auto down = dc.scale_down(vm.vm, vm.compute, up.segment);
  EXPECT_GT(down.delay(), Time::zero());

  sim::Digest digest;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    digest.update("read").update(i).update(outcomes[i].status);
    digest.update(outcomes[i].round_trip_ticks).update(outcomes[i].retries);
  }
  // Integer counter totals are sums — insensitive to the order the
  // increments happened in. (Histograms/gauges are left out: float
  // aggregates accumulate rounding in dispatch order.)
  for (const std::string& name : dc.metrics().names()) {
    if (const auto* counter = dc.metrics().find_counter(name)) {
      digest.update(name).update(counter->value());
    }
  }
  digest.update("faults").update(dc.faults().injected()).update(dc.faults().recovered());
  return sim::observe_audit(dc.simulator().queue(), digest.value());
}

TEST(ScheduleAuditIntegrationTest, HealthyQuickstartSurvives16Permutations) {
  sim::ScheduleAuditConfig config;
  config.permutations = 16;
  sim::ScheduleAuditor auditor{config};
  const auto report = auditor.audit(
      [](const SchedulePerturbation& p) { return run_session(p, ""); });
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.batches, 0u) << "no same-timestamp batches: the audit proved nothing";
  EXPECT_EQ(report.permutations, 16u);
}

TEST(ScheduleAuditIntegrationTest, FaultyQuickstartSurvives16Permutations) {
  // The check.sh fault plan: a 2 ms link flap from t0+1ms and a 1 ms
  // congestion burst from t0+2ms — nominal instants that land exactly on
  // the 250 us read grid. FaultInjector's one-tick skew keeps the
  // transitions out of the read batches; without it this audit diverges
  // (a read tied with the flap would complete or fail by FIFO accident).
  sim::ScheduleAuditConfig config;
  config.permutations = 16;
  sim::ScheduleAuditor auditor{config};
  const auto report = auditor.audit([](const SchedulePerturbation& p) {
    return run_session(p, "link-flap@1ms+2ms;congestion@2ms+1ms:magnitude=4");
  });
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.batches, 0u) << "no same-timestamp batches: the audit proved nothing";
}

}  // namespace
}  // namespace dredbox
