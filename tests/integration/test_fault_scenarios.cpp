// Scripted fault scenarios, end to end: the injection engine delivers
// faults through the simulation's own event queue while a workload runs,
// and each layer's reaction — fabric retry with exponential backoff,
// circuit re-provisioning, packet fallback, SDM-C evacuation and graceful
// degradation — is checked from the outside, through the Datacenter
// facade and the rack-wide telemetry.

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/dredbox.hpp"
#include "memsys/dma.hpp"
#include "sim/fault.hpp"

namespace dredbox {
namespace {

using sim::FaultKind;
using sim::Time;
constexpr std::uint64_t kGiB = 1ull << 30;

class FaultScenario : public ::testing::Test {
 protected:
  FaultScenario() : dc_{config()} { dc_.telemetry().enable_all(); }

  static core::DatacenterConfig config() {
    core::DatacenterConfig cfg;
    cfg.trays = 2;
    cfg.compute_bricks_per_tray = 2;
    cfg.memory_bricks_per_tray = 2;
    cfg.compute.local_memory_bytes = 4 * kGiB;
    cfg.memory.capacity_bytes = 32 * kGiB;
    cfg.optical_switch.ports = 96;
    return cfg;
  }

  /// Boots a VM and forces its scale-up onto a cross-tray (optical)
  /// attachment by filling the same-tray dMEMBRICK pool first.
  orch::AllocationResult boot_with_optical_attachment() {
    const auto vm = dc_.boot_vm("tenant", 1, kGiB);
    EXPECT_TRUE(vm.ok) << vm.error;
    const hw::TrayId home = dc_.rack().brick(vm.compute).tray();
    for (hw::BrickId mb : dc_.memory_bricks()) {
      if (dc_.rack().brick(mb).tray() == home) {
        auto& brick = dc_.rack().memory_brick(mb);
        EXPECT_TRUE(brick.allocate(brick.largest_free_extent(), hw::BrickId{}));
      }
    }
    const auto grant = dc_.scale_up(vm.vm, vm.compute, 2 * kGiB);
    EXPECT_TRUE(grant.ok) << grant.error;
    EXPECT_EQ(dc_.fabric().attachments_of(vm.compute).front().medium,
              memsys::LinkMedium::kOptical);
    return vm;
  }

  std::uint64_t counter(const std::string& name) {
    const auto* c = dc_.metrics().find_counter(name);
    return c != nullptr ? c->value() : 0;
  }

  void audit_everything() {
    dc_.faults().check_invariants();
    dc_.circuits().check_invariants();
    dc_.fabric().check_invariants();
  }

  core::Datacenter dc_;
};

TEST_F(FaultScenario, LinkFlapHealsTransparentlyUnderLoad) {
  const auto vm = boot_with_optical_attachment();
  const auto before = dc_.fabric().attachments_of(vm.compute);
  const Time t0 = dc_.simulator().now();

  auto plan = sim::FaultPlan{};
  plan.add({t0 + Time::ms(1), FaultKind::kLinkFlap, 0, 0, 0.0, Time::ms(5)});
  ASSERT_EQ(dc_.inject_faults(plan), 1u);

  // A read issued mid-flap self-heals: the fabric's retry loop waits out a
  // backoff, re-provisions the circuit, and completes.
  dc_.advance_to(t0 + Time::ms(2));
  const auto tx = dc_.remote_read(vm.compute, before.front().compute_base, 64);
  EXPECT_TRUE(tx.ok());
  EXPECT_GE(tx.retries, 1u);
  EXPECT_GE(counter("memsys.fabric.retries"), 1u);
  EXPECT_GE(counter("memsys.fabric.reprovisions"), 1u);

  // Recovery fires, no attachment was lost, and the window is unchanged.
  dc_.advance_to(t0 + Time::ms(10));
  EXPECT_EQ(dc_.faults().injected(), 1u);
  EXPECT_EQ(dc_.faults().recovered(), 1u);
  EXPECT_EQ(dc_.faults().active(), 0u);
  const auto after = dc_.fabric().attachments_of(vm.compute);
  ASSERT_EQ(after.size(), before.size());
  EXPECT_EQ(after.front().compute_base, before.front().compute_base);
  EXPECT_EQ(after.front().size, before.front().size);
  audit_everything();
}

TEST_F(FaultScenario, LinkFlapRecoverySweepRepairsIdleAttachments) {
  const auto vm = boot_with_optical_attachment();
  const Time t0 = dc_.simulator().now();

  auto plan = sim::FaultPlan{};
  plan.add({t0 + Time::ms(1), FaultKind::kLinkFlap, 0, 0, 0.0, Time::ms(5)});
  dc_.inject_faults(plan);

  // Nobody touches the attachment during the flap; the recovery handler's
  // sweep re-provisions it. Prove no retry was needed afterwards by
  // reading with retries disabled.
  dc_.advance_to(t0 + Time::ms(10));
  dc_.fabric().set_retry_policy(std::nullopt);
  const auto a = dc_.fabric().attachments_of(vm.compute).front();
  ASSERT_TRUE(dc_.circuits().find(a.circuit).has_value());
  const auto tx = dc_.remote_read(vm.compute, a.compute_base, 64);
  EXPECT_TRUE(tx.ok());
  EXPECT_EQ(tx.retries, 0u);
  audit_everything();
}

TEST_F(FaultScenario, SwitchPortFailureDuringVmBootIsAbsorbed) {
  const auto first = boot_with_optical_attachment();
  const Time t0 = dc_.simulator().now();

  auto plan = sim::FaultPlan{};
  plan.add({t0 + Time::ms(1), FaultKind::kSwitchPortFailure, 0, 0, 0.0, Time::ms(20)});
  dc_.inject_faults(plan);
  dc_.advance_to(t0 + Time::ms(2));
  EXPECT_EQ(dc_.faults().injected(), 1u);

  // A new tenant boots and scales up while the port is dark: the SDM-C
  // simply wires its circuit through healthy ports.
  const auto vm = dc_.boot_vm("late-tenant", 1, kGiB);
  ASSERT_TRUE(vm.ok) << vm.error;
  const auto grant = dc_.scale_up(vm.vm, vm.compute, 2 * kGiB);
  ASSERT_TRUE(grant.ok) << grant.error;

  // The first tenant's torn attachment self-heals on its next access.
  const auto a = dc_.fabric().attachments_of(first.compute).front();
  EXPECT_TRUE(dc_.remote_read(first.compute, a.compute_base, 64).ok());

  // After recovery the port pool is whole again.
  dc_.advance_to(t0 + Time::ms(30));
  for (std::size_t p = 0; p < dc_.optical_switch().port_count(); ++p) {
    EXPECT_FALSE(dc_.optical_switch().port_failed(p)) << "port " << p;
  }
  audit_everything();
}

TEST_F(FaultScenario, CascadingBrickLossEvacuatesWithoutLosingAttachments) {
  // Two tenants with remote memory; then every serving dMEMBRICK crashes,
  // one after the other. The SDM-C relocates each segment to a surviving
  // brick; no attachment is lost and no VM degrades.
  const auto vm_a = dc_.boot_vm("tenant-a", 1, kGiB);
  const auto vm_b = dc_.boot_vm("tenant-b", 1, kGiB);
  ASSERT_TRUE(vm_a.ok && vm_b.ok);
  ASSERT_TRUE(dc_.scale_up(vm_a.vm, vm_a.compute, 2 * kGiB).ok);
  ASSERT_TRUE(dc_.scale_up(vm_b.vm, vm_b.compute, 2 * kGiB).ok);
  const std::size_t attachments_before = dc_.fabric().attachment_count();
  ASSERT_GE(attachments_before, 2u);

  const Time t0 = dc_.simulator().now();
  auto plan = sim::FaultPlan{};
  plan.add({t0 + Time::ms(1), FaultKind::kBrickCrash});  // target 0: first serving brick
  plan.add({t0 + Time::ms(5), FaultKind::kBrickCrash});  // cascades onto the next
  dc_.inject_faults(plan);
  dc_.advance_to(t0 + Time::ms(10));

  EXPECT_EQ(dc_.faults().injected(), 2u);
  EXPECT_GE(counter("orch.sdm.evacuated_segments"), 2u);
  EXPECT_EQ(counter("orch.sdm.evacuation_failures"), 0u);
  EXPECT_EQ(dc_.fabric().attachment_count(), attachments_before);

  // Every attachment still serves reads, its window intact, and no guest
  // runs degraded.
  for (const auto& a : dc_.fabric().all_attachments()) {
    EXPECT_FALSE(dc_.rack().brick(a.membrick).failed());
    EXPECT_TRUE(dc_.remote_read(a.compute, a.compute_base, 64).ok());
  }
  for (hw::BrickId cb : dc_.compute_bricks()) {
    EXPECT_EQ(dc_.hypervisor_of(cb).degraded_vms(), 0u);
  }
  audit_everything();
}

TEST_F(FaultScenario, LastBrickCrashDegradesGracefullyAndRecovers) {
  // A single-dMEMBRICK rack: when that brick crashes there is nowhere to
  // evacuate to, so the owning VM degrades instead of dying — and recovers
  // the moment the brick restarts.
  core::DatacenterConfig cfg;
  cfg.trays = 1;
  cfg.compute_bricks_per_tray = 1;
  cfg.memory_bricks_per_tray = 1;
  cfg.compute.local_memory_bytes = 4 * kGiB;
  core::Datacenter dc{cfg};
  dc.telemetry().enable_all();

  const auto vm = dc.boot_vm("lonely", 1, kGiB);
  ASSERT_TRUE(vm.ok);
  ASSERT_TRUE(dc.scale_up(vm.vm, vm.compute, 2 * kGiB).ok);
  const hw::BrickId membrick = dc.fabric().all_attachments().front().membrick;

  const Time t0 = dc.simulator().now();
  auto plan = sim::FaultPlan{};
  plan.add({t0 + Time::ms(1), FaultKind::kBrickCrash, membrick.value, 0, 0.0, Time::ms(10)});
  dc.inject_faults(plan);
  dc.advance_to(t0 + Time::ms(2));

  EXPECT_TRUE(dc.rack().brick(membrick).failed());
  EXPECT_EQ(dc.hypervisor_of(vm.compute).degraded_vms(), 1u);
  const auto* degraded = dc.metrics().find_gauge("orch.sdm.degraded_membricks");
  ASSERT_NE(degraded, nullptr);
  EXPECT_DOUBLE_EQ(degraded->value(), 1.0);
  const auto a = dc.fabric().all_attachments().front();
  EXPECT_EQ(dc.fabric().read(vm.compute, a.compute_base, 64, dc.simulator().now()).status,
            memsys::TransactionStatus::kBrickFailed);

  // Restart: degradation lifts, service resumes.
  dc.advance_to(t0 + Time::ms(20));
  EXPECT_FALSE(dc.rack().brick(membrick).failed());
  EXPECT_EQ(dc.hypervisor_of(vm.compute).degraded_vms(), 0u);
  EXPECT_DOUBLE_EQ(degraded->value(), 0.0);
  EXPECT_TRUE(dc.remote_read(vm.compute, a.compute_base, 64).ok());
  dc.faults().check_invariants();
}

TEST_F(FaultScenario, DmaTransferRidesOutABrickOutage) {
  // A bulk DMA transfer is mid-flight when its dMEMBRICK goes dark for a
  // while (single-brick rack: evacuation impossible). The engine's
  // chunk-level backoff waits the outage out and the transfer completes.
  core::DatacenterConfig cfg;
  cfg.trays = 1;
  cfg.compute_bricks_per_tray = 1;
  cfg.memory_bricks_per_tray = 1;
  cfg.compute.local_memory_bytes = 4 * kGiB;
  sim::RetryPolicy patient;
  patient.max_attempts = 12;
  patient.initial_backoff = Time::us(100);
  patient.timeout = Time::ms(50);
  cfg.fabric_retry = patient;
  core::Datacenter dc{cfg};
  dc.telemetry().enable_all();

  const auto vm = dc.boot_vm("bulk", 1, kGiB);
  ASSERT_TRUE(vm.ok);
  ASSERT_TRUE(dc.scale_up(vm.vm, vm.compute, 2 * kGiB).ok);
  const auto a = dc.fabric().all_attachments().front();

  const Time t0 = dc.simulator().now();
  auto plan = sim::FaultPlan{};
  plan.add({t0 + Time::us(50), FaultKind::kBrickCrash, a.membrick.value, 0, 0.0,
            Time::ms(2)});
  dc.inject_faults(plan);

  memsys::DmaEngine dma{dc.simulator(), dc.fabric(), vm.compute};
  memsys::DmaDescriptor descriptor;
  descriptor.address = a.compute_base;
  descriptor.bytes = 1ull << 20;
  memsys::DmaCompletion done;
  dma.enqueue(descriptor, [&](const memsys::DmaCompletion& c) { done = c; });
  dc.simulator().run();

  EXPECT_TRUE(done.ok) << done.error;
  EXPECT_EQ(done.bytes, 1ull << 20);
  EXPECT_GE(done.retries, 1u);
  const auto* retries = dc.metrics().find_counter("memsys.dma.retries");
  ASSERT_NE(retries, nullptr);
  EXPECT_EQ(retries->value(), done.retries);
  EXPECT_GT(done.completed_at, t0 + Time::ms(2));  // waited out the outage
  dc.faults().check_invariants();
}

TEST_F(FaultScenario, CongestionBurstSlowsPacketPathThenClears) {
  const auto vm = boot_with_optical_attachment();
  const auto a = dc_.fabric().attachments_of(vm.compute).front();
  ASSERT_TRUE(dc_.fabric().failover_to_packet(vm.compute, a.segment,
                                              dc_.simulator().now()));

  const auto calm = dc_.remote_read(vm.compute, a.compute_base, 4096);
  ASSERT_TRUE(calm.ok());

  const Time t0 = dc_.simulator().now();
  auto plan = sim::FaultPlan{};
  plan.add({t0 + Time::ms(1), FaultKind::kCongestionBurst, 0, 0, 8.0, Time::ms(5)});
  plan.add({t0 + Time::ms(1), FaultKind::kLossBurst, 0, 0, 2.0, Time::ms(5)});
  dc_.inject_faults(plan);

  dc_.advance_to(t0 + Time::ms(2));
  const auto congested = dc_.remote_read(vm.compute, a.compute_base, 4096);
  ASSERT_TRUE(congested.ok());
  EXPECT_GT(congested.round_trip(), calm.round_trip());
  EXPECT_GE(counter("net.packets.retransmitted"), 1u);

  dc_.advance_to(t0 + Time::ms(10));
  const auto cleared = dc_.remote_read(vm.compute, a.compute_base, 4096);
  ASSERT_TRUE(cleared.ok());
  EXPECT_EQ(cleared.round_trip(), calm.round_trip());
  audit_everything();
}

TEST_F(FaultScenario, RmstCorruptionIsScrubbedOnDemand) {
  const auto vm = boot_with_optical_attachment();
  const auto a = dc_.fabric().attachments_of(vm.compute).front();

  const Time t0 = dc_.simulator().now();
  auto plan = sim::FaultPlan{};
  plan.add({t0 + Time::ms(1), FaultKind::kRmstCorruption});  // target 0: first compute
  dc_.inject_faults(plan);
  dc_.advance_to(t0 + Time::ms(2));
  EXPECT_EQ(counter("memsys.fabric.rmst_corruptions"), 1u);

  // The poisoned translation is caught against the dMEMBRICK's backing
  // segment, scrubbed from the attachment records, and the read retries
  // through cleanly.
  const auto tx = dc_.remote_read(vm.compute, a.compute_base, 64);
  EXPECT_TRUE(tx.ok());
  EXPECT_GE(tx.retries, 1u);
  EXPECT_GE(counter("memsys.fabric.rmst_scrubs"), 1u);
  audit_everything();
}

TEST_F(FaultScenario, ControllerStallDelaysScaleUps) {
  const auto vm = dc_.boot_vm("tenant", 1, kGiB);
  ASSERT_TRUE(vm.ok);
  const auto baseline = dc_.scale_up(vm.vm, vm.compute, kGiB);
  ASSERT_TRUE(baseline.ok);

  const Time t0 = dc_.simulator().now();
  const Time stall = Time::ms(50);
  auto plan = sim::FaultPlan{};
  plan.add({t0 + Time::ms(1), FaultKind::kControllerStall, 0, 0, 0.0, stall});
  dc_.inject_faults(plan);
  dc_.advance_to(t0 + Time::ms(2));

  // The serialized inspect+reserve queue is not draining; the request
  // waits behind the stall on top of the normal control-plane latency.
  const auto delayed = dc_.scale_up(vm.vm, vm.compute, kGiB);
  ASSERT_TRUE(delayed.ok) << delayed.error;
  EXPECT_GE(delayed.delay(), baseline.delay() + sim::scale(stall, 0.9));
  EXPECT_EQ(counter("orch.sdm.stalls"), 1u);
  audit_everything();
}

TEST_F(FaultScenario, FaultPlanFromEnvironmentDrivesTheRack) {
  ::setenv(sim::kFaultPlanEnv, "link-flap@1ms+2ms;congestion@2ms+1ms:magnitude=3", 1);
  const auto plan = sim::fault_plan_from_env();
  ::unsetenv(sim::kFaultPlanEnv);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->size(), 2u);

  boot_with_optical_attachment();
  EXPECT_EQ(dc_.inject_faults(*plan), 2u);
  dc_.advance_to(dc_.simulator().now() + Time::ms(10));
  EXPECT_EQ(dc_.faults().injected() + dc_.faults().skipped(), 2u);
  EXPECT_EQ(dc_.faults().skipped(), 0u);  // the facade handles every kind
  audit_everything();
}

}  // namespace
}  // namespace dredbox
