// The Fig. 9 stack, end to end: one scripted scenario exercises every
// layer — OpenStack front-end, SDM-C, hypervisor, baremetal hotplug,
// remote-memory fabric, DMA engines, optical switch — and checks the
// cross-layer invariants after each step. This is the "day in the life of
// a disaggregated rack" test.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/dredbox.hpp"
#include "sim/trace_export.hpp"

namespace dredbox {
namespace {

using sim::Time;
constexpr std::uint64_t kGiB = 1ull << 30;

class FullStackScenario : public ::testing::Test {
 protected:
  FullStackScenario() : dc_{config()} { dc_.tracer().enable(); }

  static core::DatacenterConfig config() {
    core::DatacenterConfig cfg;
    cfg.trays = 2;
    cfg.compute_bricks_per_tray = 2;
    cfg.memory_bricks_per_tray = 2;
    cfg.accelerator_bricks_per_tray = 1;
    cfg.compute.local_memory_bytes = 4 * kGiB;
    cfg.memory.capacity_bytes = 32 * kGiB;
    cfg.optical_switch.ports = 96;
    return cfg;
  }

  /// Cross-layer invariants that must hold at every quiescent point.
  void check_rack_invariants() {
    // Optical switch ports are exactly 2 per live circuit.
    ASSERT_EQ(dc_.optical_switch().ports_in_use(), 2 * dc_.circuits().active_circuits());
    // Fabric attachment bytes equal dMEMBRICK segment bytes.
    std::uint64_t attached = 0;
    for (hw::BrickId cb : dc_.compute_bricks()) attached += dc_.fabric().attached_bytes(cb);
    std::uint64_t segments = 0;
    for (hw::BrickId mb : dc_.memory_bricks()) {
      segments += dc_.rack().memory_brick(mb).allocated_bytes();
    }
    ASSERT_EQ(attached, segments);
    // Hypervisor commitments never exceed host memory (local + hot-added).
    for (hw::BrickId cb : dc_.compute_bricks()) {
      auto& hv = dc_.hypervisor_of(cb);
      ASSERT_LE(hv.committed_bytes(),
                dc_.os_of(cb).total_ram_bytes() + hv.ballooned_bytes());
      // Remote bytes the kernel onlined match the fabric's view.
      ASSERT_EQ(dc_.os_of(cb).remote_bytes(), dc_.fabric().attached_bytes(cb));
    }
  }

  core::Datacenter dc_;
};

TEST_F(FullStackScenario, DayInTheLifeOfTheRack) {
  // --- 08:00 tenants arrive through the OpenStack front-end ---
  const auto web = dc_.boot_vm("web", 2, 2 * kGiB);
  const auto db = dc_.boot_vm("db", 2, 2 * kGiB);
  ASSERT_TRUE(web.ok && db.ok);
  check_rack_invariants();

  // --- 09:00 the database's working set grows: Scale-up API ---
  dc_.advance_to(Time::sec(3600));
  const auto grant = dc_.scale_up(db.vm, db.compute, 8 * kGiB);
  ASSERT_TRUE(grant.ok) << grant.error;
  EXPECT_LT(grant.delay(), Time::sec(5));
  check_rack_invariants();

  // --- 09:01 the database bulk-loads its dataset over DMA ---
  dc_.advance_to(Time::sec(3660));
  memsys::DmaEngine dma{dc_.simulator(), dc_.fabric(), db.compute, 2, 65536};
  const auto attachment = dc_.fabric().attachments_of(db.compute).front();
  memsys::DmaCompletion load;
  memsys::DmaDescriptor desc;
  desc.address = attachment.compute_base;
  desc.bytes = 256ull << 20;  // 256 MiB load
  dma.enqueue(desc, [&](const memsys::DmaCompletion& c) { load = c; });
  dc_.simulator().run();
  ASSERT_TRUE(load.ok) << load.error;
  EXPECT_GT(load.effective_gbps(), 5.0);
  check_rack_invariants();

  // --- 10:00 ordinary traffic: remote reads stay sub-microsecond ---
  dc_.advance_to(Time::sec(7200));
  const auto tx = dc_.remote_read(db.compute, attachment.compute_base + 4096, 64);
  ASSERT_TRUE(tx.ok());
  EXPECT_LT(tx.round_trip(), Time::us(1));

  // --- 11:00 maintenance: evacuate the db's brick via live migration ---
  dc_.advance_to(Time::sec(10800));
  hw::BrickId spare;
  for (hw::BrickId cb : dc_.compute_bricks()) {
    if (cb != web.compute && cb != db.compute) {
      spare = cb;
      break;
    }
  }
  ASSERT_TRUE(spare.valid());
  const auto move = dc_.migrate_vm(db.vm, db.compute, spare);
  ASSERT_TRUE(move.ok) << move.error;
  EXPECT_EQ(move.repointed_bytes, 8 * kGiB);  // dataset never copied
  EXPECT_LT(move.downtime, Time::ms(200));
  check_rack_invariants();

  // --- 11:05 the migrated guest keeps serving from the same segments ---
  const auto post = dc_.fabric().attachments_of(spare).front();
  ASSERT_TRUE(dc_.remote_read(spare, post.compute_base, 64).ok());

  // --- 18:00 load drains: scale down and consolidate ---
  dc_.advance_to(Time::sec(18 * 3600));
  const auto drop = dc_.scale_down(move.new_vm, spare, post.segment);
  ASSERT_TRUE(drop.ok) << drop.error;
  check_rack_invariants();
  EXPECT_EQ(dc_.optical_switch().ports_in_use(), 0u);

  // --- 23:00 power manager sweeps the idle bricks ---
  dc_.advance_to(Time::sec(23 * 3600));
  const std::size_t swept = dc_.power_manager().tick(dc_.simulator().now());
  EXPECT_GT(swept, 0u);
  const double draw = dc_.power_draw_watts();
  EXPECT_LT(draw, 120.0);  // far below the all-on rack

  // The tracer saw the whole day.
  EXPECT_GE(dc_.tracer().size(), 5u);
  EXPECT_FALSE(dc_.tracer().filter(sim::TraceCategory::kMigration).empty());
}

TEST_F(FullStackScenario, TelemetryObservesEveryLayer) {
  dc_.telemetry().enable_all();

  // A quickstart-shaped run: boot, scale up over the fabric, touch the
  // disaggregated memory a few times.
  const auto vm = dc_.boot_vm("observed", 2, 2 * kGiB);
  ASSERT_TRUE(vm.ok);
  const auto grant = dc_.scale_up(vm.vm, vm.compute, 4 * kGiB);
  ASSERT_TRUE(grant.ok) << grant.error;
  const auto attachment = dc_.fabric().attachments_of(vm.compute).front();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(dc_.remote_read(vm.compute, attachment.compute_base + 64 * i, 64).ok());
  }
  ASSERT_TRUE(
      dc_.fabric().write(vm.compute, attachment.compute_base, 64, dc_.simulator().now()).ok());

  // Every layer reported into the shared registry under its own prefix.
  auto& metrics = dc_.metrics();
  EXPECT_GE(metrics.size(), 10u);
  const auto names = metrics.names();
  for (const std::string prefix : {"hw.", "memsys.", "optics.", "orch.", "hyp."}) {
    EXPECT_TRUE(std::any_of(names.begin(), names.end(),
                            [&](const std::string& n) { return n.rfind(prefix, 0) == 0; }))
        << "no instrument under prefix " << prefix;
  }
  EXPECT_GT(metrics.find_counter("hw.tgl.lookup_hits")->value(), 0u);
  EXPECT_GE(metrics.find_counter("memsys.fabric.transactions")->value(), 9u);
  EXPECT_GE(metrics.find_histogram("memsys.read.latency_ns")->count(), 8u);
  EXPECT_GT(metrics.find_gauge("hw.rmst.entries")->value(), 0.0);
  EXPECT_EQ(metrics.find_counter("orch.sdm.scale_ups")->value(), 1u);
  EXPECT_EQ(metrics.find_counter("hyp.vms.created")->value(), 1u);
  EXPECT_GT(metrics.find_gauge("hyp.memory.committed_bytes")->value(), 0.0);

  // The exported Chrome trace carries spans from at least four distinct
  // subsystems on this one path (orchestration, hotplug, hypervisor,
  // fabric), and it round-trips through DREDBOX_TRACE_FILE.
  const std::string path = ::testing::TempDir() + "full_stack_trace.json";
  ::setenv(sim::kTraceFileEnv, path.c_str(), /*overwrite=*/1);
  ASSERT_TRUE(sim::maybe_write_trace(dc_.tracer()));
  ::unsetenv(sim::kTraceFileEnv);
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  std::remove(path.c_str());

  std::size_t categories_with_spans = 0;
  for (const std::string cat :
       {"orchestration", "hotplug", "hypervisor", "fabric", "power", "migration"}) {
    if (json.find("\"cat\":\"" + cat + "\",\"ph\":\"X\"") != std::string::npos) {
      ++categories_with_spans;
    }
  }
  EXPECT_GE(categories_with_spans, 4u) << json;

  // Cheap-when-off: disabling stops recording on the already-wired paths.
  dc_.telemetry().disable_all();
  const auto before = metrics.find_counter("memsys.fabric.transactions")->value();
  ASSERT_TRUE(dc_.remote_read(vm.compute, attachment.compute_base, 64).ok());
  EXPECT_EQ(metrics.find_counter("memsys.fabric.transactions")->value(), before);
}

TEST_F(FullStackScenario, SurvivesFibreCutDuringOperation) {
  const auto vm = dc_.boot_vm("victim", 1, kGiB);
  ASSERT_TRUE(vm.ok);
  // Force a cross-tray (optical) attachment by filling the same-tray pool.
  const hw::TrayId home = dc_.rack().brick(vm.compute).tray();
  for (hw::BrickId mb : dc_.memory_bricks()) {
    if (dc_.rack().brick(mb).tray() == home) {
      auto& brick = dc_.rack().memory_brick(mb);
      ASSERT_TRUE(brick.allocate(brick.largest_free_extent(), hw::BrickId{}));
    }
  }
  const auto grant = dc_.scale_up(vm.vm, vm.compute, 2 * kGiB);
  ASSERT_TRUE(grant.ok);
  const auto attachment = dc_.fabric().attachments_of(vm.compute).front();
  ASSERT_EQ(attachment.medium, memsys::LinkMedium::kOptical);

  // Fibre cut: the fabric's default retry policy re-provisions the circuit
  // transparently, so the read completes after a bounded number of retries.
  ASSERT_TRUE(dc_.fabric().fail_circuit(attachment.circuit));
  const auto healed = dc_.remote_read(vm.compute, attachment.compute_base, 64);
  EXPECT_TRUE(healed.ok());
  EXPECT_GE(healed.retries, 1u);

  // Fail-fast rack (no retry policy): the cut surfaces loudly, the data
  // survives on the brick, and an explicit repair restores service.
  dc_.fabric().set_retry_policy(std::nullopt);
  const auto rewired = dc_.fabric().attachments_of(vm.compute).front();
  ASSERT_TRUE(dc_.fabric().fail_circuit(rewired.circuit));
  const auto broken = dc_.remote_read(vm.compute, rewired.compute_base, 64);
  EXPECT_EQ(broken.status, memsys::TransactionStatus::kCircuitDown);

  dc_.advance_to(Time::sec(10));
  ASSERT_TRUE(dc_.fabric().repair(vm.compute, rewired.segment, dc_.simulator().now()));
  EXPECT_TRUE(dc_.remote_read(vm.compute, rewired.compute_base, 64).ok());
}

}  // namespace
}  // namespace dredbox
