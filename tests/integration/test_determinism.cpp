// Determinism harness: the whole point of a seeded DES is that one seed is
// one execution. Two runs of an identical scenario with the same seed must
// produce byte-identical observable output (metrics snapshot, trace
// timeline, transaction latencies, MBO calibration); a different seed must
// actually reach the seed-dependent state (divergent digests), otherwise
// the "determinism" is just constant output. scripts/determinism.sh runs
// these tests plus a process-level double run of examples/quickstart.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/datacenter.hpp"
#include "sim/digest.hpp"
#include "sim/fault.hpp"
#include "sim/format.hpp"
#include "sim/trace_export.hpp"

namespace {

using namespace dredbox;

/// Runs one full boot / scale-up / rng-driven-traffic / scale-down
/// scenario and folds every observable surface into one FNV-1a digest.
/// Any nondeterminism anywhere in the stack (container iteration order,
/// uninitialised reads surviving by luck, hidden wall-clock use) shows up
/// as a digest mismatch between same-seed runs.
std::uint64_t run_scenario(std::uint64_t seed) {
  core::DatacenterConfig config;
  config.trays = 2;
  config.compute_bricks_per_tray = 2;
  config.memory_bricks_per_tray = 2;
  config.seed = seed;

  core::Datacenter dc{config};
  dc.telemetry().enable_all();

  sim::Digest digest;
  digest.update(dc.describe());

  const auto vm = dc.boot_vm("determinism-guest", /*vcpus=*/2, /*memory=*/2ull << 30);
  EXPECT_TRUE(vm.ok) << vm.error;
  if (!vm.ok) return digest.value();

  const auto up = dc.scale_up(vm.vm, vm.compute, 4ull << 30);
  EXPECT_TRUE(up.ok) << up.error;
  if (!up.ok) return digest.value();
  digest.update(up.delay().to_string());
  digest.update(up.breakdown.to_string());

  // Seed-dependent traffic: offsets and sizes come from the simulation's
  // own rng, so different seeds touch different addresses and the latency
  // histograms (and their digests) diverge.
  const auto attachment = dc.fabric().attachments_of(vm.compute).front();
  auto& rng = dc.simulator().rng();
  for (int i = 0; i < 32; ++i) {
    const auto offset =
        static_cast<std::uint64_t>(rng.uniform_int(0, (1 << 20) - 1)) & ~std::uint64_t{0x3F};
    const auto bytes = static_cast<std::uint32_t>(64 << rng.uniform_int(0, 4));
    const auto tx = dc.remote_read(vm.compute, attachment.compute_base + offset, bytes);
    digest.update(offset);
    digest.update(tx.round_trip().to_string());
  }

  const auto down = dc.scale_down(vm.vm, vm.compute, up.segment);
  EXPECT_TRUE(down.ok) << down.error;
  digest.update(down.delay().to_string());

  // Seed-dependent hardware calibration: per-channel MBO launch powers are
  // drawn from the seeded rng at rack-assembly time.
  auto& mbo = dc.mbo_of(vm.compute);
  for (std::size_t c = 0; c < mbo.channel_count(); ++c) {
    digest.update(sim::strformat("%.12f", mbo.channel(c).launch_dbm));
  }

  // The full observable surface: every instrument and the span timeline.
  digest.update(dc.metrics().snapshot().to_string());
  digest.update(dc.tracer().to_string());
  digest.update(sim::to_chrome_trace_json(dc.tracer()));
  return digest.value();
}

/// Same scenario, but with a generated fault plan landing mid-workload:
/// link flaps, bursts, brick crashes and the recovery machinery (retry
/// backoff, re-provisioning, evacuation) must all be as reproducible as
/// the fault-free path.
std::uint64_t run_faulty_scenario(std::uint64_t seed) {
  core::DatacenterConfig config;
  config.trays = 2;
  config.compute_bricks_per_tray = 2;
  config.memory_bricks_per_tray = 2;
  config.seed = seed;

  core::Datacenter dc{config};
  dc.telemetry().enable_all();

  sim::Digest digest;
  const auto vm = dc.boot_vm("faulty-guest", /*vcpus=*/2, /*memory=*/2ull << 30);
  EXPECT_TRUE(vm.ok) << vm.error;
  if (!vm.ok) return digest.value();
  const auto up = dc.scale_up(vm.vm, vm.compute, 4ull << 30);
  EXPECT_TRUE(up.ok) << up.error;
  if (!up.ok) return digest.value();

  // The plan itself is drawn from the seeded simulation rng, so it is part
  // of the reproducible state under test.
  sim::FaultPlan::GeneratorConfig knobs;
  knobs.events = 6;
  knobs.horizon = sim::Time::ms(40);
  const auto plan = sim::FaultPlan::generate(dc.simulator().rng(), knobs);
  digest.update(plan.to_string());
  dc.inject_faults(plan);

  // Traffic interleaves with the fault arrivals on the event queue.
  const auto attachment = dc.fabric().attachments_of(vm.compute).front();
  auto& rng = dc.simulator().rng();
  for (int i = 0; i < 32; ++i) {
    dc.advance_to(dc.simulator().now() + sim::Time::ms(2));
    const auto offset =
        static_cast<std::uint64_t>(rng.uniform_int(0, (1 << 20) - 1)) & ~std::uint64_t{0x3F};
    const auto tx = dc.remote_read(vm.compute, attachment.compute_base + offset, 64);
    digest.update(offset);
    digest.update(std::string{memsys::to_string(tx.status)});
    digest.update(tx.retries);
    digest.update(tx.round_trip().to_string());
  }
  dc.advance_to(dc.simulator().now() + sim::Time::ms(100));

  digest.update(dc.faults().injected());
  digest.update(dc.faults().recovered());
  digest.update(dc.faults().skipped());
  dc.faults().check_invariants();
  digest.update(dc.metrics().snapshot().to_string());
  digest.update(dc.tracer().to_string());
  return digest.value();
}

TEST(DeterminismTest, SameSeedIsByteIdentical) {
  EXPECT_EQ(run_scenario(42), run_scenario(42));
}

TEST(DeterminismTest, FaultyRunSameSeedIsByteIdentical) {
  EXPECT_EQ(run_faulty_scenario(42), run_faulty_scenario(42));
}

TEST(DeterminismTest, FaultyRunsDivergeAcrossSeeds) {
  EXPECT_NE(run_faulty_scenario(42), run_faulty_scenario(1337));
}

TEST(DeterminismTest, DefaultSeedIsByteIdentical) {
  EXPECT_EQ(run_scenario(1), run_scenario(1));
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  // Guards against a harness that is "deterministic" only because nothing
  // seed-dependent is in the digest.
  EXPECT_NE(run_scenario(42), run_scenario(1337));
}

TEST(DeterminismTest, DigestIsOrderSensitive) {
  sim::Digest a;
  a.update("attach");
  a.update("detach");
  sim::Digest b;
  b.update("detach");
  b.update("attach");
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(sim::fnv1a("attach"), sim::fnv1a("attach"));
  EXPECT_NE(sim::fnv1a("attach"), sim::fnv1a("detach"));
}

}  // namespace
