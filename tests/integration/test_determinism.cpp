// Determinism harness: the whole point of a seeded DES is that one seed is
// one execution. Two runs of an identical scenario with the same seed must
// produce byte-identical observable output (metrics snapshot, trace
// timeline, transaction latencies, MBO calibration); a different seed must
// actually reach the seed-dependent state (divergent digests), otherwise
// the "determinism" is just constant output. scripts/determinism.sh runs
// these tests plus a process-level double run of examples/quickstart.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/datacenter.hpp"
#include "sim/digest.hpp"
#include "sim/format.hpp"
#include "sim/trace_export.hpp"

namespace {

using namespace dredbox;

/// Runs one full boot / scale-up / rng-driven-traffic / scale-down
/// scenario and folds every observable surface into one FNV-1a digest.
/// Any nondeterminism anywhere in the stack (container iteration order,
/// uninitialised reads surviving by luck, hidden wall-clock use) shows up
/// as a digest mismatch between same-seed runs.
std::uint64_t run_scenario(std::uint64_t seed) {
  core::DatacenterConfig config;
  config.trays = 2;
  config.compute_bricks_per_tray = 2;
  config.memory_bricks_per_tray = 2;
  config.seed = seed;

  core::Datacenter dc{config};
  dc.telemetry().enable_all();

  sim::Digest digest;
  digest.update(dc.describe());

  const auto vm = dc.boot_vm("determinism-guest", /*vcpus=*/2, /*memory=*/2ull << 30);
  EXPECT_TRUE(vm.ok) << vm.error;
  if (!vm.ok) return digest.value();

  const auto up = dc.scale_up(vm.vm, vm.compute, 4ull << 30);
  EXPECT_TRUE(up.ok) << up.error;
  if (!up.ok) return digest.value();
  digest.update(up.delay().to_string());
  digest.update(up.breakdown.to_string());

  // Seed-dependent traffic: offsets and sizes come from the simulation's
  // own rng, so different seeds touch different addresses and the latency
  // histograms (and their digests) diverge.
  const auto attachment = dc.fabric().attachments_of(vm.compute).front();
  auto& rng = dc.simulator().rng();
  for (int i = 0; i < 32; ++i) {
    const auto offset =
        static_cast<std::uint64_t>(rng.uniform_int(0, (1 << 20) - 1)) & ~std::uint64_t{0x3F};
    const auto bytes = static_cast<std::uint32_t>(64 << rng.uniform_int(0, 4));
    const auto tx = dc.remote_read(vm.compute, attachment.compute_base + offset, bytes);
    digest.update(offset);
    digest.update(tx.round_trip().to_string());
  }

  const auto down = dc.scale_down(vm.vm, vm.compute, up.segment);
  EXPECT_TRUE(down.ok) << down.error;
  digest.update(down.delay().to_string());

  // Seed-dependent hardware calibration: per-channel MBO launch powers are
  // drawn from the seeded rng at rack-assembly time.
  auto& mbo = dc.mbo_of(vm.compute);
  for (std::size_t c = 0; c < mbo.channel_count(); ++c) {
    digest.update(sim::strformat("%.12f", mbo.channel(c).launch_dbm));
  }

  // The full observable surface: every instrument and the span timeline.
  digest.update(dc.metrics().snapshot().to_string());
  digest.update(dc.tracer().to_string());
  digest.update(sim::to_chrome_trace_json(dc.tracer()));
  return digest.value();
}

TEST(DeterminismTest, SameSeedIsByteIdentical) {
  EXPECT_EQ(run_scenario(42), run_scenario(42));
}

TEST(DeterminismTest, DefaultSeedIsByteIdentical) {
  EXPECT_EQ(run_scenario(1), run_scenario(1));
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  // Guards against a harness that is "deterministic" only because nothing
  // seed-dependent is in the digest.
  EXPECT_NE(run_scenario(42), run_scenario(1337));
}

TEST(DeterminismTest, DigestIsOrderSensitive) {
  sim::Digest a;
  a.update("attach");
  a.update("detach");
  sim::Digest b;
  b.update("detach");
  b.update("attach");
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(sim::fnv1a("attach"), sim::fnv1a("attach"));
  EXPECT_NE(sim::fnv1a("attach"), sim::fnv1a("detach"));
}

}  // namespace
