// DatacenterConfig::validate(): every physically or numerically absurd
// deployment shape is rejected with a field-named error before any
// hardware is assembled, and the Datacenter constructor surfaces the
// whole list at once.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/datacenter.hpp"

namespace dredbox {
namespace {

bool mentions(const std::vector<std::string>& errors, const std::string& needle) {
  return std::any_of(errors.begin(), errors.end(), [&](const std::string& e) {
    return e.find(needle) != std::string::npos;
  });
}

TEST(ConfigValidate, DefaultConfigIsValid) {
  EXPECT_TRUE(core::DatacenterConfig{}.validate().empty());
}

TEST(ConfigValidate, RejectsZeroTrays) {
  core::DatacenterConfig config;
  config.trays = 0;
  EXPECT_TRUE(mentions(config.validate(), "trays:"));
}

TEST(ConfigValidate, RejectsZeroBrickRack) {
  core::DatacenterConfig config;
  config.compute_bricks_per_tray = 0;
  config.memory_bricks_per_tray = 0;
  config.accelerator_bricks_per_tray = 0;
  EXPECT_TRUE(mentions(config.validate(), "zero-brick rack"));
}

TEST(ConfigValidate, DegradedRacksStayValid) {
  // Racks with only one brick kind are legitimate test/degraded shapes
  // (tests/core/test_datacenter_edge.cpp constructs them).
  core::DatacenterConfig no_compute;
  no_compute.compute_bricks_per_tray = 0;
  EXPECT_TRUE(no_compute.validate().empty());

  core::DatacenterConfig no_memory;
  no_memory.memory_bricks_per_tray = 0;
  EXPECT_TRUE(no_memory.validate().empty());
}

TEST(ConfigValidate, RejectsPortCountBeyondSwitchRadix) {
  core::DatacenterConfig config;
  config.optical_switch.ports = 4;
  config.compute.transceiver_ports = 8;
  const auto errors = config.validate();
  EXPECT_TRUE(mentions(errors, "compute.transceiver_ports"));
  EXPECT_TRUE(mentions(errors, "exceed the optical switch radix"));
}

TEST(ConfigValidate, SkipsBrickChecksForAbsentKinds) {
  // An accelerator misconfiguration must not matter on a rack without
  // accelerator bricks.
  core::DatacenterConfig config;
  config.accelerator_bricks_per_tray = 0;
  config.accelerator.pl_ddr_bytes = 0;
  EXPECT_TRUE(config.validate().empty());

  config.accelerator_bricks_per_tray = 1;
  EXPECT_TRUE(mentions(config.validate(), "accelerator.pl_ddr_bytes"));
}

TEST(ConfigValidate, RejectsNonPositiveLineRates) {
  core::DatacenterConfig config;
  config.compute.port_rate_gbps = 0.0;
  EXPECT_TRUE(mentions(config.validate(), "compute.port_rate_gbps"));

  core::DatacenterConfig circuit;
  circuit.circuit_path.line_rate_gbps = -1.0;
  EXPECT_TRUE(mentions(circuit.validate(), "circuit_path.line_rate_gbps"));
}

TEST(ConfigValidate, RejectsNonPositiveLinkBudget) {
  core::DatacenterConfig config;
  config.mbo.coupling_loss_db = 30.0;  // 2 x 30 dB eats any launch power
  const auto errors = config.validate();
  EXPECT_TRUE(mentions(errors, "mbo.mean_launch_dbm"));
  EXPECT_TRUE(mentions(errors, "link budget"));
}

TEST(ConfigValidate, RejectsNegativeControlPathTimings) {
  core::DatacenterConfig config;
  config.sdm.api_relay = sim::Time::ms(-1);
  EXPECT_TRUE(mentions(config.validate(), "sdm.api_relay"));

  core::DatacenterConfig hp;
  hp.hotplug.per_gib_cost = sim::Time::us(-5);
  EXPECT_TRUE(mentions(hp.validate(), "hotplug.per_gib_cost"));
}

TEST(ConfigValidate, RejectsBadOomGuardThresholds) {
  core::DatacenterConfig config;
  config.oom_guard.pressure_threshold = 1.5;
  EXPECT_TRUE(mentions(config.validate(), "oom_guard.pressure_threshold"));

  core::DatacenterConfig relax;
  relax.oom_guard.relax_threshold = relax.oom_guard.pressure_threshold;
  EXPECT_TRUE(mentions(relax.validate(), "oom_guard.relax_threshold"));
}

TEST(ConfigValidate, ReportsEveryErrorAtOnce) {
  core::DatacenterConfig config;
  config.trays = 0;
  config.compute.apu_cores = 0;
  config.memory.capacity_bytes = 0;
  config.migration.network_bandwidth_gbps = 0.0;
  const auto errors = config.validate();
  EXPECT_GE(errors.size(), 4u);
  EXPECT_TRUE(mentions(errors, "trays:"));
  EXPECT_TRUE(mentions(errors, "compute.apu_cores"));
  EXPECT_TRUE(mentions(errors, "memory.capacity_bytes"));
  EXPECT_TRUE(mentions(errors, "migration.network_bandwidth_gbps"));
}

TEST(ConfigValidate, DatacenterCtorThrowsWithFieldNames) {
  core::DatacenterConfig config;
  config.optical_switch.ports = 1;
  try {
    core::Datacenter dc{config};
    FAIL() << "constructor accepted an invalid config";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("invalid DatacenterConfig"), std::string::npos);
    EXPECT_NE(what.find("optical_switch.ports"), std::string::npos);
  }
}

TEST(ConfigValidate, ValidConfigStillConstructs) {
  core::DatacenterConfig config;
  config.trays = 1;
  EXPECT_NO_THROW(core::Datacenter{config});
}

}  // namespace
}  // namespace dredbox
