#include <gtest/gtest.h>

#include "core/datacenter.hpp"

namespace dredbox::core {
namespace {

using sim::Time;
constexpr std::uint64_t kGiB = 1ull << 30;

TEST(DatacenterEdgeTest, RackWithoutComputeBricksRejectsBoots) {
  DatacenterConfig cfg;
  cfg.trays = 1;
  cfg.compute_bricks_per_tray = 0;
  cfg.memory_bricks_per_tray = 2;
  Datacenter dc{cfg};
  const auto vm = dc.boot_vm("homeless", 1, kGiB);
  EXPECT_FALSE(vm.ok);
  EXPECT_FALSE(vm.error.empty());
}

TEST(DatacenterEdgeTest, RackWithoutMemoryBricksLimitsToLocal) {
  DatacenterConfig cfg;
  cfg.trays = 1;
  cfg.compute_bricks_per_tray = 1;
  cfg.memory_bricks_per_tray = 0;
  cfg.compute.local_memory_bytes = 4 * kGiB;
  Datacenter dc{cfg};
  // Local boots work...
  const auto vm = dc.boot_vm("local-only", 1, 2 * kGiB);
  ASSERT_TRUE(vm.ok);
  // ...but there is nothing to scale up from.
  const auto up = dc.scale_up(vm.vm, vm.compute, kGiB);
  EXPECT_FALSE(up.ok);
  EXPECT_NE(up.error.find("no dMEMBRICK"), std::string::npos);
  // And booting past local memory fails cleanly.
  const auto big = dc.boot_vm("too-big", 1, 8 * kGiB);
  EXPECT_FALSE(big.ok);
}

TEST(DatacenterEdgeTest, CoreExhaustionReportsCleanly) {
  DatacenterConfig cfg;
  cfg.trays = 1;
  cfg.compute_bricks_per_tray = 1;
  cfg.memory_bricks_per_tray = 1;
  cfg.compute.apu_cores = 2;
  Datacenter dc{cfg};
  ASSERT_TRUE(dc.boot_vm("a", 2, kGiB).ok);
  const auto overflow = dc.boot_vm("b", 1, kGiB);
  EXPECT_FALSE(overflow.ok);
  EXPECT_NE(overflow.error.find("free cores"), std::string::npos);
  EXPECT_EQ(dc.openstack().active_instances(), 1u);  // failed boot not recorded
}

TEST(DatacenterEdgeTest, PoolExhaustionAcrossManyGrants) {
  DatacenterConfig cfg;
  cfg.trays = 1;
  cfg.compute_bricks_per_tray = 1;
  cfg.memory_bricks_per_tray = 1;
  cfg.memory.capacity_bytes = 4 * kGiB;
  Datacenter dc{cfg};
  const auto vm = dc.boot_vm("greedy", 1, kGiB);
  ASSERT_TRUE(vm.ok);
  std::size_t grants = 0;
  for (int i = 0; i < 16; ++i) {
    dc.advance_to(Time::sec(10.0 * (i + 1)));
    if (!dc.scale_up(vm.vm, vm.compute, kGiB).ok) break;
    ++grants;
  }
  EXPECT_EQ(grants, 4u);  // exactly the pool size
  EXPECT_EQ(dc.fabric().attached_bytes(vm.compute), 4 * kGiB);
}

TEST(DatacenterEdgeTest, ScaleDownOfUnknownSegmentFailsWithoutDamage) {
  DatacenterConfig cfg;
  cfg.trays = 1;
  cfg.compute_bricks_per_tray = 1;
  cfg.memory_bricks_per_tray = 1;
  Datacenter dc{cfg};
  const auto vm = dc.boot_vm("steady", 1, kGiB);
  ASSERT_TRUE(vm.ok);
  const auto bogus = dc.scale_down(vm.vm, vm.compute, hw::SegmentId{4242});
  EXPECT_FALSE(bogus.ok);
  EXPECT_TRUE(dc.hypervisor_of(vm.compute).has_vm(vm.vm));
}

}  // namespace
}  // namespace dredbox::core
