#include "core/datacenter.hpp"

#include <gtest/gtest.h>

namespace dredbox::core {
namespace {

using sim::Time;
constexpr std::uint64_t kGiB = 1ull << 30;

DatacenterConfig small_config() {
  DatacenterConfig cfg;
  cfg.trays = 2;
  cfg.compute_bricks_per_tray = 1;
  cfg.memory_bricks_per_tray = 1;
  cfg.accelerator_bricks_per_tray = 1;
  return cfg;
}

TEST(DatacenterTest, ConstructionBuildsFullStack) {
  Datacenter dc{small_config()};
  EXPECT_EQ(dc.compute_bricks().size(), 2u);
  EXPECT_EQ(dc.memory_bricks().size(), 2u);
  EXPECT_EQ(dc.accelerator_bricks().size(), 2u);
  EXPECT_EQ(dc.rack().tray_count(), 2u);
  // Per-compute-brick software stack is wired.
  for (hw::BrickId cb : dc.compute_bricks()) {
    EXPECT_NO_THROW(dc.os_of(cb));
    EXPECT_NO_THROW(dc.hypervisor_of(cb));
    EXPECT_NO_THROW(dc.agent_of(cb));
    EXPECT_TRUE(dc.sdm().has_agent(cb));
  }
  // Every brick carries an MBO.
  for (hw::BrickId b : dc.rack().all_bricks()) {
    EXPECT_EQ(dc.mbo_of(b).channel_count(), 8u);
  }
}

TEST(DatacenterTest, NonComputeBrickStackLookupThrows) {
  Datacenter dc{small_config()};
  const hw::BrickId mem = dc.memory_bricks().front();
  EXPECT_THROW(dc.os_of(mem), std::out_of_range);
  EXPECT_THROW(dc.hypervisor_of(mem), std::out_of_range);
  EXPECT_THROW(dc.mbo_of(hw::BrickId{999}), std::out_of_range);
}

TEST(DatacenterTest, BootVmEndToEnd) {
  Datacenter dc{small_config()};
  const auto result = dc.boot_vm("guest", 2, 2 * kGiB);
  ASSERT_TRUE(result.ok) << result.error;
  auto& hv = dc.hypervisor_of(result.compute);
  EXPECT_TRUE(hv.has_vm(result.vm));
  EXPECT_EQ(dc.openstack().active_instances(), 1u);
}

TEST(DatacenterTest, ScaleUpEndToEndTouchesEveryLayer) {
  Datacenter dc{small_config()};
  const auto vm = dc.boot_vm("guest", 1, kGiB);
  ASSERT_TRUE(vm.ok);
  const auto up = dc.scale_up(vm.vm, vm.compute, 2 * kGiB);
  ASSERT_TRUE(up.ok) << up.error;
  // Hypervisor: guest grew.
  EXPECT_EQ(dc.hypervisor_of(vm.compute).vm(vm.vm).hotplugged_bytes(), 2 * kGiB);
  // OS: remote region online.
  EXPECT_EQ(dc.os_of(vm.compute).remote_bytes(), 2 * kGiB);
  // Fabric: attachment live. The SDM-C prefers the same-tray dMEMBRICK,
  // so the traffic rides the tray's electrical circuit and the optical
  // switch stays untouched.
  EXPECT_EQ(dc.fabric().attached_bytes(vm.compute), 2 * kGiB);
  const auto attachments = dc.fabric().attachments_of(vm.compute);
  ASSERT_EQ(attachments.size(), 1u);
  EXPECT_EQ(attachments[0].medium, memsys::LinkMedium::kElectrical);
  EXPECT_EQ(dc.optical_switch().ports_in_use(), 0u);
  // RMST entry installed.
  EXPECT_EQ(dc.rack().compute_brick(vm.compute).tgl().rmst().size(), 1u);
}

TEST(DatacenterTest, RemoteReadAfterScaleUp) {
  Datacenter dc{small_config()};
  const auto vm = dc.boot_vm("guest", 1, kGiB);
  ASSERT_TRUE(vm.ok);
  const auto up = dc.scale_up(vm.vm, vm.compute, kGiB);
  ASSERT_TRUE(up.ok);
  const auto attachments = dc.fabric().attachments_of(vm.compute);
  ASSERT_EQ(attachments.size(), 1u);
  const auto tx = dc.remote_read(vm.compute, attachments[0].compute_base + 64, 64);
  EXPECT_TRUE(tx.ok());
  EXPECT_LT(tx.round_trip(), Time::us(1));
}

TEST(DatacenterTest, ScaleDownRestoresState) {
  Datacenter dc{small_config()};
  const auto vm = dc.boot_vm("guest", 1, kGiB);
  ASSERT_TRUE(vm.ok);
  const auto up = dc.scale_up(vm.vm, vm.compute, 2 * kGiB);
  ASSERT_TRUE(up.ok);
  const auto down = dc.scale_down(vm.vm, vm.compute, up.segment);
  ASSERT_TRUE(down.ok) << down.error;
  EXPECT_EQ(dc.fabric().attached_bytes(vm.compute), 0u);
  EXPECT_EQ(dc.os_of(vm.compute).remote_bytes(), 0u);
  EXPECT_EQ(dc.optical_switch().ports_in_use(), 0u);
}

TEST(DatacenterTest, PacketNetworkReachesAllMemoryBricks) {
  Datacenter dc{small_config()};
  for (hw::BrickId cb : dc.compute_bricks()) {
    for (hw::BrickId mb : dc.memory_bricks()) {
      const auto pkt = dc.packet_network().remote_read(cb, mb, 0x0, 64, Time::zero());
      EXPECT_GT(pkt.latency(), Time::zero());
    }
  }
}

TEST(DatacenterTest, PowerDrawRespondsToActivity) {
  Datacenter dc{small_config()};
  const double idle = dc.power_draw_watts();
  const auto vm = dc.boot_vm("guest", 1, kGiB);
  ASSERT_TRUE(vm.ok);
  const auto up = dc.scale_up(vm.vm, vm.compute, kGiB);
  ASSERT_TRUE(up.ok);
  EXPECT_GT(dc.power_draw_watts(), idle);
}

TEST(DatacenterTest, AdvanceToMovesClockForward) {
  Datacenter dc{small_config()};
  dc.advance_to(Time::sec(5));
  EXPECT_EQ(dc.simulator().now(), Time::sec(5));
  dc.advance_to(Time::sec(2));  // no-op into the past
  EXPECT_EQ(dc.simulator().now(), Time::sec(5));
}

TEST(DatacenterTest, DescribeMentionsInventory) {
  Datacenter dc{small_config()};
  const std::string d = dc.describe();
  EXPECT_NE(d.find("2 dCOMPUBRICKs"), std::string::npos);
  EXPECT_NE(d.find("optical switch"), std::string::npos);
}

}  // namespace
}  // namespace dredbox::core
