// ScenarioBuilder / Scenario: the declarative front door that replaced
// hand-wired DatacenterConfig setup, plus the const accessor surface a
// read-only consumer (the sweep reducer) programs against.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/scenario.hpp"

namespace dredbox {
namespace {

TEST(ScenarioBuilder, BuildsTheDeclaredShape) {
  auto scenario = core::ScenarioBuilder{}
                      .racks(3, 2, 1, 1)
                      .compute_cores(8)
                      .compute_local_memory_bytes(8ull << 30)
                      .memory_pool_bytes(64ull << 30)
                      .switch_ports(96)
                      .seed(42)
                      .build();
  const core::Datacenter& dc = scenario.datacenter();
  EXPECT_EQ(dc.config().trays, 3u);
  EXPECT_EQ(dc.config().compute_bricks_per_tray, 2u);
  EXPECT_EQ(dc.config().memory_bricks_per_tray, 1u);
  EXPECT_EQ(dc.config().accelerator_bricks_per_tray, 1u);
  EXPECT_EQ(dc.config().compute.apu_cores, 8u);
  EXPECT_EQ(dc.config().memory.capacity_bytes, 64ull << 30);
  EXPECT_EQ(dc.config().optical_switch.ports, 96u);
  EXPECT_EQ(dc.config().seed, 42u);
  EXPECT_EQ(dc.compute_bricks().size(), 6u);
  EXPECT_EQ(dc.memory_bricks().size(), 3u);
}

TEST(ScenarioBuilder, ValidateSurfacesConfigErrors) {
  core::ScenarioBuilder builder;
  builder.switch_ports(1);
  const auto errors = builder.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("optical_switch.ports"), std::string::npos);
  EXPECT_THROW(builder.build(), std::invalid_argument);
}

TEST(ScenarioBuilder, ConfigureEscapeHatchReachesAnyField) {
  auto scenario = core::ScenarioBuilder{}
                      .configure([](core::DatacenterConfig& c) {
                        c.compute.rmst_entries = 5;
                        c.sdm.api_relay = sim::Time::us(10);
                      })
                      .build();
  EXPECT_EQ(scenario->config().compute.rmst_entries, 5u);
  EXPECT_EQ(scenario->config().sdm.api_relay, sim::Time::us(10));
}

TEST(ScenarioBuilder, FaultPlanSpecIsScheduledAtBuild) {
  auto scenario =
      core::ScenarioBuilder{}.racks(2, 2, 2).fault_plan("link-flap@1ms+2ms").build();
  ASSERT_TRUE(scenario.fault_plan().has_value());
  EXPECT_GE(scenario.faults_scheduled(), 1u);
  EXPECT_EQ(scenario.fault_horizon(), sim::Time::ms(3));

  scenario.run_fault_plan();
  EXPECT_GT(scenario->simulator().now(), sim::Time::ms(3));
  EXPECT_GE(scenario->faults().injected(), 1u);
}

TEST(ScenarioBuilder, BadFaultSpecFailsTheBuild) {
  core::ScenarioBuilder builder;
  builder.fault_plan("not-a-fault@@@");
  EXPECT_THROW(builder.build(), std::invalid_argument);
}

TEST(ScenarioBuilder, NoFaultPlanMeansNoneScheduled) {
  auto scenario = core::ScenarioBuilder{}.build();
  EXPECT_FALSE(scenario.fault_plan().has_value());
  EXPECT_EQ(scenario.faults_scheduled(), 0u);
  EXPECT_EQ(scenario.fault_horizon(), sim::Time::zero());
  scenario.run_fault_plan();  // no-op
  EXPECT_EQ(scenario->simulator().now(), sim::Time::zero());
}

TEST(ScenarioBuilder, TelemetryAndTracingFlags) {
  auto off = core::ScenarioBuilder{}.build();
  EXPECT_FALSE(off->metrics().enabled());
  EXPECT_FALSE(off->tracer().enabled());

  auto metered = core::ScenarioBuilder{}.telemetry().build();
  EXPECT_TRUE(metered->metrics().enabled());
  EXPECT_TRUE(metered->tracer().enabled());

  auto traced = core::ScenarioBuilder{}.tracing().build();
  EXPECT_FALSE(traced->metrics().enabled());
  EXPECT_TRUE(traced->tracer().enabled());
}

TEST(ScenarioBuilder, ReusedBuilderYieldsIndependentRacks) {
  core::ScenarioBuilder builder;
  builder.racks(1, 1, 1).seed(7);
  auto first = builder.build();
  auto second = builder.build();
  EXPECT_NE(&first.datacenter(), &second.datacenter());

  // Driving one rack must not advance the other.
  const auto vm = first->boot_vm("only-here", 1, 1ull << 30);
  ASSERT_TRUE(vm.ok);
  first->advance_to(vm.completed_at);
  EXPECT_GT(first->simulator().now(), sim::Time::zero());
  EXPECT_EQ(second->simulator().now(), sim::Time::zero());
  EXPECT_EQ(second->openstack().instances().size(), 0u);
}

TEST(ScenarioBuilder, BaseConfigConstructorStartsFromIt) {
  core::DatacenterConfig base;
  base.trays = 4;
  base.seed = 99;
  auto scenario = core::ScenarioBuilder{base}.compute_cores(2).build();
  EXPECT_EQ(scenario->config().trays, 4u);
  EXPECT_EQ(scenario->config().seed, 99u);
  EXPECT_EQ(scenario->config().compute.apu_cores, 2u);
}

TEST(ConstAccessors, ReadOnlyConsumersCanIntrospectAFinishedRack) {
  auto scenario = core::ScenarioBuilder{}.racks(1, 1, 1).telemetry().build();
  core::Datacenter& dc = scenario.datacenter();
  const auto vm = dc.boot_vm("ro", 1, 1ull << 30);
  ASSERT_TRUE(vm.ok);
  const auto up = dc.scale_up(vm.vm, vm.compute, 1ull << 30);
  ASSERT_TRUE(up.ok);
  dc.advance_to(up.completed_at);

  // Everything below goes through const overloads only.
  const core::Datacenter& ro = dc;
  EXPECT_GT(ro.simulator().now(), sim::Time::zero());
  EXPECT_EQ(ro.rack().bricks_of_kind(hw::BrickKind::kCompute).size(), 1u);
  EXPECT_GE(ro.optical_switch().port_count(), 2u);
  EXPECT_GE(ro.fabric().attachment_count(), 1u);
  EXPECT_FALSE(ro.fabric().attachments_of(vm.compute).empty());
  EXPECT_EQ(ro.sdm().inventory().size(), 2u);
  EXPECT_EQ(ro.openstack().instances().size(), 1u);
  EXPECT_EQ(ro.faults().injected(), 0u);
  EXPECT_TRUE(ro.metrics().enabled());
  EXPECT_GT(ro.power_draw_watts(), 0.0);
  (void)ro.circuits();
  (void)ro.packet_network();
  (void)ro.migration();
  (void)ro.oom_guard();
  (void)ro.accelerators();
  (void)ro.power_manager();
  (void)ro.telemetry();
  (void)ro.tracer();
  (void)ro.os_of(vm.compute);
  (void)ro.hypervisor_of(vm.compute);
  (void)ro.agent_of(vm.compute);
  (void)ro.mbo_of(vm.compute);
}

}  // namespace
}  // namespace dredbox
