#include "core/app_performance.hpp"

#include <gtest/gtest.h>

namespace dredbox::core {
namespace {

using sim::Time;

AppProfile profile() {
  AppProfile p;
  p.name = "test";
  p.miss_intensity = 0.5;
  p.accesses_per_sec = 1e7;
  p.mlp = 4.0;
  p.local_latency = Time::ns(100);
  return p;
}

TEST(SlowdownModelTest, NoRemoteMemoryMeansNoSlowdown) {
  DisaggregationSlowdownModel model;
  EXPECT_DOUBLE_EQ(model.slowdown(profile(), 0.0, Time::us(10)), 1.0);
}

TEST(SlowdownModelTest, RemoteLatencyAtLocalSpeedIsFree) {
  DisaggregationSlowdownModel model;
  EXPECT_DOUBLE_EQ(model.slowdown(profile(), 1.0, Time::ns(100)), 1.0);
  // Faster-than-local never helps below 1.0 (no negative stalls).
  EXPECT_DOUBLE_EQ(model.slowdown(profile(), 1.0, Time::ns(50)), 1.0);
}

TEST(SlowdownModelTest, KnownValue) {
  DisaggregationSlowdownModel model;
  // f = 0.5*0.5 = 0.25; extra = 500-100 = 400 ns; stall = 1e7*0.25*400e-9/4 = 0.25.
  EXPECT_NEAR(model.slowdown(profile(), 0.5, Time::ns(500)), 1.25, 1e-12);
}

TEST(SlowdownModelTest, MonotonicInLatencyAndFraction) {
  DisaggregationSlowdownModel model;
  const auto p = profile();
  double prev = 0.0;
  for (double lat_ns = 200; lat_ns <= 5000; lat_ns += 400) {
    const double s = model.slowdown(p, 0.5, Time::ns(lat_ns));
    EXPECT_GT(s, prev);
    prev = s;
  }
  prev = 0.0;
  for (double f = 0.1; f <= 1.0; f += 0.1) {
    const double s = model.slowdown(p, f, Time::us(1));
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(SlowdownModelTest, MlpHidesLatency) {
  DisaggregationSlowdownModel model;
  auto serial = profile();
  serial.mlp = 1.0;
  auto parallel = profile();
  parallel.mlp = 8.0;
  EXPECT_GT(model.slowdown(serial, 0.5, Time::us(1)),
            model.slowdown(parallel, 0.5, Time::us(1)));
}

TEST(SlowdownModelTest, RemoteAccessFractionClamped) {
  DisaggregationSlowdownModel model;
  auto hot = profile();
  hot.miss_intensity = 3.0;
  EXPECT_DOUBLE_EQ(model.remote_access_fraction(hot, 0.9), 1.0);
  EXPECT_THROW(model.remote_access_fraction(hot, 1.5), std::invalid_argument);
}

TEST(SlowdownModelTest, LatencyBudgetInvertsSlowdown) {
  DisaggregationSlowdownModel model;
  const auto p = profile();
  const Time budget = model.latency_budget(p, 0.5, 1.25);
  EXPECT_NEAR(model.slowdown(p, 0.5, budget), 1.25, 1e-9);
  EXPECT_THROW(model.latency_budget(p, 0.5, 1.0), std::invalid_argument);
}

TEST(SlowdownModelTest, BudgetInfiniteWhenNothingRemote) {
  DisaggregationSlowdownModel model;
  EXPECT_TRUE(model.latency_budget(profile(), 0.0, 1.1).is_infinite());
}

TEST(SlowdownModelTest, CircuitPathKeepsPilotsNearNative) {
  // The design claim: with the sub-microsecond circuit-switched path, the
  // paper's pilot applications (video analytics, NFV key server) stay
  // within ~10% of native with half their working set disaggregated, and
  // even memory-intensive analytics stay within ~35%. Pointer-chasing
  // KV stores remain the known bad fit for any disaggregation.
  DisaggregationSlowdownModel model;
  const Time circuit_rt = Time::ns(486);  // measured in abl_circuit_vs_packet
  for (const auto& app : DisaggregationSlowdownModel::reference_profiles()) {
    if (app.name.find("KV store") != std::string::npos) continue;  // the known outlier
    EXPECT_LT(model.slowdown(app, 0.5, circuit_rt), 1.35) << app.name;
    if (app.name.find("video") != std::string::npos ||
        app.name.find("NFV") != std::string::npos) {
      EXPECT_LT(model.slowdown(app, 0.5, circuit_rt), 1.10) << app.name;
    }
  }
}

TEST(SlowdownModelTest, ValidationRejectsDegenerateProfiles) {
  DisaggregationSlowdownModel model;
  auto bad = profile();
  bad.mlp = 0.0;
  EXPECT_THROW(model.slowdown(bad, 0.5, Time::us(1)), std::invalid_argument);
}

}  // namespace
}  // namespace dredbox::core
