#include "core/cluster.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "sim/contract.hpp"
#include "sim/time.hpp"

namespace dredbox::core {
namespace {

bool mentions(const std::vector<std::string>& errors, const std::string& field) {
  return std::any_of(errors.begin(), errors.end(), [&](const std::string& e) {
    return e.find(field) != std::string::npos;
  });
}

DatacenterConfig cluster_config(std::size_t racks) {
  DatacenterConfig config;
  config.racks.assign(racks, RackSpec{1, 2, 2, 0});
  return config;
}

TEST(ClusterConfigTest, ValidConfigHasNoErrors) {
  EXPECT_TRUE(cluster_config(2).validate().empty());
}

TEST(ClusterConfigTest, ErrorsNameDottedFields) {
  DatacenterConfig config = cluster_config(2);
  config.racks[0].trays = 0;
  config.racks[1].memory_bricks_per_tray = 0;
  config.spine.propagation = sim::Time::zero();
  config.spine.cross_share = 1.5;
  config.spine.faults.push_back(SpineFaultSpec{7, sim::Time::ms(1), sim::Time::ms(1)});
  config.partitions = 0;
  const auto errors = config.validate();
  EXPECT_TRUE(mentions(errors, "racks[0].trays"));
  EXPECT_TRUE(mentions(errors, "racks[1].memory_bricks_per_tray"));
  EXPECT_TRUE(mentions(errors, "spine.propagation"));
  EXPECT_TRUE(mentions(errors, "spine.cross_share"));
  EXPECT_TRUE(mentions(errors, "spine.faults[0].rack"));
  EXPECT_TRUE(mentions(errors, "partitions"));
}

TEST(ClusterConfigTest, SpineRadixMustCoverTheRacks) {
  DatacenterConfig config = cluster_config(4);
  config.spine.ports = 2;
  EXPECT_TRUE(mentions(config.validate(), "spine.ports"));
}

TEST(ClusterConfigTest, MultiRackFieldsLeaveSingleRackDigestAlone) {
  // The new spine/partitions knobs are inert while `racks` is empty: a
  // pre-existing single-rack config folds to the same digest it always
  // did, so every pinned example digest survives the API extension.
  const DatacenterConfig base;
  DatacenterConfig tweaked;
  tweaked.spine.propagation = sim::Time::us(3);
  tweaked.spine.cross_share = 0.5;
  tweaked.partitions = 8;
  EXPECT_EQ(base.digest(), tweaked.digest());

  DatacenterConfig cluster = cluster_config(2);
  DatacenterConfig cluster_tweaked = cluster_config(2);
  cluster_tweaked.spine.propagation = sim::Time::us(3);
  EXPECT_NE(cluster.digest(), cluster_tweaked.digest());
}

TEST(ClusterConfigTest, ConstructorRejectsInvalidConfigs) {
  DatacenterConfig config = cluster_config(2);
  config.spine.propagation = sim::Time::zero();
  EXPECT_THROW(Cluster{config}, std::invalid_argument);
}

TEST(ClusterBuilderTest, BuilderAssemblesAMultiRackScenario) {
  Scenario scenario = ScenarioBuilder{}
                          .add_racks(3, RackSpec{1, 2, 2, 0})
                          .cross_rack_share(0.25)
                          .partitions(2)
                          .spine_fault(1, sim::Time::ms(1), sim::Time::ms(2))
                          .build();
  ASSERT_TRUE(scenario.is_cluster());
  Cluster& cluster = scenario.cluster();
  EXPECT_EQ(cluster.size(), 3u);
  EXPECT_EQ(cluster.config().partitions, 2u);
  EXPECT_DOUBLE_EQ(cluster.config().spine.cross_share, 0.25);
  ASSERT_EQ(cluster.config().spine.faults.size(), 1u);
  EXPECT_EQ(cluster.config().spine.faults[0].rack, 1u);
  EXPECT_GT(cluster.power_draw_watts(), 0.0);
  EXPECT_FALSE(cluster.describe().empty());
}

TEST(ClusterBuilderTest, SingleRackScenariosStaySingleRack) {
  Scenario scenario = ScenarioBuilder{}.build();
  EXPECT_FALSE(scenario.is_cluster());
  // datacenter() is the single-rack accessor and still works untouched;
  // wiring leaves the clock parked at zero exactly as it always has.
  EXPECT_EQ(scenario.datacenter().simulator().now(), sim::Time::zero());
  EXPECT_GT(scenario.datacenter().power_draw_watts(), 0.0);
}

TEST(ClusterBuilderTest, SpineSetterPreservesDeclaredFaults) {
  ScenarioBuilder builder;
  builder.add_racks(2, RackSpec{1, 2, 2, 0}).spine_fault(0, sim::Time::ms(1), sim::Time::ms(1));
  SpineSpec spec;
  spec.propagation = sim::Time::us(1);
  builder.spine(spec);
  Scenario scenario = builder.build();
  EXPECT_EQ(scenario.cluster().config().spine.propagation, sim::Time::us(1));
  EXPECT_EQ(scenario.cluster().config().spine.faults.size(), 1u);
}

/// Builds a 2-rack cluster and aligns both racks to a common t0 the way
/// the cluster workload engine does, so raw port traffic can flow.
struct TwoRacks {
  TwoRacks() : scenario{make()} , cluster{scenario.cluster()} {
    sim::Time t0 = sim::Time::zero();
    for (std::size_t r = 0; r < cluster.size(); ++r) {
      t0 = std::max(t0, cluster.rack(r).simulator().now());
    }
    for (std::size_t r = 0; r < cluster.size(); ++r) cluster.rack(r).advance_to(t0);
    start = t0;
  }
  static Scenario make() {
    return ScenarioBuilder{}.add_racks(2, RackSpec{1, 2, 2, 0}).build();
  }
  Scenario scenario;
  Cluster& cluster;
  sim::Time start;
};

TEST(ClusterTest, CrossReadRoundTripCrossesTheSpineTwice) {
  TwoRacks rig;
  CrossRackPort& port = rig.cluster.port(0);
  ASSERT_EQ(port.peer_count(), 1u);
  EXPECT_EQ(port.window_bytes(0), rig.cluster.config().spine.gateway_bytes);
  EXPECT_EQ(rig.cluster.gateway_window_bytes(1), rig.cluster.config().spine.gateway_bytes);

  std::vector<CrossCompletion> done;
  port.set_handler([&](const CrossCompletion& c) { done.push_back(c); });
  port.issue(0, 4096, 64, /*write=*/false, /*token=*/7, /*closed_loop=*/false);
  port.issue(0, 8192, 64, /*write=*/false, /*token=*/8, /*closed_loop=*/false);
  rig.cluster.advance_all(rig.start + sim::Time::ms(1), 2);

  ASSERT_EQ(done.size(), 2u);
  EXPECT_TRUE(done[0].ok);
  EXPECT_EQ(done[0].token, 7u);
  EXPECT_FALSE(done[0].write);
  // The completion reports the target-rack physical address: two issues
  // 4 KiB apart in the window land 4 KiB apart on the target's fabric.
  EXPECT_EQ(done[1].address - done[0].address, 4096u);
  // Request + reply each traverse the spine: the round trip can never
  // beat two propagation delays.
  EXPECT_GE(done[0].round_trip(), rig.cluster.config().spine.propagation * 2);

  const RackLinkStats src = rig.cluster.link_stats(0);
  const RackLinkStats dst = rig.cluster.link_stats(1);
  EXPECT_EQ(src.tx_messages, 2u);  // the requests
  EXPECT_EQ(dst.tx_messages, 2u);  // the replies
  EXPECT_EQ(dst.rx_messages, 2u);
  EXPECT_EQ(src.fail_fast, 0u);
  EXPECT_NE(rig.cluster.served_digest(1), 0u);
}

TEST(ClusterTest, DownLinkFailsFastAtTheSender) {
  // Arm a fault that downs rack 0's uplink immediately for 1 ms.
  Scenario scenario = ScenarioBuilder{}
                          .add_racks(2, RackSpec{1, 2, 2, 0})
                          .spine_fault(0, sim::Time::zero(), sim::Time::ms(1))
                          .build();
  Cluster& cluster = scenario.cluster();
  sim::Time t0 = sim::Time::zero();
  for (std::size_t r = 0; r < cluster.size(); ++r) {
    t0 = std::max(t0, cluster.rack(r).simulator().now());
  }
  for (std::size_t r = 0; r < cluster.size(); ++r) cluster.rack(r).advance_to(t0);
  cluster.arm_spine_faults(t0);
  cluster.advance_all(t0 + sim::Time::us(10), 1);  // the down event fires

  std::vector<CrossCompletion> done;
  cluster.port(0).set_handler([&](const CrossCompletion& c) { done.push_back(c); });
  cluster.port(0).issue(0, 0, 64, /*write=*/true, /*token=*/1, /*closed_loop=*/false);
  cluster.advance_all(t0 + sim::Time::us(20), 1);

  ASSERT_EQ(done.size(), 1u);
  EXPECT_FALSE(done[0].ok);
  EXPECT_EQ(cluster.link_stats(0).fail_fast, 1u);
  EXPECT_EQ(cluster.link_stats(1).rx_messages, 0u);

  // After the restore, the same port carries traffic again.
  cluster.advance_all(t0 + sim::Time::ms(2), 1);
  cluster.port(0).issue(0, 0, 64, /*write=*/true, /*token=*/2, /*closed_loop=*/false);
  cluster.advance_all(t0 + sim::Time::ms(3), 1);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_TRUE(done[1].ok);
}

TEST(ClusterTest, SpineFaultsArmExactlyOnce) {
  Scenario scenario = ScenarioBuilder{}
                          .add_racks(2, RackSpec{1, 2, 2, 0})
                          .spine_fault(0, sim::Time::ms(1), sim::Time::ms(1))
                          .build();
  Cluster& cluster = scenario.cluster();
  sim::Time t0 = sim::Time::zero();
  for (std::size_t r = 0; r < cluster.size(); ++r) {
    t0 = std::max(t0, cluster.rack(r).simulator().now());
  }
  EXPECT_FALSE(cluster.spine_faults_armed());
  cluster.arm_spine_faults(t0);
  EXPECT_TRUE(cluster.spine_faults_armed());
  EXPECT_THROW(cluster.arm_spine_faults(t0), std::logic_error);
}

TEST(ClusterTest, GatewayWindowRejectsOutOfRangeOffsets) {
  TwoRacks rig;
  const std::uint64_t window = rig.cluster.gateway_window_bytes(1);
  rig.cluster.port(0).set_handler([](const CrossCompletion&) {});
  EXPECT_THROW(rig.cluster.port(0).issue(0, window, 64, false, 0, false),
               sim::ContractViolation);
}

}  // namespace
}  // namespace dredbox::core
