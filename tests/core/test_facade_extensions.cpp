#include <gtest/gtest.h>

#include "core/datacenter.hpp"

namespace dredbox::core {
namespace {

using sim::Time;
constexpr std::uint64_t kGiB = 1ull << 30;

DatacenterConfig facade_config() {
  DatacenterConfig cfg;
  cfg.trays = 2;
  cfg.compute_bricks_per_tray = 1;
  cfg.memory_bricks_per_tray = 2;
  cfg.accelerator_bricks_per_tray = 1;
  cfg.compute.local_memory_bytes = 8 * kGiB;
  return cfg;
}

TEST(FacadeExtensionsTest, MigrateVmThroughFacade) {
  Datacenter dc{facade_config()};
  const auto vm = dc.boot_vm("movable", 1, kGiB);
  ASSERT_TRUE(vm.ok);
  const auto up = dc.scale_up(vm.vm, vm.compute, 2 * kGiB);
  ASSERT_TRUE(up.ok);
  dc.advance_to(Time::sec(30));

  const auto computes = dc.compute_bricks();
  const hw::BrickId to = computes[0] == vm.compute ? computes[1] : computes[0];
  const auto result = dc.migrate_vm(vm.vm, vm.compute, to);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(dc.hypervisor_of(to).has_vm(result.new_vm));
  EXPECT_EQ(dc.fabric().attached_bytes(to), 2 * kGiB);
  EXPECT_EQ(result.repointed_bytes, 2 * kGiB);
}

TEST(FacadeExtensionsTest, OomGuardThroughFacade) {
  Datacenter dc{facade_config()};
  const auto vm = dc.boot_vm("guarded", 1, kGiB);
  ASSERT_TRUE(vm.ok);
  dc.oom_guard().watch(vm.vm, vm.compute);
  const auto action = dc.oom_guard().report_usage(vm.vm, kGiB, Time::sec(10));
  ASSERT_TRUE(action.has_value());
  EXPECT_TRUE(action->ok);
  EXPECT_EQ(dc.hypervisor_of(vm.compute).vm(vm.vm).usable_bytes(), 2 * kGiB);
}

TEST(FacadeExtensionsTest, AcceleratorsThroughFacade) {
  Datacenter dc{facade_config()};
  EXPECT_EQ(dc.accelerators().free_count(), 2u);
  hw::Bitstream bs;
  bs.name = "fft";
  bs.size_bytes = 8ull << 20;
  bs.kernel_ops_per_sec = 1e9;
  const auto d = dc.accelerators().deploy(dc.compute_bricks().front(), bs, Time::zero());
  ASSERT_TRUE(d.has_value());
  const auto job = dc.accelerators().offload(d->accel, 1000, 1 << 20, d->ready_at);
  EXPECT_TRUE(job.ok);
}

TEST(FacadeExtensionsTest, PowerManagementOptIn) {
  DatacenterConfig cfg = facade_config();
  cfg.enable_power_management = true;
  cfg.power_policy.idle_timeout = Time::sec(10);
  Datacenter dc{cfg};

  const double before = dc.power_draw_watts();
  // Sweep: everything idle gets powered off (no VMs booted yet).
  const std::size_t swept = dc.power_manager().tick(Time::sec(60));
  EXPECT_GT(swept, 0u);
  EXPECT_LT(dc.power_draw_watts(), before);

  // Booting now must wake a compute brick and charge it on the path.
  const auto vm = dc.boot_vm("waker", 1, kGiB);
  ASSERT_TRUE(vm.ok) << vm.error;
  EXPECT_EQ(dc.rack().brick(vm.compute).power_state(), hw::PowerState::kActive);
}

TEST(FacadeExtensionsTest, TracerCapturesOperationTimeline) {
  Datacenter dc{facade_config()};
  dc.tracer().enable();
  const auto vm = dc.boot_vm("traced", 1, kGiB);
  ASSERT_TRUE(vm.ok);
  const auto up = dc.scale_up(vm.vm, vm.compute, kGiB);
  ASSERT_TRUE(up.ok);
  dc.scale_down(vm.vm, vm.compute, up.segment);

  // Lower bounds: the telemetry layer adds spans alongside the facade's
  // own instants, so the timeline only ever gets denser.
  EXPECT_GE(dc.tracer().size(), 3u);
  EXPECT_GE(dc.tracer().filter(sim::TraceCategory::kOrchestration).size(), 1u);
  EXPECT_GE(dc.tracer().filter(sim::TraceCategory::kFabric).size(), 2u);
  const std::string timeline = dc.tracer().to_string();
  EXPECT_NE(timeline.find("booted 'traced'"), std::string::npos);
  EXPECT_NE(timeline.find("scale-up"), std::string::npos);
  EXPECT_NE(timeline.find("scale-down"), std::string::npos);
}

TEST(FacadeExtensionsTest, TracerOffByDefault) {
  Datacenter dc{facade_config()};
  const auto vm = dc.boot_vm("silent", 1, kGiB);
  ASSERT_TRUE(vm.ok);
  EXPECT_EQ(dc.tracer().size(), 0u);
}

TEST(FacadeExtensionsTest, PacketFallbackThroughScaleUp) {
  DatacenterConfig cfg = facade_config();
  cfg.optical_switch.ports = 2;  // room for exactly one optical circuit
  // Shrink the per-brick lane counts to the switch radix so the shape
  // stays valid under DatacenterConfig::validate().
  cfg.compute.transceiver_ports = 2;
  cfg.memory.transceiver_ports = 2;
  cfg.accelerator.transceiver_ports = 2;
  cfg.mbo.channels = 2;
  // Separate compute/memory trays so nothing can go electrical.
  cfg.compute_bricks_per_tray = 1;
  cfg.memory_bricks_per_tray = 2;
  Datacenter dc{cfg};

  const auto vm = dc.boot_vm("fallback", 1, kGiB);
  ASSERT_TRUE(vm.ok);

  // Note: with 1 compute + 2 memory per tray, the first scale-up rides
  // the intra-tray electrical circuit and the optical switch is never
  // used. Exhaust it manually so the cross-tray path is forced to fall
  // back to the packet substrate.
  dc.optical_switch().connect(0, 1);

  // Fill the two same-tray membricks so selection must go cross-tray.
  const hw::TrayId home = dc.rack().brick(vm.compute).tray();
  for (hw::BrickId mb : dc.memory_bricks()) {
    if (dc.rack().brick(mb).tray() == home) {
      auto& brick = dc.rack().memory_brick(mb);
      ASSERT_TRUE(brick.allocate(brick.largest_free_extent(), hw::BrickId{}));
    }
  }

  orch::ScaleUpRequest req;
  req.vm = vm.vm;
  req.compute = vm.compute;
  req.bytes = kGiB;
  req.posted_at = Time::sec(1);
  req.allow_packet_fallback = true;
  const auto result = dc.sdm().scale_up(req);
  ASSERT_TRUE(result.ok) << result.error;
  const auto attachments = dc.fabric().attachments_of(vm.compute);
  ASSERT_EQ(attachments.size(), 1u);
  EXPECT_EQ(attachments[0].medium, memsys::LinkMedium::kPacket);

  // The packet-backed memory is usable.
  const auto tx = dc.remote_read(vm.compute, attachments[0].compute_base, 64);
  EXPECT_TRUE(tx.ok());
  EXPECT_TRUE(tx.breakdown.has("MAC/PHY (dCOMPUBRICK)"));
}

}  // namespace
}  // namespace dredbox::core
