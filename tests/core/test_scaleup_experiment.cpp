#include "core/scaleup_experiment.hpp"

#include <gtest/gtest.h>

namespace dredbox::core {
namespace {

Fig10Config quick_config() {
  Fig10Config cfg;
  cfg.concurrency_levels = {8, 4};
  cfg.repetitions = 2;
  cfg.bytes_per_request = 1ull << 30;
  return cfg;
}

TEST(ScaleUpExperimentTest, RunsAllLevels) {
  ScaleUpAgilityExperiment exp{quick_config()};
  const auto rows = exp.run();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].concurrency, 8u);
  EXPECT_EQ(rows[1].concurrency, 4u);
}

TEST(ScaleUpExperimentTest, ScaleUpOrdersOfMagnitudeFasterThanScaleOut) {
  // The Fig. 10 headline: memory expansion agility is superior in the
  // disaggregated approach even at the most aggressive concurrency.
  ScaleUpAgilityExperiment exp{quick_config()};
  for (const auto& row : exp.run()) {
    EXPECT_LT(row.scale_up_avg_s, row.scale_out_avg_s)
        << "at concurrency " << row.concurrency;
    EXPECT_GT(row.speedup(), 10.0);
  }
}

TEST(ScaleUpExperimentTest, DelayGrowsWithConcurrency) {
  Fig10Config cfg = quick_config();
  cfg.concurrency_levels = {32, 8};
  ScaleUpAgilityExperiment exp{cfg};
  const auto rows = exp.run();
  ASSERT_EQ(rows.size(), 2u);
  // More concurrent requesters -> more queueing at the SDM-C and the
  // per-brick hotplug lock.
  EXPECT_GT(rows[0].scale_up_avg_s, rows[1].scale_up_avg_s);
}

TEST(ScaleUpExperimentTest, ScaleUpStaysSubTenSeconds) {
  ScaleUpAgilityExperiment exp{quick_config()};
  for (const auto& row : exp.run()) {
    EXPECT_LT(row.scale_up_avg_s, 10.0);
    EXPECT_GT(row.scale_up_avg_s, 0.0);
    EXPECT_GE(row.scale_up_p95_s, row.scale_up_avg_s * 0.5);
  }
}

TEST(ScaleUpExperimentTest, ScaleDownMeasured) {
  ScaleUpAgilityExperiment exp{quick_config()};
  for (const auto& row : exp.run()) {
    EXPECT_GT(row.scale_down_avg_s, 0.0);
    EXPECT_LT(row.scale_down_avg_s, 10.0);
  }
}

TEST(ScaleUpExperimentTest, DeterministicForFixedSeed) {
  ScaleUpAgilityExperiment a{quick_config()};
  ScaleUpAgilityExperiment b{quick_config()};
  const auto ra = a.run_level(4);
  const auto rb = b.run_level(4);
  EXPECT_DOUBLE_EQ(ra.scale_up_avg_s, rb.scale_up_avg_s);
  EXPECT_DOUBLE_EQ(ra.scale_out_avg_s, rb.scale_out_avg_s);
}

TEST(ScaleUpExperimentTest, ConfigValidation) {
  Fig10Config cfg = quick_config();
  cfg.concurrency_levels = {};
  EXPECT_THROW(ScaleUpAgilityExperiment{cfg}, std::invalid_argument);
  cfg = quick_config();
  cfg.repetitions = 0;
  EXPECT_THROW(ScaleUpAgilityExperiment{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace dredbox::core
