// Compile-level check of the umbrella header: one include must surface
// the whole public API, and the version constants must be sane.

#include "core/dredbox.hpp"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaHeaderTest, VersionConstants) {
  EXPECT_EQ(dredbox::kVersionMajor, 1);
  EXPECT_GE(dredbox::kVersionMinor, 0);
  EXPECT_STREQ(dredbox::kVersionString, "1.0.0");
}

TEST(UmbrellaHeaderTest, EveryLayerIsReachable) {
  // Touch one symbol from each layer; failure here is a missing include.
  dredbox::sim::Time t = dredbox::sim::Time::ns(1);
  dredbox::hw::Rack rack;
  dredbox::optics::LinkBudget lb{-3.7};
  dredbox::net::PacketPathLatencies packet{};
  dredbox::memsys::CircuitPathLatencies circuit{};
  dredbox::os::HotplugTiming hotplug{};
  dredbox::hyp::HypervisorTiming hyp{};
  dredbox::orch::SdmTiming sdm{};
  dredbox::tco::TcoConfig tco{};
  dredbox::core::DatacenterConfig dc{};

  EXPECT_GT(t.ticks(), 0);
  EXPECT_EQ(rack.brick_count(), 0u);
  EXPECT_DOUBLE_EQ(lb.launch_dbm(), -3.7);
  EXPECT_GT(packet.line_rate_gbps, 0.0);
  EXPECT_GT(circuit.line_rate_gbps, 0.0);
  EXPECT_GT(hotplug.per_gib_cost, dredbox::sim::Time::zero());
  EXPECT_GT(hyp.guest_online_per_gib, dredbox::sim::Time::zero());
  EXPECT_GT(sdm.inspect_and_select, dredbox::sim::Time::zero());
  EXPECT_GT(tco.servers, 0u);
  EXPECT_GT(dc.trays, 0u);
}

}  // namespace
