// SweepRunner: grid expansion, validation, and the load-bearing guarantee
// that a parallel sweep is bit-identical to a sequential one (per-cell
// determinism digests), plus the "dredbox-sweep/v1" JSON shape.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/sweep.hpp"
#include "sim/digest.hpp"
#include "workload/sweep_body.hpp"

namespace dredbox {
namespace {

constexpr std::uint64_t kGiB = 1ull << 30;

bool mentions(const std::vector<std::string>& errors, const std::string& needle) {
  return std::any_of(errors.begin(), errors.end(), [&](const std::string& e) {
    return e.find(needle) != std::string::npos;
  });
}

/// A cheap deterministic body: fingerprints the cell parameters and the
/// rack's seed-dependent boot behaviour without a full workload.
core::CellStats cheap_body(const core::SweepCell& cell, core::Datacenter& dc) {
  const auto vm = dc.boot_vm("probe", 1, 1ull * kGiB);
  core::CellStats stats;
  sim::Digest digest;
  digest.update("cell").update(cell.seed).update(cell.trays);
  digest.update(static_cast<std::uint64_t>(cell.remote_ratio * 1e6));
  digest.update(cell.fault_plan);
  digest.update(vm.ok ? "ok" : "fail");
  digest.update(static_cast<std::uint64_t>(vm.completed_at.ticks()));
  stats.digest = digest.value();
  stats.offered = 1;
  stats.completed = vm.ok ? 1 : 0;
  return stats;
}

/// The real multi-tenant body, shrunk to a few hundred microseconds of
/// simulated time per cell so the determinism tests stay fast.
core::SweepRunner::CellBody tiny_workload_body() {
  workload::SweepWorkload shape;
  shape.duration = sim::Time::us(400);
  shape.drain_grace = sim::Time::us(200);
  shape.footprint_bytes = 2ull * kGiB;
  workload::TenantSpec spec;
  spec.name = "t";
  spec.vms = 1;
  spec.rate_hz = 50000.0;
  spec.mix = {0.6, 0.3, 0.1};
  shape.tenants.push_back(spec);
  return workload::make_sweep_body(shape);
}

core::ScenarioBuilder roomy_base() {
  core::ScenarioBuilder base;
  base.compute_local_memory_bytes(8ull * kGiB).memory_pool_bytes(32ull * kGiB);
  return base;
}

// --- grid ---

TEST(SweepGrid, ExpandsRowMajorWithStableIndices) {
  core::SweepGrid grid;
  grid.seeds = {1, 2};
  grid.rack_trays = {1, 2};
  grid.remote_ratios = {0.25};
  grid.fault_plans = {""};
  ASSERT_EQ(grid.size(), 4u);

  const auto cells = grid.expand();
  ASSERT_EQ(cells.size(), 4u);
  for (std::size_t i = 0; i < cells.size(); ++i) EXPECT_EQ(cells[i].index, i);
  // Seeds outermost: the first two cells share seed 1.
  EXPECT_EQ(cells[0].seed, 1u);
  EXPECT_EQ(cells[1].seed, 1u);
  EXPECT_EQ(cells[2].seed, 2u);
  EXPECT_EQ(cells[0].trays, 1u);
  EXPECT_EQ(cells[1].trays, 2u);
}

TEST(SweepGrid, ValidationNamesTheOffendingAxis) {
  core::SweepGrid grid;
  grid.seeds = {};
  EXPECT_TRUE(mentions(grid.errors(), "seeds"));

  core::SweepGrid trays;
  trays.rack_trays = {0};
  EXPECT_TRUE(mentions(trays.errors(), "rack_trays"));

  core::SweepGrid ratios;
  ratios.remote_ratios = {1.5};
  EXPECT_TRUE(mentions(ratios.errors(), "remote_ratios"));

  core::SweepGrid faults;
  faults.fault_plans = {"bogus@@@"};
  EXPECT_TRUE(mentions(faults.errors(), "fault_plans"));

  EXPECT_TRUE(core::SweepGrid{}.errors().empty());
}

TEST(SweepRunner, CtorRejectsABadGrid) {
  core::SweepGrid grid;
  grid.remote_ratios = {-0.1};
  EXPECT_THROW((core::SweepRunner{grid, cheap_body}), std::invalid_argument);
}

// --- determinism ---

TEST(SweepRunner, ParallelMatchesSequentialPerCell) {
  core::SweepGrid grid;
  grid.seeds = {1, 2};
  grid.rack_trays = {1, 2};
  grid.remote_ratios = {0.5};
  core::SweepRunner runner{grid, tiny_workload_body()};
  runner.set_base(roomy_base());

  const auto sequential = runner.run(1);
  const auto parallel = runner.run(4);

  ASSERT_EQ(sequential.cells.size(), 4u);
  ASSERT_EQ(parallel.cells.size(), 4u);
  EXPECT_EQ(sequential.cells_ok(), 4u);
  EXPECT_EQ(parallel.cells_ok(), 4u);
  EXPECT_EQ(parallel.threads, 4u);
  EXPECT_TRUE(core::digests_match(sequential, parallel));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sequential.cells[i].stats.digest, parallel.cells[i].stats.digest) << i;
    EXPECT_EQ(sequential.cells[i].stats.offered, parallel.cells[i].stats.offered) << i;
    EXPECT_EQ(sequential.cells[i].stats.completed, parallel.cells[i].stats.completed) << i;
  }
}

TEST(SweepRunner, RepeatedRunsAreByteIdentical) {
  core::SweepGrid grid;
  grid.seeds = {3};
  grid.remote_ratios = {0.25, 0.75};
  core::SweepRunner runner{grid, tiny_workload_body()};
  runner.set_base(roomy_base());
  const auto first = runner.run(2);
  const auto second = runner.run(2);
  EXPECT_TRUE(core::digests_match(first, second));
}

TEST(SweepRunner, SeedsActuallyDiverge) {
  core::SweepGrid grid;
  grid.seeds = {1, 2};
  core::SweepRunner runner{grid, tiny_workload_body()};
  runner.set_base(roomy_base());
  const auto report = runner.run(1);
  ASSERT_EQ(report.cells_ok(), 2u);
  EXPECT_NE(report.cells[0].stats.digest, report.cells[1].stats.digest);
}

TEST(SweepRunner, CellSeesItsOwnParameters) {
  core::SweepGrid grid;
  grid.seeds = {9};
  grid.rack_trays = {1};
  core::SweepRunner runner{grid, [](const core::SweepCell& cell, core::Datacenter& dc) {
                             EXPECT_EQ(cell.seed, 9u);
                             EXPECT_EQ(dc.config().seed, 9u);
                             EXPECT_EQ(dc.config().trays, 1u);
                             return core::CellStats{};
                           }};
  EXPECT_EQ(runner.run(1).cells_ok(), 1u);
}

// --- failure isolation ---

TEST(SweepRunner, ThrowingCellFailsAloneNotTheSweep) {
  core::SweepGrid grid;
  grid.seeds = {1, 2, 3};
  core::SweepRunner runner{grid, [](const core::SweepCell& cell, core::Datacenter& dc) {
                             if (cell.seed == 2) throw std::runtime_error("cell exploded");
                             return cheap_body(cell, dc);
                           }};
  const auto report = runner.run(2);
  ASSERT_EQ(report.cells.size(), 3u);
  EXPECT_EQ(report.cells_ok(), 2u);
  EXPECT_TRUE(report.cells[0].ok);
  EXPECT_FALSE(report.cells[1].ok);
  EXPECT_NE(report.cells[1].error.find("cell exploded"), std::string::npos);
  EXPECT_TRUE(report.cells[2].ok);
}

TEST(SweepRunner, FaultPlanCellsInjectFaults) {
  core::SweepGrid grid;
  grid.fault_plans = {"", "link-flap@100us+200us"};
  core::SweepRunner runner{grid, [](const core::SweepCell& cell, core::Datacenter& dc) {
                             dc.advance_to(sim::Time::ms(1));
                             core::CellStats stats;
                             stats.offered = dc.faults().injected();
                             stats.digest = cell.index + 1;
                             return stats;
                           }};
  const auto report = runner.run(1);
  ASSERT_EQ(report.cells_ok(), 2u);
  EXPECT_EQ(report.cells[0].stats.offered, 0u);
  EXPECT_GE(report.cells[1].stats.offered, 1u);
}

// --- report ---

TEST(SweepReport, JsonCarriesTheSchemaAndEveryCell) {
  core::SweepGrid grid;
  grid.seeds = {1, 2};
  core::SweepRunner runner{grid, cheap_body};
  const auto report = runner.run(1);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"dredbox-sweep/v1\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"aggregate\""), std::string::npos);
  EXPECT_NE(json.find("\"cells\""), std::string::npos);
  EXPECT_NE(json.find("\"digest\""), std::string::npos);
  // One digest string per cell, rendered as fixed-width hex.
  std::size_t digests = 0;
  for (std::size_t pos = json.find("\"digest\""); pos != std::string::npos;
       pos = json.find("\"digest\"", pos + 1)) {
    ++digests;
  }
  EXPECT_EQ(digests, report.cells.size());
}

TEST(SweepReport, DigestsMatchRejectsMismatchedGridsAndDigests) {
  core::SweepGrid grid;
  grid.seeds = {1};
  core::SweepRunner runner{grid, cheap_body};
  auto a = runner.run(1);
  auto b = runner.run(1);
  EXPECT_TRUE(core::digests_match(a, b));

  b.cells[0].stats.digest ^= 1;
  EXPECT_FALSE(core::digests_match(a, b));

  auto c = a;
  c.cells.pop_back();
  EXPECT_FALSE(core::digests_match(a, c));
}

}  // namespace
}  // namespace dredbox
