#include <gtest/gtest.h>

#include "core/pilots/network_analytics.hpp"
#include "core/pilots/nfv.hpp"
#include "core/pilots/video_analytics.hpp"

namespace dredbox::core::pilots {
namespace {

DatacenterConfig pilot_datacenter() {
  DatacenterConfig cfg;
  cfg.trays = 2;
  cfg.compute_bricks_per_tray = 2;
  cfg.memory_bricks_per_tray = 4;
  cfg.accelerator_bricks_per_tray = 1;
  cfg.memory.capacity_bytes = 64ull << 30;  // 512 GiB pool
  cfg.optical_switch.ports = 96;
  return cfg;
}

TEST(VideoAnalyticsPilotTest, ElasticBeatsStaticOnSurges) {
  Datacenter dc{pilot_datacenter()};
  VideoAnalyticsConfig cfg;
  cfg.duration_hours = 24.0;
  cfg.max_video_hours = 50000.0;
  VideoAnalyticsPilot pilot{cfg};
  const auto out = pilot.run(dc);
  ASSERT_GT(out.investigations, 0u);
  // Elasticity lets the event-driven surges complete faster.
  EXPECT_LT(out.elastic_mean_completion_hours, out.static_mean_completion_hours);
  EXPECT_GT(out.speedup(), 1.0);
  EXPECT_GT(out.scale_ups, 0u);
  EXPECT_GT(out.elastic_peak_gb, out.static_peak_gb);
}

TEST(VideoAnalyticsPilotTest, ScaleUpDelaysAreSeconds) {
  Datacenter dc{pilot_datacenter()};
  VideoAnalyticsPilot pilot{};
  const auto out = pilot.run(dc);
  if (out.scale_ups > 0) {
    EXPECT_GT(out.mean_scale_up_delay_s, 0.0);
    EXPECT_LT(out.mean_scale_up_delay_s, 30.0);
  }
}

TEST(VideoAnalyticsPilotTest, ReleasesMemoryAfterInvestigations) {
  Datacenter dc{pilot_datacenter()};
  VideoAnalyticsPilot pilot{};
  const auto out = pilot.run(dc);
  EXPECT_GT(out.scale_downs, 0u);
}

TEST(NfvPilotTest, DiurnalLoadShape) {
  NfvKeyServerPilot pilot{};
  // Peak at the configured hour, trough 12 hours away.
  const double peak = pilot.load_at(pilot.config().peak_hour);
  const double trough = pilot.load_at(pilot.config().peak_hour + 12.0);
  EXPECT_NEAR(peak, 1.0, 1e-9);
  EXPECT_NEAR(trough, pilot.config().night_load_fraction, 1e-9);
  EXPECT_GT(pilot.load_at(pilot.config().peak_hour + 3.0), trough);
}

TEST(NfvPilotTest, DemandFollowsLoad) {
  NfvKeyServerPilot pilot{};
  EXPECT_EQ(pilot.demand_gb(0.0), pilot.config().base_memory_gb);
  EXPECT_GE(pilot.demand_gb(1.0), pilot.config().peak_memory_gb);
  EXPECT_LT(pilot.demand_gb(0.3), pilot.demand_gb(0.9));
}

TEST(NfvPilotTest, ElasticTracksDiurnalDemandWithoutViolations) {
  Datacenter dc{pilot_datacenter()};
  NfvKeyServerPilot pilot{};
  const auto out = pilot.run(dc);
  ASSERT_GT(out.samples, 0u);
  // The memory-elastic key server follows the pattern up and down...
  EXPECT_GT(out.scale_ups, 2u);
  EXPECT_GT(out.scale_downs, 2u);
  // ...almost never violating, unlike a mean-sized static provision.
  EXPECT_LT(out.elastic_violation_fraction, 0.05);
  EXPECT_GT(out.static_tight_violation_fraction, 0.2);
}

TEST(NfvPilotTest, ElasticCheaperThanPeakProvisioning) {
  Datacenter dc{pilot_datacenter()};
  NfvKeyServerPilot pilot{};
  const auto out = pilot.run(dc);
  // Scale-out is forbidden for the key DB; the alternative safe baseline
  // is provisioning at peak. Elasticity saves a large share of GB-hours.
  EXPECT_LT(out.elastic_gb_hours, out.static_peak_gb_hours);
  EXPECT_GT(out.provisioning_savings(), 0.20);
}

TEST(NetworkAnalyticsPilotTest, RequiresAccelerator) {
  DatacenterConfig cfg = pilot_datacenter();
  cfg.accelerator_bricks_per_tray = 0;
  Datacenter dc{cfg};
  NetworkAnalyticsPilot pilot{};
  EXPECT_THROW(pilot.run(dc), std::runtime_error);
}

TEST(NetworkAnalyticsPilotTest, OnlineStageKeepsUpAtLineRate) {
  Datacenter dc{pilot_datacenter()};
  NetworkAnalyticsConfig cfg;
  cfg.duration_s = 600.0;
  NetworkAnalyticsPilot pilot{cfg};
  const auto out = pilot.run(dc);
  EXPECT_GT(out.offered_mpkts, 0.0);
  // The reconfigurable accelerator classifies every frame (mode a).
  EXPECT_LT(out.online_drop_fraction, 0.01);
  EXPECT_GT(out.accelerator_reconfig_s, 0.0);
}

TEST(NetworkAnalyticsPilotTest, ElasticOfflineAnalysisMoreResponsive) {
  Datacenter dc{pilot_datacenter()};
  NetworkAnalyticsConfig cfg;
  cfg.duration_s = 1800.0;
  NetworkAnalyticsPilot pilot{cfg};
  const auto out = pilot.run(dc);
  EXPECT_GT(out.marked_mpkts, 0.0);
  // Dynamic memory keeps the offline stage continuously executing; the
  // static buffer postpones work at peaks.
  EXPECT_LT(out.elastic_mean_response_s, out.static_mean_response_s);
  EXPECT_GT(out.scale_ups, 0u);
}

}  // namespace
}  // namespace dredbox::core::pilots
