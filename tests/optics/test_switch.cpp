#include "optics/optical_switch.hpp"

#include <gtest/gtest.h>

namespace dredbox::optics {
namespace {

TEST(OpticalSwitchTest, DefaultsMatchPolatisModule) {
  OpticalSwitch sw;
  EXPECT_EQ(sw.port_count(), 48u);               // 48-port module
  EXPECT_DOUBLE_EQ(sw.insertion_loss_db(), 1.0); // ~1 dB per hop
  EXPECT_DOUBLE_EQ(sw.config().power_per_port_w, 0.1);  // ~100 mW/port
}

TEST(OpticalSwitchTest, ConnectPairsPorts) {
  OpticalSwitch sw;
  sw.connect(0, 5);
  EXPECT_FALSE(sw.port_free(0));
  EXPECT_FALSE(sw.port_free(5));
  EXPECT_EQ(sw.peer(0), 5u);
  EXPECT_EQ(sw.peer(5), 0u);
  EXPECT_EQ(sw.ports_in_use(), 2u);
}

TEST(OpticalSwitchTest, ConnectValidation) {
  OpticalSwitch sw;
  sw.connect(0, 1);
  EXPECT_THROW(sw.connect(0, 2), std::logic_error);     // port busy
  EXPECT_THROW(sw.connect(3, 3), std::invalid_argument); // self loop
  EXPECT_THROW(sw.connect(0, 48), std::out_of_range);   // out of range
}

TEST(OpticalSwitchTest, DisconnectFreesBothEnds) {
  OpticalSwitch sw;
  sw.connect(2, 7);
  EXPECT_TRUE(sw.disconnect(7));  // disconnect via either end
  EXPECT_TRUE(sw.port_free(2));
  EXPECT_TRUE(sw.port_free(7));
  EXPECT_FALSE(sw.disconnect(7));  // already free
}

TEST(OpticalSwitchTest, FindFreePortsReturnsLowest) {
  OpticalSwitch sw;
  sw.connect(0, 1);
  const auto ports = sw.find_free_ports(3);
  ASSERT_EQ(ports.size(), 3u);
  EXPECT_EQ(ports[0], 2u);
  EXPECT_EQ(ports[1], 3u);
  EXPECT_EQ(ports[2], 4u);
}

TEST(OpticalSwitchTest, FindFreePortsEmptyWhenScarce) {
  OpticalSwitchConfig cfg;
  cfg.ports = 4;
  OpticalSwitch sw{cfg};
  sw.connect(0, 1);
  sw.connect(2, 3);
  EXPECT_TRUE(sw.find_free_ports(1).empty());
}

TEST(OpticalSwitchTest, PowerDrawTracksPortsInUse) {
  OpticalSwitch sw;
  EXPECT_DOUBLE_EQ(sw.power_draw_watts(), 0.0);
  sw.connect(0, 1);
  EXPECT_DOUBLE_EQ(sw.power_draw_watts(), 0.2);  // 2 ports x 100 mW
  sw.connect(2, 3);
  EXPECT_DOUBLE_EQ(sw.power_draw_watts(), 0.4);
  sw.disconnect(0);
  EXPECT_DOUBLE_EQ(sw.power_draw_watts(), 0.2);
}

TEST(OpticalSwitchTest, TinySwitchRejected) {
  OpticalSwitchConfig cfg;
  cfg.ports = 1;
  EXPECT_THROW(OpticalSwitch{cfg}, std::invalid_argument);
}

TEST(OpticalSwitchTest, FullMeshOfPairs) {
  OpticalSwitchConfig cfg;
  cfg.ports = 48;
  OpticalSwitch sw{cfg};
  for (std::size_t p = 0; p < 48; p += 2) sw.connect(p, p + 1);
  EXPECT_EQ(sw.free_ports(), 0u);
  EXPECT_DOUBLE_EQ(sw.power_draw_watts(), 4.8);
}

}  // namespace
}  // namespace dredbox::optics
