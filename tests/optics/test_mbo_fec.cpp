#include <gtest/gtest.h>

#include "optics/fec.hpp"
#include "optics/mbo.hpp"
#include "sim/random.hpp"

namespace dredbox::optics {
namespace {

TEST(MboTest, DefaultsMatchPaper) {
  sim::Rng rng{1};
  MidBoardOptics mbo{MboConfig{}, rng};
  EXPECT_EQ(mbo.channel_count(), 8u);          // 8 transceivers
  EXPECT_DOUBLE_EQ(mbo.wavelength_nm(), 1310.0);  // shared 1310 nm laser
  EXPECT_DOUBLE_EQ(mbo.config().mean_launch_dbm, -3.7);
}

TEST(MboTest, ChannelLaunchPowersVaryAroundMean) {
  sim::Rng rng{2};
  MboConfig cfg;
  cfg.channel_spread_db = 0.25;
  MidBoardOptics mbo{cfg, rng};
  double sum = 0.0;
  bool any_differs = false;
  for (std::size_t i = 0; i < mbo.channel_count(); ++i) {
    sum += mbo.channel(i).launch_dbm;
    if (std::abs(mbo.channel(i).launch_dbm + 3.7) > 1e-9) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
  EXPECT_NEAR(sum / 8.0, -3.7, 0.5);
}

TEST(MboTest, ZeroSpreadGivesExactMean) {
  sim::Rng rng{3};
  MboConfig cfg;
  cfg.channel_spread_db = 0.0;
  MidBoardOptics mbo{cfg, rng};
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(mbo.channel(i).launch_dbm, -3.7);
  }
}

TEST(MboTest, AcquireReleaseChannels) {
  sim::Rng rng{4};
  MidBoardOptics mbo{MboConfig{}, rng};
  auto* ch = mbo.acquire_channel();
  ASSERT_NE(ch, nullptr);
  EXPECT_EQ(ch->index, 0u);
  EXPECT_TRUE(ch->in_use);
  EXPECT_EQ(mbo.channels_in_use(), 1u);
  mbo.release_channel(0);
  EXPECT_EQ(mbo.channels_in_use(), 0u);
  EXPECT_THROW(mbo.release_channel(0), std::logic_error);
}

TEST(MboTest, ExhaustionReturnsNull) {
  sim::Rng rng{5};
  MboConfig cfg;
  cfg.channels = 2;
  MidBoardOptics mbo{cfg, rng};
  EXPECT_NE(mbo.acquire_channel(), nullptr);
  EXPECT_NE(mbo.acquire_channel(), nullptr);
  EXPECT_EQ(mbo.acquire_channel(), nullptr);
}

TEST(FecTest, FecFreeIsTransparent) {
  FecModel fec{FecScheme::kNone};
  EXPECT_EQ(fec.added_latency(), sim::Time::zero());
  EXPECT_DOUBLE_EQ(fec.post_fec_ber(1e-5), 1e-5);
  EXPECT_DOUBLE_EQ(fec.post_fec_ber(0.4), 0.4);
}

TEST(FecTest, RsFecAddsOver100ns) {
  // Section III: FEC can introduce more than 100 ns of latency — the
  // reason dReDBox requires a FEC-free interface.
  EXPECT_GT(FecModel{FecScheme::kRsLight}.added_latency(), sim::Time::ns(100));
  EXPECT_GT(FecModel{FecScheme::kRsStrong}.added_latency(), sim::Time::ns(100));
}

TEST(FecTest, WaterfallBehaviour) {
  FecModel fec{FecScheme::kRsLight};
  // Below threshold: corrected to the floor.
  EXPECT_DOUBLE_EQ(fec.post_fec_ber(1e-5), 1e-15);
  EXPECT_DOUBLE_EQ(fec.post_fec_ber(fec.correction_threshold()), 1e-15);
  // Above threshold: correction collapses.
  EXPECT_DOUBLE_EQ(fec.post_fec_ber(1e-2), 1e-2);
}

TEST(FecTest, StrongFecHasHigherThresholdAndLatency) {
  FecModel light{FecScheme::kRsLight};
  FecModel strong{FecScheme::kRsStrong};
  EXPECT_GT(strong.correction_threshold(), light.correction_threshold());
  EXPECT_GT(strong.added_latency(), light.added_latency());
}

TEST(FecTest, Names) {
  EXPECT_EQ(to_string(FecScheme::kNone), "FEC-free");
  EXPECT_NE(to_string(FecScheme::kRsLight).find("RS"), std::string::npos);
}

}  // namespace
}  // namespace dredbox::optics
