#include "optics/circuit.hpp"

#include <gtest/gtest.h>

namespace dredbox::optics {
namespace {

CircuitRequest make_request(std::size_t hops = 1) {
  CircuitRequest req;
  req.a = CircuitEndpoint{hw::BrickId{1}, hw::PortId{0}, -3.7, 1.2};
  req.b = CircuitEndpoint{hw::BrickId{2}, hw::PortId{0}, -3.7, 1.2};
  req.hops = hops;
  req.fiber_length_m = 20.0;
  return req;
}

TEST(CircuitManagerTest, EstablishConsumesSwitchPorts) {
  OpticalSwitch sw;
  CircuitManager mgr{sw};
  auto c = mgr.establish(make_request(1));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(sw.ports_in_use(), 2u);
  EXPECT_EQ(mgr.active_circuits(), 1u);
  EXPECT_EQ(c->switch_ports.size(), 2u);
}

TEST(CircuitManagerTest, MultiHopConsumesTwoPortsPerHop) {
  OpticalSwitch sw;
  CircuitManager mgr{sw};
  auto c = mgr.establish(make_request(8));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(sw.ports_in_use(), 16u);
  EXPECT_EQ(c->hops, 8u);
}

TEST(CircuitManagerTest, TeardownReleasesPorts) {
  OpticalSwitch sw;
  CircuitManager mgr{sw};
  auto c = mgr.establish(make_request(4));
  ASSERT_TRUE(c);
  EXPECT_TRUE(mgr.teardown(c->id));
  EXPECT_EQ(sw.ports_in_use(), 0u);
  EXPECT_EQ(mgr.active_circuits(), 0u);
  EXPECT_FALSE(mgr.teardown(c->id));
  EXPECT_FALSE(mgr.find(c->id).has_value());
}

TEST(CircuitManagerTest, PortExhaustionReturnsNullopt) {
  OpticalSwitchConfig cfg;
  cfg.ports = 6;
  OpticalSwitch sw{cfg};
  CircuitManager mgr{sw};
  ASSERT_TRUE(mgr.establish(make_request(3)));  // uses all 6 ports
  EXPECT_FALSE(mgr.establish(make_request(1)).has_value());
}

TEST(CircuitManagerTest, ZeroHopRejected) {
  OpticalSwitch sw;
  CircuitManager mgr{sw};
  EXPECT_THROW(mgr.establish(make_request(0)), std::invalid_argument);
}

TEST(CircuitManagerTest, PropagationDelayFollowsFiberLength) {
  OpticalSwitch sw;
  CircuitManager mgr{sw};
  auto c = mgr.establish(make_request(1));
  ASSERT_TRUE(c);
  // 20 m at 5 ns/m = 100 ns one way.
  EXPECT_EQ(c->propagation_delay(), sim::Time::ns(100));
}

TEST(CircuitManagerTest, BudgetIncludesAllLossElements) {
  OpticalSwitch sw;
  CircuitManager mgr{sw};
  auto c = mgr.establish(make_request(8));
  ASSERT_TRUE(c);
  const LinkBudget lb = mgr.budget(*c, /*from_a=*/true);
  // launch -3.7, TX coupling 1.2, TX connector 0.3, 8 hops x 1.0, fibre
  // ~0.007, RX connector 0.3, RX coupling 1.2 => about -14.7 dBm.
  EXPECT_NEAR(lb.received_dbm(), -14.707, 0.01);
  // Both directions are symmetric for symmetric endpoints.
  const LinkBudget back = mgr.budget(*c, /*from_a=*/false);
  EXPECT_NEAR(back.received_dbm(), lb.received_dbm(), 1e-9);
}

TEST(CircuitManagerTest, BudgetUsesPerEndpointLaunchPower) {
  OpticalSwitch sw;
  CircuitManager mgr{sw};
  auto req = make_request(1);
  req.a.launch_dbm = -2.0;
  req.b.launch_dbm = -5.0;
  auto c = mgr.establish(req);
  ASSERT_TRUE(c);
  const double a_to_b = mgr.budget(*c, true).received_dbm();
  const double b_to_a = mgr.budget(*c, false).received_dbm();
  EXPECT_NEAR(a_to_b - b_to_a, 3.0, 1e-9);
}

TEST(CircuitManagerTest, SetupTimeComesFromSwitchConfig) {
  OpticalSwitchConfig cfg;
  cfg.reconfiguration_time = sim::Time::ms(10);
  OpticalSwitch sw{cfg};
  CircuitManager mgr{sw};
  EXPECT_EQ(mgr.setup_time(), sim::Time::ms(10));
}

TEST(CircuitManagerTest, IndependentCircuitsCoexist) {
  OpticalSwitch sw;
  CircuitManager mgr{sw};
  auto c1 = mgr.establish(make_request(2));
  auto c2 = mgr.establish(make_request(2));
  ASSERT_TRUE(c1 && c2);
  EXPECT_NE(c1->id, c2->id);
  EXPECT_EQ(sw.ports_in_use(), 8u);
  mgr.teardown(c1->id);
  EXPECT_TRUE(mgr.find(c2->id).has_value());
  EXPECT_EQ(sw.ports_in_use(), 4u);
}

}  // namespace
}  // namespace dredbox::optics
