#include "optics/link_budget.hpp"

#include <gtest/gtest.h>

namespace dredbox::optics {
namespace {

TEST(LinkBudgetTest, NoLossesPassThrough) {
  LinkBudget lb{-3.7};
  EXPECT_DOUBLE_EQ(lb.launch_dbm(), -3.7);
  EXPECT_DOUBLE_EQ(lb.total_loss_db(), 0.0);
  EXPECT_DOUBLE_EQ(lb.received_dbm(), -3.7);
}

TEST(LinkBudgetTest, LossesAccumulate) {
  LinkBudget lb{-3.7};
  lb.add_loss("coupling", 1.2).add_loss("connector", 0.3);
  EXPECT_DOUBLE_EQ(lb.total_loss_db(), 1.5);
  EXPECT_DOUBLE_EQ(lb.received_dbm(), -5.2);
}

TEST(LinkBudgetTest, SwitchHopsMatchPaperBudget) {
  // Section III: each hop through the optical switch introduces ~1 dB.
  LinkBudget lb{-3.7};
  lb.add_switch_hops(8);
  EXPECT_DOUBLE_EQ(lb.total_loss_db(), 8.0);
  EXPECT_DOUBLE_EQ(lb.received_dbm(), -11.7);
  EXPECT_EQ(lb.losses().size(), 8u);
}

TEST(LinkBudgetTest, CustomPerHopLoss) {
  LinkBudget lb{0.0};
  lb.add_switch_hops(6, 0.8);
  EXPECT_NEAR(lb.total_loss_db(), 4.8, 1e-12);
}

TEST(LinkBudgetTest, NegativeLossRejected) {
  LinkBudget lb{0.0};
  EXPECT_THROW(lb.add_loss("gain?", -1.0), std::invalid_argument);
}

TEST(LinkBudgetTest, ToStringShowsChain) {
  LinkBudget lb{-3.7};
  lb.add_loss("coupling", 1.2);
  const std::string s = lb.to_string();
  EXPECT_NE(s.find("-3.70 dBm"), std::string::npos);
  EXPECT_NE(s.find("coupling"), std::string::npos);
  EXPECT_NE(s.find("received"), std::string::npos);
}

}  // namespace
}  // namespace dredbox::optics
