#include "optics/units.hpp"

#include <gtest/gtest.h>

namespace dredbox::optics {
namespace {

TEST(UnitsTest, DbmMwConversions) {
  EXPECT_DOUBLE_EQ(dbm_to_mw(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dbm_to_mw(10.0), 10.0);
  EXPECT_DOUBLE_EQ(dbm_to_mw(-10.0), 0.1);
  EXPECT_NEAR(dbm_to_mw(-3.0), 0.501187, 1e-6);
}

TEST(UnitsTest, ConversionsRoundTrip) {
  for (double dbm : {-30.0, -14.0, -3.7, 0.0, 5.0}) {
    EXPECT_NEAR(mw_to_dbm(dbm_to_mw(dbm)), dbm, 1e-12);
  }
}

TEST(UnitsTest, BerFromQKnownValues) {
  // Q = 0 means a coin flip.
  EXPECT_DOUBLE_EQ(ber_from_q(0.0), 0.5);
  EXPECT_DOUBLE_EQ(ber_from_q(-1.0), 0.5);
  // Q ~ 7.03 is the textbook 1e-12 operating point.
  EXPECT_NEAR(ber_from_q(7.033), 1e-12, 2e-13);
  // Q = 6 -> ~1e-9.
  EXPECT_NEAR(ber_from_q(6.0), 1e-9, 2e-10);
}

TEST(UnitsTest, BerMonotonicallyDecreasesWithQ) {
  double prev = 1.0;
  for (double q = 0.5; q < 12.0; q += 0.5) {
    const double b = ber_from_q(q);
    EXPECT_LT(b, prev);
    prev = b;
  }
}

TEST(UnitsTest, QFromBerInvertsBerFromQ) {
  for (double ber : {1e-3, 1e-6, 1e-9, 1e-12, 1e-15}) {
    const double q = q_from_ber(ber);
    EXPECT_NEAR(ber_from_q(q), ber, ber * 1e-6);
  }
}

TEST(UnitsTest, QFromBerValidation) {
  EXPECT_THROW(q_from_ber(0.0), std::invalid_argument);
  EXPECT_THROW(q_from_ber(0.5), std::invalid_argument);
  EXPECT_THROW(q_from_ber(1.0), std::invalid_argument);
  EXPECT_THROW(q_from_ber(-1e-9), std::invalid_argument);
}

}  // namespace
}  // namespace dredbox::optics
