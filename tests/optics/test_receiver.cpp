#include "optics/receiver.hpp"

#include <gtest/gtest.h>

#include "optics/link_budget.hpp"
#include "optics/units.hpp"

namespace dredbox::optics {
namespace {

TEST(ReceiverTest, BerAtSensitivityIsTarget) {
  ReceiverModel rx{-14.0, 10.0};
  EXPECT_NEAR(rx.ber(-14.0), 1e-12, 2e-13);
}

TEST(ReceiverTest, QScalesLinearlyWithReceivedPowerMw) {
  ReceiverModel rx{-14.0};
  const double q_ref = rx.q_factor(-14.0);
  // +3 dB doubles the power, so Q doubles (thermal-noise-limited).
  EXPECT_NEAR(rx.q_factor(-14.0 + 3.0103), 2.0 * q_ref, 1e-3 * q_ref);
}

TEST(ReceiverTest, MorePowerMeansLowerBer) {
  ReceiverModel rx{-14.0};
  double prev = 1.0;
  for (double p = -22.0; p <= -8.0; p += 1.0) {
    const double b = rx.ber(p);
    EXPECT_LT(b, prev) << "at " << p << " dBm";
    prev = b;
  }
}

TEST(ReceiverTest, EightHopLinkOfFig7IsBelow1e12) {
  // Fig. 7 setup: -3.7 dBm launch, 8 switch hops at 1 dB, coupling and
  // connector losses — received near -14 dBm on a -14.5 dBm-sensitivity
  // receiver keeps BER below the paper's 1e-12 line.
  ReceiverModel rx{-14.5};
  LinkBudget lb{-3.7};
  lb.add_loss("TX coupling", 1.2).add_switch_hops(8).add_loss("RX coupling", 1.2);
  EXPECT_LT(lb.received_dbm(), -13.0);
  EXPECT_LT(rx.ber(lb.received_dbm()), 1e-12);
}

TEST(ReceiverTest, RequiredPowerInvertsSensitivity) {
  ReceiverModel rx{-14.0};
  EXPECT_NEAR(rx.required_power_dbm(1e-12), -14.0, 1e-6);
  // A more demanding BER requires more power.
  EXPECT_GT(rx.required_power_dbm(1e-15), rx.required_power_dbm(1e-9));
}

TEST(ReceiverTest, ExpectedErrorsScaleWithTimeAndRate) {
  ReceiverModel rx{-14.0, 10.0};
  const double e1 = rx.expected_errors(-14.0, 1.0);
  const double e2 = rx.expected_errors(-14.0, 2.0);
  EXPECT_NEAR(e2, 2.0 * e1, 1e-9 * e1);
  // 1e-12 BER at 10 Gb/s -> ~0.01 errors/s.
  EXPECT_NEAR(e1, 1e-12 * 10e9, 2e-3 * 1e-12 * 10e9 + 1e-3);
}

TEST(ReceiverTest, InvalidRateRejected) {
  EXPECT_THROW(ReceiverModel(-14.0, 0.0), std::invalid_argument);
  EXPECT_THROW(ReceiverModel(-14.0, -10.0), std::invalid_argument);
}

/// Property sweep: BER is monotone in hop count for any per-hop loss.
class ReceiverHopSweep : public ::testing::TestWithParam<double> {};

TEST_P(ReceiverHopSweep, BerWorsensWithHops) {
  const double per_hop_db = GetParam();
  ReceiverModel rx{-14.0};
  double prev_ber = 0.0;
  for (std::size_t hops = 0; hops <= 12; ++hops) {
    LinkBudget lb{-3.7};
    lb.add_loss("coupling", 2.4).add_switch_hops(hops, per_hop_db);
    const double ber = rx.ber(lb.received_dbm());
    EXPECT_GE(ber, prev_ber);
    prev_ber = ber;
  }
}

INSTANTIATE_TEST_SUITE_P(PerHopLoss, ReceiverHopSweep,
                         ::testing::Values(0.5, 0.8, 1.0, 1.2, 1.5));

}  // namespace
}  // namespace dredbox::optics
