#include "net/mac_phy.hpp"

#include <gtest/gtest.h>

namespace dredbox::net {
namespace {

using sim::Time;

TEST(MacPhyTest, TraversalIsMacPlusPhy) {
  PacketPathLatencies cfg;
  cfg.mac = Time::ns(105);
  cfg.phy = Time::ns(130);
  MacPhy mp{cfg};
  EXPECT_EQ(mp.traversal_latency(), Time::ns(235));
}

TEST(MacPhyTest, SerializationAtLineRate) {
  PacketPathLatencies cfg;
  cfg.line_rate_gbps = 10.0;
  cfg.header_bytes = 8;
  MacPhy mp{cfg};
  // (64 + 8) bytes * 8 bits / 10 Gb/s = 57.6 ns.
  EXPECT_EQ(mp.serialization_time(64), Time::ns(57.6));
  // Header-only packet still costs the header.
  EXPECT_EQ(mp.serialization_time(0), Time::ns(6.4));
}

TEST(MacPhyTest, FasterLineShortensSerialization) {
  PacketPathLatencies slow;
  slow.line_rate_gbps = 10.0;
  PacketPathLatencies fast;
  fast.line_rate_gbps = 25.0;
  EXPECT_GT(MacPhy{slow}.serialization_time(1024), MacPhy{fast}.serialization_time(1024));
}

TEST(MacPhyTest, SerializationScalesLinearlyWithPayload) {
  MacPhy mp{PacketPathLatencies{}};
  const Time t1 = mp.serialization_time(1000);
  const Time t2 = mp.serialization_time(2008);  // 2*(1000+8) = 2016 = 2008+8
  EXPECT_EQ(t2, t1 * 2);
}

}  // namespace
}  // namespace dredbox::net
