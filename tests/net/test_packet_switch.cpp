#include "net/packet_switch.hpp"

#include <gtest/gtest.h>

namespace dredbox::net {
namespace {

using sim::Time;

TEST(PacketSwitchTest, UnprogrammedDestinationDrops) {
  PacketSwitch sw{2, Time::ns(85)};
  EXPECT_FALSE(sw.forward(hw::BrickId{9}, Time::zero(), Time::ns(51)).has_value());
  EXPECT_EQ(sw.dropped(), 1u);
  EXPECT_EQ(sw.forwarded(), 0u);
}

TEST(PacketSwitchTest, ProgrammedRouteForwards) {
  PacketSwitch sw{2, Time::ns(85)};
  sw.program_route(hw::BrickId{9}, 1);
  auto r = sw.forward(hw::BrickId{9}, Time::zero(), Time::ns(51));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->port, 1u);
  EXPECT_EQ(r->departure, Time::ns(85 + 51));
  EXPECT_EQ(r->queueing, Time::zero());
  EXPECT_EQ(sw.forwarded(), 1u);
}

TEST(PacketSwitchTest, OutputPortQueueing) {
  PacketSwitch sw{1, Time::ns(10)};
  sw.program_route(hw::BrickId{9}, 0);
  auto first = sw.forward(hw::BrickId{9}, Time::zero(), Time::ns(100));
  auto second = sw.forward(hw::BrickId{9}, Time::zero(), Time::ns(100));
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->departure, Time::ns(110));
  // The second packet waits for the first to drain the port.
  EXPECT_EQ(second->departure, Time::ns(210));
  EXPECT_EQ(second->queueing, Time::ns(100));
}

TEST(PacketSwitchTest, NoQueueingWhenSpaced) {
  PacketSwitch sw{1, Time::ns(10)};
  sw.program_route(hw::BrickId{9}, 0);
  sw.forward(hw::BrickId{9}, Time::zero(), Time::ns(50));
  auto late = sw.forward(hw::BrickId{9}, Time::us(1), Time::ns(50));
  ASSERT_TRUE(late);
  EXPECT_EQ(late->queueing, Time::zero());
}

TEST(PacketSwitchTest, RoundRobinAcrossMultipath) {
  PacketSwitch sw{3, Time::ns(10)};
  sw.program_multipath(hw::BrickId{9}, {0, 1, 2});
  std::vector<std::size_t> ports;
  for (int i = 0; i < 6; ++i) {
    auto r = sw.forward(hw::BrickId{9}, Time::zero(), Time::ns(10));
    ASSERT_TRUE(r);
    ports.push_back(r->port);
  }
  EXPECT_EQ(ports, (std::vector<std::size_t>{0, 1, 2, 0, 1, 2}));
}

TEST(PacketSwitchTest, MultipathSpreadsLoad) {
  // Two parallel links halve the queueing of back-to-back packets.
  PacketSwitch single{1, Time::ns(0)};
  single.program_route(hw::BrickId{9}, 0);
  PacketSwitch dual{2, Time::ns(0)};
  dual.program_multipath(hw::BrickId{9}, {0, 1});
  Time single_done, dual_done;
  for (int i = 0; i < 8; ++i) {
    single_done = single.forward(hw::BrickId{9}, Time::zero(), Time::ns(100))->departure;
    dual_done = dual.forward(hw::BrickId{9}, Time::zero(), Time::ns(100))->departure;
  }
  EXPECT_EQ(single_done, Time::ns(800));
  EXPECT_EQ(dual_done, Time::ns(400));
}

TEST(PacketSwitchTest, EraseRouteStopsForwarding) {
  PacketSwitch sw{1, Time::ns(10)};
  sw.program_route(hw::BrickId{9}, 0);
  EXPECT_TRUE(sw.erase_route(hw::BrickId{9}));
  EXPECT_FALSE(sw.erase_route(hw::BrickId{9}));
  EXPECT_FALSE(sw.forward(hw::BrickId{9}, Time::zero(), Time::ns(10)).has_value());
}

TEST(PacketSwitchTest, LookupReflectsTable) {
  PacketSwitch sw{4, Time::ns(10)};
  EXPECT_FALSE(sw.lookup(hw::BrickId{1}).has_value());
  sw.program_route(hw::BrickId{1}, 3);
  EXPECT_EQ(sw.lookup(hw::BrickId{1}), 3u);
  EXPECT_EQ(sw.table_size(), 1u);
}

TEST(PacketSwitchTest, Validation) {
  EXPECT_THROW(PacketSwitch(0, Time::ns(1)), std::invalid_argument);
  PacketSwitch sw{2, Time::ns(1)};
  EXPECT_THROW(sw.program_route(hw::BrickId{1}, 2), std::out_of_range);
  EXPECT_THROW(sw.program_multipath(hw::BrickId{1}, {}), std::invalid_argument);
  EXPECT_THROW(sw.program_multipath(hw::BrickId{1}, {0, 5}), std::out_of_range);
}

TEST(PacketSwitchTest, ResetClearsState) {
  PacketSwitch sw{1, Time::ns(10)};
  sw.program_route(hw::BrickId{9}, 0);
  sw.forward(hw::BrickId{9}, Time::zero(), Time::ns(100));
  sw.reset();
  EXPECT_EQ(sw.forwarded(), 0u);
  auto r = sw.forward(hw::BrickId{9}, Time::zero(), Time::ns(100));
  ASSERT_TRUE(r);
  EXPECT_EQ(r->queueing, Time::zero());  // busy-until cleared
}

}  // namespace
}  // namespace dredbox::net
