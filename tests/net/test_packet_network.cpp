#include "net/packet_network.hpp"

#include <gtest/gtest.h>

namespace dredbox::net {
namespace {

using sim::Time;

constexpr hw::BrickId kCpu{1};
constexpr hw::BrickId kMem{2};

PacketNetwork make_network(optics::FecModel fec = optics::FecModel{}) {
  PacketNetwork net{PacketPathLatencies{}, fec};
  net.add_brick(kCpu);
  net.add_brick(kMem);
  net.connect(kCpu, kMem, 10.0);
  return net;
}

TEST(PacketNetworkTest, RemoteReadRoundTripAccounting) {
  auto net = make_network();
  const Packet pkt = net.remote_read(kCpu, kMem, 0x1000, 64, Time::zero());
  EXPECT_EQ(pkt.type, PacketType::kMemReadResp);
  // Breakdown total must equal the end-to-end latency.
  EXPECT_EQ(pkt.breakdown.total(), pkt.latency());
  EXPECT_GT(pkt.latency(), Time::zero());
}

TEST(PacketNetworkTest, BreakdownContainsFig8Components) {
  auto net = make_network();
  const Packet pkt = net.remote_read(kCpu, kMem, 0x1000, 64, Time::zero());
  EXPECT_TRUE(pkt.breakdown.has("TGL / NI injection"));
  EXPECT_TRUE(pkt.breakdown.has("on-brick switch (dCOMPUBRICK)"));
  EXPECT_TRUE(pkt.breakdown.has("on-brick switch (dMEMBRICK)"));
  EXPECT_TRUE(pkt.breakdown.has("MAC/PHY (dCOMPUBRICK)"));
  EXPECT_TRUE(pkt.breakdown.has("MAC/PHY (dMEMBRICK)"));
  EXPECT_TRUE(pkt.breakdown.has("optical propagation"));
  EXPECT_TRUE(pkt.breakdown.has("glue logic (dMEMBRICK)"));
  EXPECT_TRUE(pkt.breakdown.has("memory access"));
  EXPECT_FALSE(pkt.breakdown.has("FEC encode/decode"));  // FEC-free mainline
}

TEST(PacketNetworkTest, RoundTripLatencyInExpectedRange) {
  // The prototype's packet-path round trip sits in the ~1 microsecond
  // regime (Fig. 8 is a sub-microsecond to low-microsecond breakdown).
  auto net = make_network();
  const Packet pkt = net.remote_read(kCpu, kMem, 0x1000, 64, Time::zero());
  EXPECT_GT(pkt.latency(), Time::ns(500));
  EXPECT_LT(pkt.latency(), Time::us(3));
}

TEST(PacketNetworkTest, MacPhyDominatesPropagationInRack) {
  auto net = make_network();
  const Packet pkt = net.remote_read(kCpu, kMem, 0x1000, 64, Time::zero());
  const Time mac_phy =
      pkt.breakdown.of("MAC/PHY (dCOMPUBRICK)") + pkt.breakdown.of("MAC/PHY (dMEMBRICK)");
  EXPECT_GT(mac_phy, pkt.breakdown.of("optical propagation"));
}

TEST(PacketNetworkTest, WriteCarriesPayloadOutbound) {
  auto net = make_network();
  const Packet rd = net.remote_read(kCpu, kMem, 0x0, 4096, Time::zero());
  const Packet wr = net.remote_write(kCpu, kMem, 0x0, 4096, Time::zero());
  // Both move the same bytes once, so serialization matches.
  EXPECT_EQ(rd.breakdown.of("serialization"), wr.breakdown.of("serialization"));
  EXPECT_EQ(wr.type, PacketType::kMemWriteAck);
}

TEST(PacketNetworkTest, LargerPayloadsTakeLonger) {
  auto net = make_network();
  const Packet small = net.remote_read(kCpu, kMem, 0x0, 64, Time::zero());
  const Packet big = net.remote_read(kCpu, kMem, 0x0, 4096, Time::us(100));
  EXPECT_GT(big.latency(), small.latency());
}

TEST(PacketNetworkTest, HmcFasterThanDdr) {
  auto net = make_network();
  const Packet ddr =
      net.remote_read(kCpu, kMem, 0x0, 64, Time::zero(), hw::MemoryTechnology::kDdr4);
  const Packet hmc =
      net.remote_read(kCpu, kMem, 0x0, 64, Time::ms(1), hw::MemoryTechnology::kHmc);
  EXPECT_LT(hmc.breakdown.of("memory access"), ddr.breakdown.of("memory access"));
}

TEST(PacketNetworkTest, FecAddsLatencyOnBothTraversals) {
  auto plain = make_network();
  auto fec = make_network(optics::FecModel{optics::FecScheme::kRsLight});
  const Packet p0 = plain.remote_read(kCpu, kMem, 0x0, 64, Time::zero());
  const Packet p1 = fec.remote_read(kCpu, kMem, 0x0, 64, Time::zero());
  EXPECT_TRUE(p1.breakdown.has("FEC encode/decode"));
  // One FEC charge per direction.
  EXPECT_EQ(p1.breakdown.of("FEC encode/decode"), sim::Time::ns(240));
  EXPECT_GT(p1.latency(), p0.latency() + Time::ns(200));
}

TEST(PacketNetworkTest, FartherBricksHaveMorePropagation) {
  PacketNetwork net;
  net.add_brick(kCpu);
  net.add_brick(kMem);
  net.connect(kCpu, kMem, 100.0);
  const Packet far = net.remote_read(kCpu, kMem, 0x0, 64, Time::zero());
  // 100 m at 5 ns/m, twice (request + response) = 1000 ns.
  EXPECT_EQ(far.breakdown.of("optical propagation"), Time::ns(1000));
}

TEST(PacketNetworkTest, UnconnectedPairThrows) {
  PacketNetwork net;
  net.add_brick(kCpu);
  net.add_brick(kMem);
  EXPECT_THROW(net.remote_read(kCpu, kMem, 0x0, 64, Time::zero()), std::logic_error);
}

TEST(PacketNetworkTest, DuplicateBrickRejected) {
  PacketNetwork net;
  net.add_brick(kCpu);
  EXPECT_THROW(net.add_brick(kCpu), std::logic_error);
}

TEST(PacketNetworkTest, BackToBackRequestsQueueAtTheSwitch) {
  auto net = make_network();
  const Packet a = net.remote_read(kCpu, kMem, 0x0, 4096, Time::zero());
  const Packet b = net.remote_read(kCpu, kMem, 0x0, 4096, Time::zero());
  EXPECT_GT(b.latency(), a.latency());  // queued behind a's response bytes
}

TEST(PacketNetworkTest, PacketIdsIncrement) {
  auto net = make_network();
  const Packet a = net.remote_read(kCpu, kMem, 0x0, 64, Time::zero());
  const Packet b = net.remote_write(kCpu, kMem, 0x0, 64, Time::zero());
  EXPECT_EQ(b.id, a.id + 1);
  EXPECT_EQ(net.packets_sent(), 2u);
}

}  // namespace
}  // namespace dredbox::net
