#include "os/memory_map.hpp"

#include <gtest/gtest.h>

namespace dredbox::os {
namespace {

MemoryRegion region(std::uint64_t base, std::uint64_t size,
                    RegionType type = RegionType::kLocalRam) {
  MemoryRegion r;
  r.base = base;
  r.size = size;
  r.type = type;
  r.online = true;
  return r;
}

TEST(MemoryMapTest, AddAndQuery) {
  PhysicalMemoryMap map;
  map.add_region(region(0x0, 0x1000));
  auto r = map.region_at(0x800);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->base, 0x0u);
  EXPECT_FALSE(map.region_at(0x1000).has_value());
}

TEST(MemoryMapTest, RegionsKeptSorted) {
  PhysicalMemoryMap map;
  map.add_region(region(0x2000, 0x1000));
  map.add_region(region(0x0, 0x1000));
  ASSERT_EQ(map.regions().size(), 2u);
  EXPECT_EQ(map.regions()[0].base, 0x0u);
  EXPECT_EQ(map.regions()[1].base, 0x2000u);
}

TEST(MemoryMapTest, OverlapRejected) {
  PhysicalMemoryMap map;
  map.add_region(region(0x1000, 0x1000));
  EXPECT_THROW(map.add_region(region(0x1800, 0x1000)), std::logic_error);
  EXPECT_THROW(map.add_region(region(0x0, 0x1001)), std::logic_error);
  EXPECT_NO_THROW(map.add_region(region(0x2000, 0x1000)));  // adjacent ok
}

TEST(MemoryMapTest, DegenerateRegionsRejected) {
  PhysicalMemoryMap map;
  EXPECT_THROW(map.add_region(region(0x0, 0)), std::invalid_argument);
  EXPECT_THROW(map.add_region(region(UINT64_MAX - 1, 0x10)), std::invalid_argument);
}

TEST(MemoryMapTest, RemoveRegion) {
  PhysicalMemoryMap map;
  map.add_region(region(0x0, 0x1000));
  EXPECT_TRUE(map.remove_region(0x0));
  EXPECT_FALSE(map.remove_region(0x0));
  EXPECT_TRUE(map.regions().empty());
}

TEST(MemoryMapTest, TotalsByType) {
  PhysicalMemoryMap map;
  map.add_region(region(0x0, 0x1000, RegionType::kLocalRam));
  map.add_region(region(0x2000, 0x3000, RegionType::kRemoteRam));
  map.add_region(region(0x8000, 0x500, RegionType::kReserved));
  EXPECT_EQ(map.total_bytes(RegionType::kLocalRam), 0x1000u);
  EXPECT_EQ(map.total_bytes(RegionType::kRemoteRam), 0x3000u);
  EXPECT_EQ(map.total_bytes(RegionType::kReserved), 0x500u);
}

TEST(MemoryMapTest, OnlineAccounting) {
  PhysicalMemoryMap map;
  map.add_region(region(0x0, 0x1000));
  auto off = region(0x2000, 0x1000);
  off.online = false;
  map.add_region(off);
  EXPECT_EQ(map.online_bytes(), 0x1000u);
  map.set_online(0x2000, true);
  EXPECT_EQ(map.online_bytes(), 0x2000u);
  EXPECT_THROW(map.set_online(0x9999, true), std::out_of_range);
}

TEST(MemoryMapTest, RegionTypeNames) {
  EXPECT_EQ(to_string(RegionType::kLocalRam), "local-ram");
  EXPECT_EQ(to_string(RegionType::kRemoteRam), "remote-ram");
  EXPECT_EQ(to_string(RegionType::kReserved), "reserved");
}

}  // namespace
}  // namespace dredbox::os
