#include "os/hotplug.hpp"

#include <gtest/gtest.h>

#include "hw/compute_brick.hpp"
#include "os/baremetal_os.hpp"

namespace dredbox::os {
namespace {

constexpr std::uint64_t kGiB = 1ull << 30;

TEST(HotplugTest, HotAddCreatesOnlineRemoteRegion) {
  PhysicalMemoryMap map;
  MemoryHotplug hp{map};
  const sim::Time latency = hp.hot_add(4 * kGiB, 2 * kGiB);
  EXPECT_GT(latency, sim::Time::zero());
  auto r = map.region_at(4 * kGiB);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->type, RegionType::kRemoteRam);
  EXPECT_TRUE(r->online);
  EXPECT_EQ(hp.hot_added_bytes(), 2 * kGiB);
  EXPECT_EQ(hp.operations(), 1u);
}

TEST(HotplugTest, LatencyScalesWithSize) {
  PhysicalMemoryMap map;
  MemoryHotplug hp{map};
  const sim::Time one = hp.hot_add(0, kGiB);
  const sim::Time four = hp.hot_add(8 * kGiB, 4 * kGiB);
  // fixed + 4x per-GiB > fixed + 1x per-GiB, and sublinear in the fixed part.
  EXPECT_GT(four, one);
  const HotplugTiming t;
  EXPECT_EQ(one, t.fixed_cost + t.per_gib_cost);
  EXPECT_EQ(four, t.fixed_cost + t.per_gib_cost * 4);
}

TEST(HotplugTest, MisalignedRequestsRejected) {
  PhysicalMemoryMap map;
  MemoryHotplug hp{map};
  EXPECT_THROW(hp.hot_add(kGiB / 2, kGiB), std::invalid_argument);
  EXPECT_THROW(hp.hot_add(0, kGiB + 5), std::invalid_argument);
  EXPECT_THROW(hp.hot_add(0, 0), std::invalid_argument);
}

TEST(HotplugTest, OverlappingAddRejected) {
  PhysicalMemoryMap map;
  MemoryHotplug hp{map};
  hp.hot_add(0, 2 * kGiB);
  EXPECT_THROW(hp.hot_add(kGiB, kGiB), std::logic_error);
}

TEST(HotplugTest, HotRemoveExactRange) {
  PhysicalMemoryMap map;
  MemoryHotplug hp{map};
  hp.hot_add(0, 2 * kGiB);
  const sim::Time latency = hp.hot_remove(0, 2 * kGiB);
  EXPECT_GT(latency, sim::Time::zero());
  EXPECT_EQ(hp.hot_added_bytes(), 0u);
}

TEST(HotplugTest, HotRemoveValidation) {
  PhysicalMemoryMap map;
  MemoryHotplug hp{map};
  hp.hot_add(0, 2 * kGiB);
  EXPECT_THROW(hp.hot_remove(0, kGiB), std::logic_error);       // partial range
  EXPECT_THROW(hp.hot_remove(4 * kGiB, kGiB), std::logic_error);  // unknown
  // Local RAM cannot be hot-removed.
  MemoryRegion local;
  local.base = 8 * kGiB;
  local.size = kGiB;
  local.type = RegionType::kLocalRam;
  map.add_region(local);
  EXPECT_THROW(hp.hot_remove(8 * kGiB, kGiB), std::logic_error);
}

TEST(HotplugTest, BlockSizeMustBePowerOfTwo) {
  PhysicalMemoryMap map;
  EXPECT_THROW(MemoryHotplug(map, 3ull << 20), std::invalid_argument);
  EXPECT_THROW(MemoryHotplug(map, 0), std::invalid_argument);
  EXPECT_NO_THROW(MemoryHotplug(map, 128ull << 20));
}

TEST(HotplugTest, SmallerBlockGranularity) {
  PhysicalMemoryMap map;
  MemoryHotplug hp{map, 128ull << 20};  // 128 MiB sections
  EXPECT_NO_THROW(hp.hot_add(128ull << 20, 384ull << 20));
  EXPECT_EQ(hp.hot_added_bytes(), 384ull << 20);
}

TEST(BareMetalOsTest, BootsWithLocalRam) {
  hw::ComputeBrick brick{hw::BrickId{1}, hw::TrayId{1}};
  BareMetalOs os{brick};
  EXPECT_EQ(os.brick(), brick.id());
  EXPECT_EQ(os.local_bytes(), brick.local_memory_bytes());
  EXPECT_EQ(os.remote_bytes(), 0u);
  EXPECT_EQ(os.total_ram_bytes(), brick.local_memory_bytes());
}

TEST(BareMetalOsTest, AttachDetachRemoteMemory) {
  hw::ComputeBrick brick{hw::BrickId{1}, hw::TrayId{1}};
  BareMetalOs os{brick};
  const std::uint64_t base = brick.config().remote_window_base;
  const sim::Time add = os.attach_remote_memory(base, 2 * kGiB);
  EXPECT_GT(add, sim::Time::zero());
  EXPECT_EQ(os.remote_bytes(), 2 * kGiB);
  EXPECT_EQ(os.total_ram_bytes(), os.local_bytes() + 2 * kGiB);
  const sim::Time rm = os.detach_remote_memory(base, 2 * kGiB);
  EXPECT_GT(rm, sim::Time::zero());
  EXPECT_EQ(os.remote_bytes(), 0u);
}

TEST(BareMetalOsTest, MultipleAttachmentsCoexist) {
  hw::ComputeBrick brick{hw::BrickId{1}, hw::TrayId{1}};
  BareMetalOs os{brick};
  const std::uint64_t base = brick.config().remote_window_base;
  os.attach_remote_memory(base, kGiB);
  os.attach_remote_memory(base + kGiB, kGiB);
  os.attach_remote_memory(base + 4 * kGiB, 2 * kGiB);
  EXPECT_EQ(os.remote_bytes(), 4 * kGiB);
  EXPECT_EQ(os.hotplug().operations(), 3u);
}

}  // namespace
}  // namespace dredbox::os
