#include "sim/partition.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/contract.hpp"
#include "sim/digest.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace dredbox::sim {
namespace {

TEST(PartitionedKernelTest, ConnectRejectsBadLinks) {
  Simulator a{1}, b{2};
  PartitionedKernel kernel;
  kernel.add_shard(a);
  kernel.add_shard(b);
  EXPECT_THROW(kernel.connect(0, 0, Time::ns(1)), std::invalid_argument);
  EXPECT_THROW(kernel.connect(0, 2, Time::ns(1)), std::invalid_argument);
  EXPECT_THROW(kernel.connect(0, 1, Time::zero()), std::invalid_argument);
  EXPECT_EQ(kernel.connect(0, 1, Time::ns(5)), 0u);
  EXPECT_EQ(kernel.lookahead(0), Time::ns(5));
}

TEST(PartitionedKernelTest, RunWantsOneHorizonPerShard) {
  Simulator a{1};
  PartitionedKernel kernel;
  kernel.add_shard(a);
  EXPECT_THROW(kernel.run({}, 1), std::invalid_argument);
}

TEST(PartitionedKernelTest, SendInsideLookaheadWindowIsAContractViolation) {
  Simulator a{1}, b{2};
  PartitionedKernel kernel;
  kernel.add_shard(a);
  kernel.add_shard(b);
  const std::size_t link = kernel.connect(0, 1, Time::ns(10));
  // Sender's clock is 0: anything before 10 ns is inside the window.
  EXPECT_THROW(kernel.send(link, Time::ns(5), [] {}, "early"), ContractViolation);
  EXPECT_NO_THROW(kernel.send(link, Time::ns(10), [] {}, "on-time"));
}

TEST(PartitionedKernelTest, SingleShardDegeneratesToRunUntil) {
  Simulator sim{1};
  PartitionedKernel kernel;
  kernel.add_shard(sim);
  std::vector<int> order;
  sim.at(Time::ns(30), [&] { order.push_back(3); }, "c");
  sim.at(Time::ns(10), [&] { order.push_back(1); }, "a");
  sim.at(Time::ns(20), [&] { order.push_back(2); }, "b");
  const PartitionRunStats stats = kernel.run({Time::us(1)}, 4);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(stats.dispatched, 3u);
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_EQ(sim.now(), Time::us(1));
}

TEST(PartitionedKernelTest, EmptyShardsStillAlignToTheHorizon) {
  Simulator a{1}, b{2};
  PartitionedKernel kernel;
  kernel.add_shard(a);
  kernel.add_shard(b);
  kernel.connect(0, 1, Time::ns(1));
  const PartitionRunStats stats = kernel.run({Time::ms(1), Time::ms(2)}, 2);
  EXPECT_EQ(stats.dispatched, 0u);
  EXPECT_EQ(a.now(), Time::ms(1));
  EXPECT_EQ(b.now(), Time::ms(2));
}

TEST(PartitionedKernelTest, SameLinkSameTickPreservesSendOrder) {
  Simulator a{1}, b{2};
  PartitionedKernel kernel;
  kernel.add_shard(a);
  kernel.add_shard(b);
  const std::size_t link = kernel.connect(0, 1, Time::ns(10));
  std::vector<int> order;
  // Two messages on one link for the same tick: FIFO-within-timestamp
  // must hold across the partition cut exactly as inside one queue.
  kernel.send(link, Time::ns(50), [&] { order.push_back(1); }, "first");
  kernel.send(link, Time::ns(50), [&] { order.push_back(2); }, "second");
  kernel.run({Time::us(1), Time::us(1)}, 2);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(PartitionedKernelTest, CrossLinkTiesMergeByLinkId) {
  Simulator a{1}, b{2}, c{3};
  PartitionedKernel kernel;
  kernel.add_shard(a);
  kernel.add_shard(b);
  kernel.add_shard(c);
  const std::size_t low = kernel.connect(0, 2, Time::ns(10));   // link 0
  const std::size_t high = kernel.connect(1, 2, Time::ns(10));  // link 1
  std::vector<int> order;
  // Sent in the *opposite* order: the merge key (when, link, seq) must
  // still put the lower link id first — a pure function of wiring, not
  // of which sender's thread pushed first.
  kernel.send(high, Time::ns(50), [&] { order.push_back(1); }, "high-link");
  kernel.send(low, Time::ns(50), [&] { order.push_back(0); }, "low-link");
  kernel.run({Time::us(1), Time::us(1), Time::us(1)}, 3);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

/// A -> B -> C relay where B starts with an empty queue: A's event wakes
/// B, whose delivered action immediately forwards to C.
struct Relay {
  Relay() {
    kernel.add_shard(a);
    kernel.add_shard(b);
    kernel.add_shard(c);
    ab = kernel.connect(0, 1, Time::ns(1));
    bc = kernel.connect(1, 2, Time::ns(1));
    // C has its own traffic far past the relay, tempting an unsafe cap.
    c.at(Time::us(1), [] {}, "late");
    a.at(Time::ns(5), [this] { hop_a(); }, "origin");
  }
  void hop_a() {
    kernel.send(ab, a.now() + Time::ns(1), [this] { hop_b(); }, "relay1");
  }
  void hop_b() {
    kernel.send(bc, b.now() + Time::ns(1), [this] { c_received = c.now(); }, "relay2");
  }

  PartitionedKernel kernel;
  Simulator a{1}, b{2}, c{3};
  std::size_t ab = 0, bc = 0;
  Time c_received = Time::infinity();
};

// An empty-queue shard is not silent: a message can wake it and make it
// send. The naive per-neighbor-head horizon would let C run past B's
// induced send time (tripping the delivered-in-the-past contract); the
// transitive min-plus reach bound must hold it back.
TEST(PartitionedKernelTest, LookaheadIsTransitiveThroughEmptyShards) {
  for (std::size_t threads : {1u, 2u, 3u}) {
    Relay relay;
    relay.kernel.run({Time::us(2), Time::us(2), Time::us(2)}, threads);
    EXPECT_EQ(relay.c_received, Time::ns(7)) << "threads=" << threads;
  }
}

/// Two shards ping-pong a token; each shard records its own receipt
/// times (its events run only on the thread driving it that round, so
/// per-shard vectors need no locks). The digest over both sequences is
/// the determinism witness.
struct PingPong {
  explicit PingPong(Time lookahead) : lookahead_{lookahead} {
    kernel.add_shard(a);
    kernel.add_shard(b);
    ab = kernel.connect(0, 1, lookahead);
    ba = kernel.connect(1, 0, lookahead);
    a.at(lookahead, [this] { on_a(); }, "kick");
  }

  void on_a() {
    seen_a.push_back(a.now().ticks());
    if (remaining-- > 0) kernel.send(ab, a.now() + lookahead_, [this] { on_b(); }, "ping");
  }
  void on_b() {
    seen_b.push_back(b.now().ticks());
    kernel.send(ba, b.now() + lookahead_, [this] { on_a(); }, "pong");
  }

  std::uint64_t run(Time horizon, std::size_t threads) {
    kernel.run({horizon, horizon}, threads);
    Digest d;
    for (const auto t : seen_a) d.update("a").update(static_cast<std::uint64_t>(t));
    for (const auto t : seen_b) d.update("b").update(static_cast<std::uint64_t>(t));
    return d.value();
  }

  PartitionedKernel kernel;
  Simulator a{11}, b{22};
  std::size_t ab = 0, ba = 0;
  Time lookahead_;
  int remaining = 32;
  std::vector<std::int64_t> seen_a, seen_b;
};

TEST(PartitionedKernelTest, PingPongScheduleIsThreadCountInvariant) {
  const std::uint64_t reference = PingPong{Time::ns(500)}.run(Time::us(100), 1);
  for (std::size_t threads : {2u, 4u}) {
    EXPECT_EQ(PingPong{Time::ns(500)}.run(Time::us(100), threads), reference)
        << "threads=" << threads;
  }
  EXPECT_NE(PingPong{Time::ns(500)}.run(Time::us(1), 1), reference)
      << "digest must actually depend on the schedule";
}

TEST(PartitionedKernelTest, OneTickLookaheadStillConverges) {
  // lookahead = 1 ps: every round advances by the minimum possible
  // window, the worst case for both progress and the horizon math.
  const std::uint64_t reference = PingPong{Time::ps(1)}.run(Time::ps(200), 1);
  for (std::size_t threads : {2u, 4u}) {
    EXPECT_EQ(PingPong{Time::ps(1)}.run(Time::ps(200), threads), reference)
        << "threads=" << threads;
  }
}

TEST(PartitionedKernelTest, StatsCountRoundsAndMessages) {
  PingPong game{Time::ns(500)};
  const PartitionRunStats stats = game.kernel.run({Time::us(100), Time::us(100)}, 2);
  // 32 pings each answered by a pong, plus the final unanswered receipt.
  EXPECT_EQ(stats.messages, 64u);
  EXPECT_GE(stats.rounds, 1u);
  EXPECT_EQ(stats.threads, 2u);
  EXPECT_EQ(game.kernel.links(), 2u);
  EXPECT_EQ(game.kernel.shards(), 2u);
}

}  // namespace
}  // namespace dredbox::sim
