// Differential test oracle for the calendar-queue event kernel.
//
// The production sim::EventQueue (calendar buckets + overflow ladder rung +
// arena-pooled nodes) and the retained binary-heap ReferenceEventQueue are
// driven through one seeded, randomized operation sequence — schedule
// (ties, boundary-straddling times, far-future rung times, Time::infinity
// epoch times), cancel (live, fired, stale), reschedule-to-back-of-tie,
// dispatch_one, run_until, and cascaded scheduling from inside actions —
// and must agree, after every single operation, on the dispatch stream
// (tag, timestamp), now(), pending(), empty(), and next_time().
//
// Volume: 32 seeds x ~3,500 operations (> 1e5 ops total), each op derived
// from its own splitmix64 stream so a failure reproduces from the seed
// alone. The generator never consults queue internals to decide an op —
// both queues always receive byte-identical (time, tag) streams; calendar
// geometry only biases *which* adversarial time gets picked.

#include "reference_event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace dredbox::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::int64_t saturating_add(std::int64_t base, std::int64_t delta) {
  if (base > std::numeric_limits<std::int64_t>::max() - delta) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return base + delta;
}

/// Everything one queue records about its own run: the dispatch stream and
/// the live handles by logical tag (so the same logical event can be
/// cancelled in both queues even though their EventId encodings differ).
template <typename Queue, typename Id>
struct Driver {
  Queue queue;
  std::vector<std::pair<std::uint64_t, std::int64_t>> log;  // (tag, fire ticks)
  /// Every handle ever issued, by logical tag — never erased, so the
  /// harness can aim cancels at fired and already-cancelled events and
  /// assert both queues reject the stale handle.
  std::map<std::uint64_t, Id> issued;
  /// Tags still cancellable (erased on fire and on cancel attempt); used
  /// only to pick reschedule candidates.
  std::map<std::uint64_t, bool> live;

  void do_schedule(Time when, std::uint64_t tag) {
    // Fired events may deterministically spawn a child: tag-derived, so
    // both queues grow identical cascades without sharing any state.
    issued[tag] = queue.schedule(when, [this, tag] {
      log.emplace_back(tag, queue.now().ticks());
      live.erase(tag);
      if (tag % 7 == 3) {
        const std::uint64_t child = tag * 2 + 1'000'000'001ull;
        const std::int64_t delta = static_cast<std::int64_t>((tag % 5) * 250);
        do_schedule(Time::ps(saturating_add(queue.now().ticks(), delta)), child);
      }
    });
    live[tag] = true;
  }

  // Forwards the cancel to the queue whenever the tag was ever issued —
  // including tags that already fired or were cancelled, which must come
  // back false (stale-handle rejection is part of the contract under test).
  bool do_cancel(std::uint64_t tag) {
    auto it = issued.find(tag);
    if (it == issued.end()) return false;
    const bool ok = queue.cancel(it->second);
    live.erase(tag);
    return ok;
  }
};

using CalendarDriver = Driver<EventQueue, EventId>;
using ReferenceDriver = Driver<ReferenceEventQueue, ReferenceEventQueue::EventId>;

class DifferentialHarness {
 public:
  explicit DifferentialHarness(std::uint64_t seed) : rng_{seed} {}

  void run_ops(std::size_t op_count, bool tie_heavy) {
    for (std::size_t op = 0; op < op_count; ++op) {
      step(tie_heavy);
      ASSERT_TRUE(compare()) << " after op " << op;
    }
    // Drain both to quiescence: the full dispatch streams must match.
    const std::size_t a = calendar_.queue.run();
    const std::size_t b = reference_.queue.run();
    EXPECT_EQ(a, b) << "final drain dispatched different counts";
    ASSERT_TRUE(compare()) << " after final drain";
    // The null handle and a handle with an impossible generation must both
    // bounce off the calendar queue (the reference has no equivalent ids).
    EXPECT_FALSE(calendar_.queue.cancel(EventId{0}));
    EXPECT_FALSE(calendar_.queue.cancel(EventId{999}));
    EXPECT_TRUE(calendar_.queue.empty());
    EXPECT_EQ(calendar_.log.size(), reference_.log.size());
    calendar_.queue.check_invariants();
  }

  EventQueue& calendar_queue() { return calendar_.queue; }

 private:
  /// Picks an adversarial schedule time. Classes deliberately target the
  /// calendar geometry: exact ties, now() itself, both sides of a bucket
  /// boundary, just-inside / just-past the window (ladder spill), and the
  /// INT64_MAX epoch; the same literal time feeds both queues.
  Time pick_time(bool tie_heavy) {
    const auto stats = calendar_.queue.calendar_stats();
    const std::int64_t now = calendar_.queue.now().ticks();
    const std::uint64_t roll = splitmix64(rng_) % 100;
    if (tie_heavy && roll < 40 && !last_scheduled_.is_infinite() &&
        last_scheduled_ >= calendar_.queue.now()) {
      return last_scheduled_;  // exact tie with a still-pending timestamp
    }
    if (roll < 10) return Time::ps(now);  // tie with the firing instant
    if (roll < 25) {
      // Straddle a bucket boundary: one tick either side of the next
      // day's first tick.
      const std::int64_t boundary =
          saturating_add(now - ((now - stats.window_start_ps) % stats.bucket_width_ps),
                         stats.bucket_width_ps);
      return Time::ps(saturating_add(boundary, static_cast<std::int64_t>(roll % 3) - 1));
    }
    if (roll < 35) {
      // Ladder spill: just past the window end (overflow rung), and
      // occasionally far past it so the re-span must widen its days.
      const std::int64_t past =
          roll < 30 ? 1
                    : std::min(stats.bucket_width_ps, std::int64_t{1} << 40) * 100000;
      // now() can outrun the window when run_until() drains the queue and
      // jumps to a horizon beyond window_last; clamp so the pick stays legal.
      return Time::ps(std::max(saturating_add(stats.window_last_ps, past), now));
    }
    if (roll < 37) return Time::infinity();  // epoch-boundary: INT64_MAX
    // Plain near-future time inside (or shortly past) the current window.
    const std::int64_t delta =
        static_cast<std::int64_t>(splitmix64(rng_) % 2'000'000);  // <= 2 us
    return Time::ps(saturating_add(now, delta));
  }

  void step(bool tie_heavy) {
    const std::uint64_t roll = splitmix64(rng_) % 100;
    if (roll < 45 || calendar_.queue.pending() == 0) {
      const Time when = pick_time(tie_heavy);
      const std::uint64_t tag = next_tag_++;
      calendar_.do_schedule(when, tag);
      reference_.do_schedule(when, tag);
      last_scheduled_ = when;
      return;
    }
    if (roll < 60) {
      // Cancel: half the picks aim at live tags, the rest at fired or
      // never-issued tags (both queues must agree the handle is dead).
      const std::uint64_t tag = splitmix64(rng_) % next_tag_;
      EXPECT_EQ(calendar_.do_cancel(tag), reference_.do_cancel(tag)) << "cancel of tag " << tag;
      return;
    }
    if (roll < 70) {
      // Reschedule: cancel a live tag and re-issue it at a (possibly tied)
      // new time — the re-issue must join the back of any tie group.
      auto it = calendar_.live.lower_bound(splitmix64(rng_) % next_tag_);
      if (it == calendar_.live.end()) return;
      const std::uint64_t tag = it->first;
      const Time when = pick_time(tie_heavy);
      const bool a = calendar_.do_cancel(tag);
      const bool b = reference_.do_cancel(tag);
      EXPECT_EQ(a, b);
      if (a) {
        const std::uint64_t moved = tag + 2'000'000'000ull;
        calendar_.do_schedule(when, moved);
        reference_.do_schedule(when, moved);
        last_scheduled_ = when;
      }
      return;
    }
    if (roll < 90) {
      EXPECT_EQ(calendar_.queue.dispatch_one(), reference_.queue.dispatch_one());
      return;
    }
    // run_until a shared horizon (sometimes zero-width, sometimes far).
    const std::int64_t horizon =
        saturating_add(calendar_.queue.now().ticks(),
                       static_cast<std::int64_t>(splitmix64(rng_) % 3'000'000));
    EXPECT_EQ(calendar_.queue.run_until(Time::ps(horizon)),
              reference_.queue.run_until(Time::ps(horizon)));
  }

  testing::AssertionResult compare() {
    if (calendar_.queue.now() != reference_.queue.now()) {
      return testing::AssertionFailure()
             << "now() diverged: calendar=" << calendar_.queue.now().to_string()
             << " reference=" << reference_.queue.now().to_string();
    }
    if (calendar_.queue.pending() != reference_.queue.pending()) {
      return testing::AssertionFailure()
             << "pending() diverged: calendar=" << calendar_.queue.pending()
             << " reference=" << reference_.queue.pending();
    }
    if (calendar_.queue.empty() != reference_.queue.empty()) {
      return testing::AssertionFailure() << "empty() diverged";
    }
    if (calendar_.queue.next_time() != reference_.queue.next_time()) {
      return testing::AssertionFailure()
             << "next_time() diverged: calendar=" << calendar_.queue.next_time().to_string()
             << " reference=" << reference_.queue.next_time().to_string();
    }
    if (calendar_.log != reference_.log) {
      const std::size_t n = std::min(calendar_.log.size(), reference_.log.size());
      std::size_t i = 0;
      while (i < n && calendar_.log[i] == reference_.log[i]) ++i;
      auto failure = testing::AssertionFailure() << "dispatch streams diverged at index " << i;
      if (i < calendar_.log.size()) {
        failure << ": calendar fired tag " << calendar_.log[i].first << " at "
                << calendar_.log[i].second;
      }
      if (i < reference_.log.size()) {
        failure << ", reference fired tag " << reference_.log[i].first << " at "
                << reference_.log[i].second;
      }
      return failure;
    }
    return testing::AssertionSuccess();
  }

  CalendarDriver calendar_;
  ReferenceDriver reference_;
  std::uint64_t rng_;
  std::uint64_t next_tag_ = 1;
  Time last_scheduled_ = Time::infinity();
};

class EventQueueDifferentialTest : public testing::TestWithParam<std::uint64_t> {};

// 32 seeds x ~3,500 ops (plus the cascade children and the final drain)
// comfortably exceeds the 1e5-operation floor for the oracle.
TEST_P(EventQueueDifferentialTest, DispatchStreamMatchesReferenceHeap) {
  DifferentialHarness harness{GetParam() * 0x9e3779b97f4a7c15ull + 1};
  harness.run_ops(3500, /*tie_heavy=*/false);
}

TEST_P(EventQueueDifferentialTest, TieHeavyStreamMatchesReferenceHeap) {
  DifferentialHarness harness{GetParam() * 0xbf58476d1ce4e5b9ull + 7};
  harness.run_ops(1500, /*tie_heavy=*/true);
}

// The batch-collection path (armed kIdentity perturbation) must be
// dispatch-stream-identical to the plain reference heap too: collecting a
// tie group into a batch and dispatching it FIFO is not allowed to change
// anything observable.
TEST_P(EventQueueDifferentialTest, IdentityPerturbationMatchesReferenceHeap) {
  DifferentialHarness harness{GetParam() * 0x94d049bb133111ebull + 13};
  SchedulePerturbation identity;
  identity.mode = SchedulePerturbation::Mode::kIdentity;
  harness.calendar_queue().set_perturbation(identity);
  harness.run_ops(1200, /*tie_heavy=*/true);
  EXPECT_GT(harness.calendar_queue().batches_collected(), 0u)
      << "tie-heavy stream collected no multi-event batches; the variant "
         "did not exercise the batch path";
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueDifferentialTest,
                         testing::Range<std::uint64_t>(0, 32));

}  // namespace
}  // namespace dredbox::sim
