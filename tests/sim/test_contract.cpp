// Contract layer (src/sim/contract.hpp): DREDBOX_INVARIANT is always on;
// DREDBOX_REQUIRE / DREDBOX_ENSURE / DREDBOX_AUDIT_INVARIANT exist only in
// -DDREDBOX_AUDIT=ON builds and must compile out with *no side effects*
// otherwise. This file is built in both flavours by scripts/check.sh, so
// both halves of every #if here get exercised.

#include "sim/contract.hpp"

#include <gtest/gtest.h>

#include <string>

#include "hw/rmst.hpp"
#include "sim/event_queue.hpp"

namespace {

using dredbox::sim::ContractViolation;

TEST(ContractTest, InvariantPassesSilently) {
  EXPECT_NO_THROW(DREDBOX_INVARIANT(1 + 1 == 2));
  EXPECT_NO_THROW(DREDBOX_INVARIANT(true, "never shown"));
}

TEST(ContractTest, InvariantThrowsWithLocationAndMessage) {
  try {
    DREDBOX_INVARIANT(2 + 2 == 5, "arithmetic still works");
    FAIL() << "DREDBOX_INVARIANT(false) did not throw";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), "invariant");
    EXPECT_EQ(v.expression(), "2 + 2 == 5");
    EXPECT_EQ(v.message(), "arithmetic still works");
    EXPECT_NE(v.file().find("test_contract.cpp"), std::string::npos);
    EXPECT_GT(v.line(), 0);
    EXPECT_FALSE(v.function().empty());
    // what() alone must be enough to debug a violation from a CI log.
    const std::string what = v.what();
    EXPECT_NE(what.find("invariant violated"), std::string::npos);
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(what.find("arithmetic still works"), std::string::npos);
  }
}

TEST(ContractTest, InvariantMessageIsOptional) {
  try {
    DREDBOX_INVARIANT(false);
    FAIL() << "DREDBOX_INVARIANT(false) did not throw";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.message(), "");
  }
}

TEST(ContractTest, ViolationIsALogicError) {
  EXPECT_THROW(DREDBOX_INVARIANT(false), std::logic_error);
}

#if DREDBOX_AUDIT_ENABLED

TEST(ContractTest, RequireAndEnsureFireWhenAuditsOn) {
  EXPECT_NO_THROW(DREDBOX_REQUIRE(true));
  EXPECT_NO_THROW(DREDBOX_ENSURE(true));
  try {
    DREDBOX_REQUIRE(false, "caller broke the deal");
    FAIL() << "DREDBOX_REQUIRE(false) did not throw";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), "precondition");
    EXPECT_EQ(v.message(), "caller broke the deal");
  }
  try {
    DREDBOX_ENSURE(false);
    FAIL() << "DREDBOX_ENSURE(false) did not throw";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), "postcondition");
  }
}

TEST(ContractTest, AuditInvariantRunsStatementWhenOn) {
  int runs = 0;
  DREDBOX_AUDIT_INVARIANT(++runs);
  EXPECT_EQ(runs, 1);
}

#else  // !DREDBOX_AUDIT_ENABLED

TEST(ContractTest, GatedChecksCompileOutWithoutSideEffects) {
  int evaluations = 0;
  // In an audit-off build none of these operands may run: the macros
  // expand to static_cast<void>(0), not to a discarded expression.
  DREDBOX_REQUIRE(++evaluations > 0, std::string(static_cast<std::size_t>(++evaluations), 'x'));
  DREDBOX_ENSURE(++evaluations > 0);
  DREDBOX_AUDIT_INVARIANT(++evaluations);
  EXPECT_EQ(evaluations, 0);
}

TEST(ContractTest, GatedChecksIgnoreFalseConditionsWhenOff) {
  EXPECT_NO_THROW(DREDBOX_REQUIRE(false, "unseen"));
  EXPECT_NO_THROW(DREDBOX_ENSURE(false));
}

#endif  // DREDBOX_AUDIT_ENABLED

// The deep audits are callable directly in every build flavour (their
// bodies use the always-on DREDBOX_INVARIANT); only the per-mutation call
// sites are gated. A healthy object must audit clean.

TEST(ContractTest, HealthyEventQueueAuditsClean) {
  dredbox::sim::EventQueue queue;
  EXPECT_NO_THROW(queue.check_invariants());
  int fired = 0;
  const auto a = queue.schedule(dredbox::sim::Time::ns(10), [&] { ++fired; });
  queue.schedule(dredbox::sim::Time::ns(20), [&] { ++fired; });
  EXPECT_NO_THROW(queue.check_invariants());
  queue.cancel(a);
  EXPECT_NO_THROW(queue.check_invariants());
  while (queue.dispatch_one()) {
  }
  EXPECT_NO_THROW(queue.check_invariants());
  EXPECT_EQ(fired, 1);
}

TEST(ContractTest, HealthyRmstAuditsClean) {
  dredbox::hw::Rmst rmst{4};
  EXPECT_NO_THROW(rmst.check_invariants());
  rmst.insert({.segment = dredbox::hw::SegmentId{1},
               .base = 0x1000,
               .size = 0x1000,
               .dest_brick = dredbox::hw::BrickId{7},
               .dest_base = 0});
  EXPECT_NO_THROW(rmst.check_invariants());
}

}  // namespace
