#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace dredbox::sim {
namespace {

TEST(TimeTest, DefaultIsZero) {
  Time t;
  EXPECT_EQ(t.ticks(), 0);
  EXPECT_EQ(t, Time::zero());
}

TEST(TimeTest, UnitConstructorsAgree) {
  EXPECT_EQ(Time::ns(1).ticks(), 1000);
  EXPECT_EQ(Time::us(1), Time::ns(1000));
  EXPECT_EQ(Time::ms(1), Time::us(1000));
  EXPECT_EQ(Time::sec(1), Time::ms(1000));
}

TEST(TimeTest, FractionalValuesRound) {
  EXPECT_EQ(Time::ns(0.5).ticks(), 500);
  EXPECT_EQ(Time::ns(0.0004).ticks(), 0);   // below a tick
  EXPECT_EQ(Time::ns(0.0006).ticks(), 1);   // rounds up
}

TEST(TimeTest, Arithmetic) {
  const Time a = Time::ns(100);
  const Time b = Time::ns(40);
  EXPECT_EQ((a + b).as_ns(), 140.0);
  EXPECT_EQ((a - b).as_ns(), 60.0);
  EXPECT_EQ((a * 3).as_ns(), 300.0);
  EXPECT_EQ((a / 4).as_ns(), 25.0);
}

TEST(TimeTest, CompoundAssignment) {
  Time t = Time::ns(10);
  t += Time::ns(5);
  EXPECT_EQ(t, Time::ns(15));
  t -= Time::ns(10);
  EXPECT_EQ(t, Time::ns(5));
}

TEST(TimeTest, Ordering) {
  EXPECT_LT(Time::ns(1), Time::us(1));
  EXPECT_GT(Time::sec(1), Time::ms(999));
  EXPECT_LE(Time::zero(), Time::zero());
}

TEST(TimeTest, ConversionRoundTrip) {
  const Time t = Time::us(123.456);
  EXPECT_NEAR(t.as_us(), 123.456, 1e-9);
  EXPECT_NEAR(t.as_ns(), 123456.0, 1e-6);
  EXPECT_NEAR(t.as_sec(), 123.456e-6, 1e-15);
}

TEST(TimeTest, InfinityBehaviour) {
  EXPECT_TRUE(Time::infinity().is_infinite());
  EXPECT_FALSE(Time::sec(1e6).is_infinite());
  EXPECT_GT(Time::infinity(), Time::sec(1e6));
  EXPECT_EQ(Time::infinity().to_string(), "+inf");
}

TEST(TimeTest, NegativeDurationsAllowed) {
  const Time d = Time::ns(10) - Time::ns(25);
  EXPECT_EQ(d.as_ns(), -15.0);
}

TEST(TimeTest, ScaleHelper) {
  EXPECT_EQ(scale(Time::ns(100), 0.5), Time::ns(50));
  EXPECT_EQ(scale(Time::ns(100), 2.0), Time::ns(200));
  EXPECT_EQ(scale(Time::zero(), 123.0), Time::zero());
}

TEST(TimeTest, ToStringSelectsUnit) {
  EXPECT_EQ(Time::ps(500).to_string(), "500 ps");
  EXPECT_NE(Time::ns(5).to_string().find("ns"), std::string::npos);
  EXPECT_NE(Time::us(5).to_string().find("us"), std::string::npos);
  EXPECT_NE(Time::ms(5).to_string().find("ms"), std::string::npos);
  EXPECT_NE(Time::sec(5).to_string().find("s"), std::string::npos);
}

}  // namespace
}  // namespace dredbox::sim
