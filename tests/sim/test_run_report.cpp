#include "sim/run_report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/metrics.hpp"
#include "sim/trace.hpp"

namespace dredbox::sim {
namespace {

RunReport small_report() {
  RunReport report;
  report.tag("unit")
      .seed(7)
      .config_digest(0xabcd)
      .determinism_digest(0x1234)
      .fault_plan("link-flap@1ms+2ms")
      .duration(Time::ms(3))
      .note("reads", std::uint64_t{16})
      .note("p99_us", 12.5);
  return report;
}

TEST(RunReportTest, CarriesSchemaAndHeaderFields) {
  const std::string json = small_report().to_json();
  EXPECT_NE(json.find("\"schema\": \"dredbox-report/v1\""), std::string::npos);
  EXPECT_NE(json.find("\"tag\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"config_digest\": \"000000000000abcd\""), std::string::npos);
  EXPECT_NE(json.find("\"determinism_digest\": \"0000000000001234\""), std::string::npos);
  EXPECT_NE(json.find("\"fault_plan\": \"link-flap@1ms+2ms\""), std::string::npos);
  EXPECT_NE(json.find("\"reads\": 16"), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\": 12.5"), std::string::npos);
}

TEST(RunReportTest, RendersByteIdentically) {
  EXPECT_EQ(small_report().to_json(), small_report().to_json());
}

TEST(RunReportTest, MetricsFinalsAreNameSorted) {
  metrics::MetricsRegistry registry;
  registry.enable();
  registry.counter("z.last.counter").add(2);
  registry.gauge("a.first.gauge").set(1.5);
  RunReport report;
  report.metrics(registry);
  const std::string json = report.to_json();
  const std::size_t first = json.find("a.first.gauge");
  const std::size_t last = json.find("z.last.counter");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(last, std::string::npos);
  EXPECT_LT(first, last);
}

TEST(RunReportTest, TracesEmbedSpanTrees) {
  Tracer tracer;
  tracer.seed_trace_ids(3);
  tracer.enable();
  const TraceContext root = tracer.begin_trace();
  const TraceContext child = tracer.child_of(root);
  tracer.record_span(Time::us(0), Time::us(40), TraceCategory::kApplication, "op read", {},
                     root);
  tracer.record_span(Time::us(5), Time::us(20), TraceCategory::kFabric, "retry backoff", {},
                     child);

  RunReport report;
  report.traces(tracer);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"tracing\": true"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"op read\""), std::string::npos);
  EXPECT_NE(json.find("\"children\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"retry backoff\""), std::string::npos);
  // Tracer accounting rides along.
  EXPECT_NE(json.find("\"retained\":2"), std::string::npos);
}

TEST(RunReportTest, SlowestTracesAreDurationSorted) {
  Tracer tracer;
  tracer.enable();
  const TraceContext fast = tracer.begin_trace();
  const TraceContext slow = tracer.begin_trace();
  tracer.record_span(Time::us(0), Time::us(5), TraceCategory::kFabric, "fast op", {}, fast);
  tracer.record_span(Time::us(0), Time::us(500), TraceCategory::kFabric, "slow op", {}, slow);
  RunReport report;
  report.traces(tracer, /*top_n=*/2);
  const std::string json = report.to_json();
  const std::size_t slow_at = json.find("slow op");
  const std::size_t fast_at = json.find("fast op");
  ASSERT_NE(slow_at, std::string::npos);
  ASSERT_NE(fast_at, std::string::npos);
  EXPECT_LT(slow_at, fast_at);
}

TEST(RunReportTest, TopNTruncates) {
  Tracer tracer;
  tracer.enable();
  for (int i = 0; i < 5; ++i) {
    tracer.record_span(Time::us(0), Time::us(10 + i), TraceCategory::kFabric,
                       "op " + std::to_string(i), {}, tracer.begin_trace());
  }
  RunReport report;
  report.traces(tracer, /*top_n=*/2);
  const std::string json = report.to_json();
  std::size_t count = 0;
  for (std::size_t pos = json.find("\"trace_id\""); pos != std::string::npos;
       pos = json.find("\"trace_id\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST(RunReportTest, KernelProfileOnlyWhenAdded) {
  EXPECT_EQ(small_report().to_json().find("kernel_profile"), std::string::npos);

  EventQueue queue;
  queue.enable_profiling();
  queue.schedule(Time::us(1), [] {}, "test.tick");
  queue.run_until(Time::us(2));
  RunReport report = small_report();
  report.kernel_profile(queue);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"kernel_profile\""), std::string::npos);
  EXPECT_NE(json.find("\"test.tick\""), std::string::npos);
  EXPECT_NE(json.find("\"dispatches\":1"), std::string::npos);
}

TEST(RunReportTest, TimeseriesSectionRendersPeriodAndPoints) {
  TimeSeriesSet set;
  set.series("a.b.c", SeriesKind::kGauge, 4).append(Time::us(250), 2.0);
  RunReport report;
  report.timeseries(set, Time::us(250));
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"period_us\":250.000"), std::string::npos);
  EXPECT_NE(json.find("\"a.b.c\""), std::string::npos);
}

class ReportFileEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv(kReportFileEnv);
    std::remove(path_.c_str());
  }
  const std::string path_ = ::testing::TempDir() + "dredbox_run_report_test.json";
};

TEST_F(ReportFileEnvTest, NoOpWhenUnset) {
  ::unsetenv(kReportFileEnv);
  EXPECT_FALSE(small_report().maybe_write());
}

TEST_F(ReportFileEnvTest, WritesJsonWhenSet) {
  ::setenv(kReportFileEnv, path_.c_str(), /*overwrite=*/1);
  const RunReport report = small_report();
  ASSERT_TRUE(report.maybe_write());
  std::ifstream in{path_};
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), report.to_json());
}

}  // namespace
}  // namespace dredbox::sim
