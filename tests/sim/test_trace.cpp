#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dredbox::sim {
namespace {

TEST(TracerTest, DisabledByDefault) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.record(Time::ms(1), TraceCategory::kFabric, "ignored");
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, RecordsWhenEnabled) {
  Tracer tracer;
  tracer.enable();
  tracer.record(Time::ms(1), TraceCategory::kFabric, "attached");
  tracer.record(Time::ms(2), TraceCategory::kPower, "swept");
  ASSERT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.events()[0].message, "attached");
  EXPECT_EQ(tracer.events()[1].category, TraceCategory::kPower);
}

TEST(TracerTest, FilterByCategory) {
  Tracer tracer;
  tracer.enable();
  tracer.record(Time::ms(1), TraceCategory::kFabric, "a");
  tracer.record(Time::ms(2), TraceCategory::kPower, "b");
  tracer.record(Time::ms(3), TraceCategory::kFabric, "c");
  const auto fabric = tracer.filter(TraceCategory::kFabric);
  ASSERT_EQ(fabric.size(), 2u);
  EXPECT_EQ(fabric[0].message, "a");
  EXPECT_EQ(fabric[1].message, "c");
}

TEST(TracerTest, CapacityEvictsOldest) {
  Tracer tracer{3};
  tracer.enable();
  for (int i = 0; i < 5; ++i) {
    tracer.record(Time::ms(i), TraceCategory::kApplication, std::to_string(i));
  }
  EXPECT_EQ(tracer.size(), 3u);
  EXPECT_EQ(tracer.dropped(), 2u);
  EXPECT_EQ(tracer.events().front().message, "2");
}

TEST(TracerTest, RingWrapKeepsRecordingOrder) {
  Tracer tracer{3};
  tracer.enable();
  for (int i = 0; i < 8; ++i) {
    tracer.record(Time::ms(i), TraceCategory::kApplication, std::to_string(i));
  }
  ASSERT_EQ(tracer.size(), 3u);
  // Oldest retained first, regardless of where the ring head points.
  std::vector<std::string> seen;
  for (const TraceEvent& e : tracer.events()) seen.push_back(e.message);
  EXPECT_EQ(seen, (std::vector<std::string>{"5", "6", "7"}));
  EXPECT_EQ(tracer.events().front().message, "5");
  EXPECT_EQ(tracer.events().back().message, "7");
  EXPECT_EQ(tracer.events()[1].message, "6");
  EXPECT_THROW(tracer.event(3), std::out_of_range);
}

TEST(TracerTest, DroppedSplitsDisabledFromEvicted) {
  Tracer tracer{2};
  // Disabled records count separately from capacity evictions.
  tracer.record(Time::ms(1), TraceCategory::kFabric, "while disabled");
  EXPECT_EQ(tracer.dropped_while_disabled(), 1u);
  EXPECT_EQ(tracer.evicted(), 0u);

  tracer.enable();
  tracer.record(Time::ms(2), TraceCategory::kFabric, "a");
  tracer.record(Time::ms(3), TraceCategory::kFabric, "b");
  tracer.record(Time::ms(4), TraceCategory::kFabric, "c");  // evicts "a"
  EXPECT_EQ(tracer.dropped_while_disabled(), 1u);
  EXPECT_EQ(tracer.evicted(), 1u);
  EXPECT_EQ(tracer.dropped(), 2u);
}

TEST(TracerTest, RecordsSpansWithArgs) {
  Tracer tracer;
  tracer.enable();
  tracer.record_span(Time::ms(10), Time::ms(35), TraceCategory::kHotplug, "hot-add",
                     {{"bytes", "1073741824"}});
  ASSERT_EQ(tracer.size(), 1u);
  const TraceEvent& e = tracer.events().front();
  EXPECT_TRUE(e.span);
  EXPECT_EQ(e.when, Time::ms(10));
  EXPECT_EQ(e.duration, Time::ms(25));
  EXPECT_EQ(e.end(), Time::ms(35));
  ASSERT_EQ(e.args.size(), 1u);
  EXPECT_EQ(e.args[0].first, "bytes");
  const std::string out = tracer.to_string();
  EXPECT_NE(out.find("took"), std::string::npos);
  EXPECT_NE(out.find("bytes=1073741824"), std::string::npos);
}

TEST(TracerTest, BackwardsSpanClampsToInstant) {
  Tracer tracer;
  tracer.enable();
  tracer.record_span(Time::ms(10), Time::ms(5), TraceCategory::kFabric, "confused");
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_FALSE(tracer.events().front().span);
  EXPECT_EQ(tracer.events().front().duration, Time::zero());
}

TEST(TracerTest, ToStringRendersTimeline) {
  Tracer tracer;
  tracer.enable();
  tracer.record(Time::ms(5), TraceCategory::kHotplug, "hot-added 2 GiB");
  const std::string out = tracer.to_string();
  EXPECT_NE(out.find("hotplug"), std::string::npos);
  EXPECT_NE(out.find("hot-added 2 GiB"), std::string::npos);
  EXPECT_NE(out.find("5 ms"), std::string::npos);
}

TEST(TracerTest, ClearResets) {
  Tracer tracer{2};
  tracer.enable();
  tracer.record(Time::ms(1), TraceCategory::kFabric, "a");
  tracer.record(Time::ms(2), TraceCategory::kFabric, "b");
  tracer.record(Time::ms(3), TraceCategory::kFabric, "c");
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, ZeroCapacityRejected) {
  EXPECT_THROW(Tracer{0}, std::invalid_argument);
}

TEST(TracerTest, CategoryNames) {
  EXPECT_EQ(to_string(TraceCategory::kMigration), "migration");
  EXPECT_EQ(to_string(TraceCategory::kOrchestration), "orchestration");
}

TEST(TraceContextTest, DefaultIsUntraced) {
  TraceContext ctx;
  EXPECT_FALSE(ctx.valid());
  EXPECT_FALSE(ctx.root());
}

TEST(TraceContextTest, BeginTraceMintsRoots) {
  Tracer tracer;
  tracer.enable();
  const TraceContext a = tracer.begin_trace();
  const TraceContext b = tracer.begin_trace();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(a.root());
  EXPECT_NE(a.trace_id, 0u);
  EXPECT_NE(a.span_id, 0u);
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_NE(a.span_id, b.span_id);
}

TEST(TraceContextTest, ChildSharesTraceAndPointsAtParent) {
  Tracer tracer;
  tracer.enable();
  const TraceContext root = tracer.begin_trace();
  const TraceContext child = tracer.child_of(root);
  EXPECT_TRUE(child.valid());
  EXPECT_FALSE(child.root());
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_EQ(child.parent_span_id, root.span_id);
  EXPECT_NE(child.span_id, root.span_id);
}

TEST(TraceContextTest, ChildOfInvalidParentIsInvalid) {
  Tracer tracer;
  tracer.enable();
  EXPECT_FALSE(tracer.child_of(TraceContext{}).valid());
}

TEST(TraceContextTest, DisabledTracerMintsNothing) {
  Tracer tracer;
  EXPECT_FALSE(tracer.begin_trace().valid());

  // Disabled minting must not consume ids: the next enabled mint matches
  // what a tracer that was never disabled would have produced.
  Tracer reference;
  reference.seed_trace_ids(7);
  reference.enable();
  const TraceContext want = reference.begin_trace();

  Tracer toggled;
  toggled.seed_trace_ids(7);
  (void)toggled.begin_trace();  // disabled: dropped, no id consumed
  toggled.enable();
  const TraceContext got = toggled.begin_trace();
  EXPECT_EQ(got.trace_id, want.trace_id);
  EXPECT_EQ(got.span_id, want.span_id);
}

TEST(TraceContextTest, IdStreamIsSeedDeterministic) {
  Tracer a, b, c;
  a.seed_trace_ids(42);
  b.seed_trace_ids(42);
  c.seed_trace_ids(43);
  a.enable();
  b.enable();
  c.enable();
  const TraceContext ca = a.begin_trace();
  const TraceContext cb = b.begin_trace();
  const TraceContext cc = c.begin_trace();
  EXPECT_EQ(ca.trace_id, cb.trace_id);
  EXPECT_EQ(ca.span_id, cb.span_id);
  EXPECT_NE(ca.trace_id, cc.trace_id);
}

TEST(TraceContextTest, RecordSpanCarriesContext) {
  Tracer tracer;
  tracer.enable();
  const TraceContext root = tracer.begin_trace();
  const TraceContext child = tracer.child_of(root);
  tracer.record_span(Time::us(1), Time::us(9), TraceCategory::kFabric, "remote read", {},
                     root);
  tracer.record_span(Time::us(2), Time::us(5), TraceCategory::kFabric, "retry backoff", {},
                     child);
  ASSERT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.events()[0].ctx.span_id, root.span_id);
  EXPECT_EQ(tracer.events()[1].ctx.parent_span_id, root.span_id);
  EXPECT_EQ(tracer.events()[1].ctx.trace_id, root.trace_id);
}

}  // namespace
}  // namespace dredbox::sim
