#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dredbox::sim {
namespace {

TEST(TracerTest, DisabledByDefault) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.record(Time::ms(1), TraceCategory::kFabric, "ignored");
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, RecordsWhenEnabled) {
  Tracer tracer;
  tracer.enable();
  tracer.record(Time::ms(1), TraceCategory::kFabric, "attached");
  tracer.record(Time::ms(2), TraceCategory::kPower, "swept");
  ASSERT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.events()[0].message, "attached");
  EXPECT_EQ(tracer.events()[1].category, TraceCategory::kPower);
}

TEST(TracerTest, FilterByCategory) {
  Tracer tracer;
  tracer.enable();
  tracer.record(Time::ms(1), TraceCategory::kFabric, "a");
  tracer.record(Time::ms(2), TraceCategory::kPower, "b");
  tracer.record(Time::ms(3), TraceCategory::kFabric, "c");
  const auto fabric = tracer.filter(TraceCategory::kFabric);
  ASSERT_EQ(fabric.size(), 2u);
  EXPECT_EQ(fabric[0].message, "a");
  EXPECT_EQ(fabric[1].message, "c");
}

TEST(TracerTest, CapacityEvictsOldest) {
  Tracer tracer{3};
  tracer.enable();
  for (int i = 0; i < 5; ++i) {
    tracer.record(Time::ms(i), TraceCategory::kApplication, std::to_string(i));
  }
  EXPECT_EQ(tracer.size(), 3u);
  EXPECT_EQ(tracer.dropped(), 2u);
  EXPECT_EQ(tracer.events().front().message, "2");
}

TEST(TracerTest, RingWrapKeepsRecordingOrder) {
  Tracer tracer{3};
  tracer.enable();
  for (int i = 0; i < 8; ++i) {
    tracer.record(Time::ms(i), TraceCategory::kApplication, std::to_string(i));
  }
  ASSERT_EQ(tracer.size(), 3u);
  // Oldest retained first, regardless of where the ring head points.
  std::vector<std::string> seen;
  for (const TraceEvent& e : tracer.events()) seen.push_back(e.message);
  EXPECT_EQ(seen, (std::vector<std::string>{"5", "6", "7"}));
  EXPECT_EQ(tracer.events().front().message, "5");
  EXPECT_EQ(tracer.events().back().message, "7");
  EXPECT_EQ(tracer.events()[1].message, "6");
  EXPECT_THROW(tracer.event(3), std::out_of_range);
}

TEST(TracerTest, DroppedSplitsDisabledFromEvicted) {
  Tracer tracer{2};
  // Disabled records count separately from capacity evictions.
  tracer.record(Time::ms(1), TraceCategory::kFabric, "while disabled");
  EXPECT_EQ(tracer.dropped_while_disabled(), 1u);
  EXPECT_EQ(tracer.evicted(), 0u);

  tracer.enable();
  tracer.record(Time::ms(2), TraceCategory::kFabric, "a");
  tracer.record(Time::ms(3), TraceCategory::kFabric, "b");
  tracer.record(Time::ms(4), TraceCategory::kFabric, "c");  // evicts "a"
  EXPECT_EQ(tracer.dropped_while_disabled(), 1u);
  EXPECT_EQ(tracer.evicted(), 1u);
  EXPECT_EQ(tracer.dropped(), 2u);
}

TEST(TracerTest, RecordsSpansWithArgs) {
  Tracer tracer;
  tracer.enable();
  tracer.record_span(Time::ms(10), Time::ms(35), TraceCategory::kHotplug, "hot-add",
                     {{"bytes", "1073741824"}});
  ASSERT_EQ(tracer.size(), 1u);
  const TraceEvent& e = tracer.events().front();
  EXPECT_TRUE(e.span);
  EXPECT_EQ(e.when, Time::ms(10));
  EXPECT_EQ(e.duration, Time::ms(25));
  EXPECT_EQ(e.end(), Time::ms(35));
  ASSERT_EQ(e.args.size(), 1u);
  EXPECT_EQ(e.args[0].first, "bytes");
  const std::string out = tracer.to_string();
  EXPECT_NE(out.find("took"), std::string::npos);
  EXPECT_NE(out.find("bytes=1073741824"), std::string::npos);
}

TEST(TracerTest, BackwardsSpanClampsToInstant) {
  Tracer tracer;
  tracer.enable();
  tracer.record_span(Time::ms(10), Time::ms(5), TraceCategory::kFabric, "confused");
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_FALSE(tracer.events().front().span);
  EXPECT_EQ(tracer.events().front().duration, Time::zero());
}

TEST(TracerTest, ToStringRendersTimeline) {
  Tracer tracer;
  tracer.enable();
  tracer.record(Time::ms(5), TraceCategory::kHotplug, "hot-added 2 GiB");
  const std::string out = tracer.to_string();
  EXPECT_NE(out.find("hotplug"), std::string::npos);
  EXPECT_NE(out.find("hot-added 2 GiB"), std::string::npos);
  EXPECT_NE(out.find("5 ms"), std::string::npos);
}

TEST(TracerTest, ClearResets) {
  Tracer tracer{2};
  tracer.enable();
  tracer.record(Time::ms(1), TraceCategory::kFabric, "a");
  tracer.record(Time::ms(2), TraceCategory::kFabric, "b");
  tracer.record(Time::ms(3), TraceCategory::kFabric, "c");
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, ZeroCapacityRejected) {
  EXPECT_THROW(Tracer{0}, std::invalid_argument);
}

TEST(TracerTest, CategoryNames) {
  EXPECT_EQ(to_string(TraceCategory::kMigration), "migration");
  EXPECT_EQ(to_string(TraceCategory::kOrchestration), "orchestration");
}

}  // namespace
}  // namespace dredbox::sim
