#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace dredbox::sim {
namespace {

TEST(TracerTest, DisabledByDefault) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.record(Time::ms(1), TraceCategory::kFabric, "ignored");
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, RecordsWhenEnabled) {
  Tracer tracer;
  tracer.enable();
  tracer.record(Time::ms(1), TraceCategory::kFabric, "attached");
  tracer.record(Time::ms(2), TraceCategory::kPower, "swept");
  ASSERT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.events()[0].message, "attached");
  EXPECT_EQ(tracer.events()[1].category, TraceCategory::kPower);
}

TEST(TracerTest, FilterByCategory) {
  Tracer tracer;
  tracer.enable();
  tracer.record(Time::ms(1), TraceCategory::kFabric, "a");
  tracer.record(Time::ms(2), TraceCategory::kPower, "b");
  tracer.record(Time::ms(3), TraceCategory::kFabric, "c");
  const auto fabric = tracer.filter(TraceCategory::kFabric);
  ASSERT_EQ(fabric.size(), 2u);
  EXPECT_EQ(fabric[0].message, "a");
  EXPECT_EQ(fabric[1].message, "c");
}

TEST(TracerTest, CapacityEvictsOldest) {
  Tracer tracer{3};
  tracer.enable();
  for (int i = 0; i < 5; ++i) {
    tracer.record(Time::ms(i), TraceCategory::kApplication, std::to_string(i));
  }
  EXPECT_EQ(tracer.size(), 3u);
  EXPECT_EQ(tracer.dropped(), 2u);
  EXPECT_EQ(tracer.events().front().message, "2");
}

TEST(TracerTest, ToStringRendersTimeline) {
  Tracer tracer;
  tracer.enable();
  tracer.record(Time::ms(5), TraceCategory::kHotplug, "hot-added 2 GiB");
  const std::string out = tracer.to_string();
  EXPECT_NE(out.find("hotplug"), std::string::npos);
  EXPECT_NE(out.find("hot-added 2 GiB"), std::string::npos);
  EXPECT_NE(out.find("5 ms"), std::string::npos);
}

TEST(TracerTest, ClearResets) {
  Tracer tracer{2};
  tracer.enable();
  tracer.record(Time::ms(1), TraceCategory::kFabric, "a");
  tracer.record(Time::ms(2), TraceCategory::kFabric, "b");
  tracer.record(Time::ms(3), TraceCategory::kFabric, "c");
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, ZeroCapacityRejected) {
  EXPECT_THROW(Tracer{0}, std::invalid_argument);
}

TEST(TracerTest, CategoryNames) {
  EXPECT_EQ(to_string(TraceCategory::kMigration), "migration");
  EXPECT_EQ(to_string(TraceCategory::kOrchestration), "orchestration");
}

}  // namespace
}  // namespace dredbox::sim
