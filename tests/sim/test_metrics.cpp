#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace dredbox::sim::metrics {
namespace {

TEST(MetricsTest, DisabledRegistryRecordsNothing) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.enabled());
  auto& c = registry.counter("hw.tgl.lookup_hits");
  auto& g = registry.gauge("optics.circuits.active");
  auto& h = registry.histogram("memsys.read.latency_ns", 0.0, 1000.0, 10);
  c.add(5);
  g.set(3.0);
  h.observe(100.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_FALSE(g.written());
  EXPECT_EQ(h.count(), 0u);
}

TEST(MetricsTest, CounterAccumulates) {
  MetricsRegistry registry;
  registry.enable();
  auto& c = registry.counter("orch.sdm.scale_ups");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
}

TEST(MetricsTest, GaugeSetAndDelta) {
  MetricsRegistry registry;
  registry.enable();
  auto& g = registry.gauge("hyp.vms.running");
  g.add(1.0);
  g.add(1.0);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
  g.set(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  EXPECT_TRUE(g.written());
}

TEST(MetricsTest, GetOrCreateReturnsSameInstrument) {
  MetricsRegistry registry;
  registry.enable();
  auto& a = registry.counter("memsys.fabric.attaches");
  auto& b = registry.counter("memsys.fabric.attaches");
  EXPECT_EQ(&a, &b);
  a.add();
  EXPECT_EQ(b.value(), 1u);
  // A histogram lookup must repeat the original bucket layout; asking for
  // a different one is a naming collision and is rejected by name.
  auto& h1 = registry.histogram("x.latency.ns", 0.0, 100.0, 10);
  auto& h2 = registry.histogram("x.latency.ns", 0.0, 100.0, 10);
  EXPECT_EQ(&h1, &h2);
  try {
    registry.histogram("x.latency.ns", 0.0, 999.0, 50);
    FAIL() << "mismatched re-registration must throw";
  } catch (const std::logic_error& error) {
    EXPECT_NE(std::string{error.what()}.find("x.latency.ns"), std::string::npos);
  }
}

TEST(MetricsTest, CrossTypeNameCollisionThrows) {
  MetricsRegistry registry;
  registry.counter("the.name");
  EXPECT_THROW(registry.gauge("the.name"), std::logic_error);
  EXPECT_THROW(registry.histogram("the.name", 0.0, 1.0, 4), std::logic_error);
}

TEST(MetricsTest, HistogramAggregatesAndBuckets) {
  MetricsRegistry registry;
  registry.enable();
  auto& h = registry.histogram("memsys.read.latency_ns", 0.0, 100.0, 10);
  for (int i = 0; i < 10; ++i) h.observe(10.0 * i + 5.0);  // one per bucket
  EXPECT_EQ(h.count(), 10u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.0);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 95.0);
  for (std::size_t b = 0; b < h.bucket_count(); ++b) EXPECT_EQ(h.bucket(b), 1u);
  // Out-of-range samples clamp into the edge buckets but keep exact
  // aggregates.
  h.observe(1e9);
  EXPECT_EQ(h.bucket(9), 2u);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
}

TEST(MetricsTest, HistogramQuantiles) {
  MetricsRegistry registry;
  registry.enable();
  auto& h = registry.histogram("q", 0.0, 100.0, 100);
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i) - 0.5);
  EXPECT_EQ(h.quantile(0.0), h.min());
  EXPECT_EQ(h.quantile(1.0), h.max());
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 2.0);
  // Empty histogram quantile is 0.
  auto& empty = registry.histogram("empty", 0.0, 1.0, 4);
  EXPECT_EQ(empty.quantile(0.5), 0.0);
}

TEST(MetricsTest, NamesAndFindersCoverAllTypes) {
  MetricsRegistry registry;
  registry.counter("b.counter");
  registry.gauge("a.gauge");
  registry.histogram("c.histogram", 0.0, 1.0, 4);
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_TRUE(registry.has("a.gauge"));
  EXPECT_FALSE(registry.has("missing"));
  const auto names = registry.names();
  EXPECT_EQ(names, (std::vector<std::string>{"a.gauge", "b.counter", "c.histogram"}));
  EXPECT_NE(registry.find_counter("b.counter"), nullptr);
  EXPECT_EQ(registry.find_counter("a.gauge"), nullptr);
  EXPECT_NE(registry.find_gauge("a.gauge"), nullptr);
  EXPECT_NE(registry.find_histogram("c.histogram"), nullptr);
  EXPECT_EQ(registry.find_histogram("missing"), nullptr);
}

TEST(MetricsTest, SnapshotRendersOneRowPerInstrument) {
  MetricsRegistry registry;
  registry.enable();
  registry.counter("hits").add(3);
  registry.gauge("level").set(2.5);
  registry.histogram("lat", 0.0, 10.0, 5).observe(4.0);
  const std::string table = registry.snapshot().to_string();
  EXPECT_NE(table.find("hits"), std::string::npos);
  EXPECT_NE(table.find("counter"), std::string::npos);
  EXPECT_NE(table.find("level"), std::string::npos);
  EXPECT_NE(table.find("gauge"), std::string::npos);
  EXPECT_NE(table.find("lat"), std::string::npos);
  EXPECT_NE(table.find("histogram"), std::string::npos);
  const std::string csv = registry.snapshot().to_csv();
  EXPECT_NE(csv.find("instrument,type,count,value,mean,p50,p99,max"), std::string::npos);
}

TEST(MetricsTest, MergeFoldsRegistries) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.enable();
  b.enable();
  a.counter("c").add(2);
  b.counter("c").add(3);
  b.counter("only_b").add(1);
  a.gauge("g").set(1.0);
  b.gauge("g").set(9.0);
  a.histogram("h", 0.0, 10.0, 5).observe(1.0);
  b.histogram("h", 0.0, 10.0, 5).observe(9.0);

  a.merge(b);
  EXPECT_EQ(a.find_counter("c")->value(), 5u);
  EXPECT_EQ(a.find_counter("only_b")->value(), 1u);
  EXPECT_DOUBLE_EQ(a.find_gauge("g")->value(), 9.0);
  EXPECT_EQ(a.find_histogram("h")->count(), 2u);
  EXPECT_DOUBLE_EQ(a.find_histogram("h")->mean(), 5.0);
  EXPECT_EQ(a.find_histogram("h")->bucket(0), 1u);
  EXPECT_EQ(a.find_histogram("h")->bucket(4), 1u);
}

TEST(MetricsTest, MergeKeepsUnwrittenGaugeAndChecksLayout) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.enable();
  a.gauge("g").set(4.0);
  b.gauge("g");  // never written: must not clobber a's value
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.find_gauge("g")->value(), 4.0);

  MetricsRegistry c;
  a.histogram("h", 0.0, 10.0, 5);
  c.histogram("h", 0.0, 99.0, 5);
  EXPECT_THROW(a.merge(c), std::logic_error);
}

TEST(MetricsTest, MergeLandsEvenWhenTargetDisabled) {
  MetricsRegistry a;  // disabled
  MetricsRegistry b;
  b.enable();
  b.counter("c").add(7);
  a.merge(b);
  EXPECT_EQ(a.find_counter("c")->value(), 7u);
}

TEST(MetricsTest, ResetZeroesButKeepsInstruments) {
  MetricsRegistry registry;
  registry.enable();
  auto& c = registry.counter("c");
  auto& g = registry.gauge("g");
  auto& h = registry.histogram("h", 0.0, 10.0, 5);
  c.add(3);
  g.set(2.0);
  h.observe(5.0);
  registry.reset();
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_FALSE(g.written());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(), 5u);
  EXPECT_TRUE(registry.enabled());
  // Instruments stay live after reset.
  c.add();
  EXPECT_EQ(c.value(), 1u);
}

TEST(TelemetryTest, BundleTogglesBothHalves) {
  Telemetry telemetry;
  EXPECT_FALSE(telemetry.metrics().enabled());
  EXPECT_FALSE(telemetry.tracing());
  telemetry.enable_all();
  EXPECT_TRUE(telemetry.metrics().enabled());
  EXPECT_TRUE(telemetry.tracer().enabled());
  telemetry.disable_all();
  EXPECT_FALSE(telemetry.tracing());
}

}  // namespace
}  // namespace dredbox::sim::metrics
