#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace dredbox::sim {
namespace {

/// Property: the event queue dispatches exactly the non-cancelled events
/// in the order a reference model (stable sort by time) predicts.
class EventQueuePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueuePropertyTest, MatchesReferenceModel) {
  sim::Rng rng{GetParam()};
  EventQueue queue;

  struct Ref {
    Time when;
    int tag;
    bool cancelled = false;
  };
  std::vector<Ref> reference;
  std::vector<EventId> ids;
  std::vector<int> dispatched;

  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const Time when = Time::us(static_cast<double>(rng.uniform_int(0, 1000)));
    reference.push_back(Ref{when, i});
    ids.push_back(queue.schedule(when, [&dispatched, i] { dispatched.push_back(i); }));
  }
  // Cancel a random third of them.
  for (int i = 0; i < n; ++i) {
    if (rng.chance(1.0 / 3.0)) {
      if (queue.cancel(ids[static_cast<std::size_t>(i)])) {
        reference[static_cast<std::size_t>(i)].cancelled = true;
      }
    }
  }

  queue.run();

  std::vector<Ref> expected;
  for (const auto& r : reference) {
    if (!r.cancelled) expected.push_back(r);
  }
  // FIFO tie-break == stable sort on time.
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Ref& a, const Ref& b) { return a.when < b.when; });

  ASSERT_EQ(dispatched.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(dispatched[i], expected[i].tag) << "at position " << i;
  }
}

TEST_P(EventQueuePropertyTest, CascadedSchedulingStaysMonotonic) {
  sim::Rng rng{GetParam() ^ 0x5EEDu};
  EventQueue queue;
  Time last = Time::zero();
  bool monotonic = true;
  int fired = 0;

  // Events re-schedule follow-ups at random future offsets; time must
  // never go backwards and every event must fire.
  std::function<void(int)> chain = [&](int depth) {
    if (queue.now() < last) monotonic = false;
    last = queue.now();
    ++fired;
    if (depth > 0) {
      const Time offset = Time::ns(static_cast<double>(rng.uniform_int(0, 500)));
      queue.schedule(queue.now() + offset, [&, depth] { chain(depth - 1); });
    }
  };
  for (int i = 0; i < 20; ++i) {
    queue.schedule(Time::us(static_cast<double>(i)), [&] { chain(10); });
  }
  queue.run();
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(fired, 20 * 11);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueuePropertyTest,
                         ::testing::Values(2u, 29u, 71u, 113u));

}  // namespace
}  // namespace dredbox::sim
