#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/fault.hpp"

namespace dredbox::sim {
namespace {

TEST(FaultKindNames, RoundTripThroughStrings) {
  const FaultKind kinds[] = {
      FaultKind::kLinkFlap,          FaultKind::kInsertionLossDrift,
      FaultKind::kSwitchPortFailure, FaultKind::kCongestionBurst,
      FaultKind::kLossBurst,         FaultKind::kBrickCrash,
      FaultKind::kBrickRestart,      FaultKind::kRmstCorruption,
      FaultKind::kControllerStall,
  };
  for (FaultKind kind : kinds) {
    const auto back = fault_kind_from_string(to_string(kind));
    ASSERT_TRUE(back.has_value()) << to_string(kind);
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(fault_kind_from_string("meteor-strike").has_value());
}

TEST(FaultPlanText, RoundTripsThroughParse) {
  FaultPlan plan;
  plan.add({Time::ms(2), FaultKind::kLinkFlap, 0, 0, 0.0, Time::us(500)});
  plan.add({Time::ms(5), FaultKind::kBrickCrash, 3, 0, 0.0, Time::zero()});
  plan.add({Time::ms(1), FaultKind::kCongestionBurst, 0, 0, 4.5, Time::ms(2)});
  plan.add({Time::ms(7), FaultKind::kRmstCorruption, 2, 1, 0.0, Time::zero()});

  const FaultPlan back = FaultPlan::parse(plan.to_string());
  ASSERT_EQ(back.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const FaultEvent& a = plan.events()[i];
    const FaultEvent& b = back.events()[i];
    EXPECT_EQ(b.at, a.at);
    EXPECT_EQ(b.kind, a.kind);
    EXPECT_EQ(b.target, a.target);
    EXPECT_EQ(b.aux, a.aux);
    EXPECT_DOUBLE_EQ(b.magnitude, a.magnitude);
    EXPECT_EQ(b.duration, a.duration);
  }
}

TEST(FaultPlanText, ParsesTheDocumentedExample) {
  const auto plan = FaultPlan::parse(
      "link-flap@2ms+500us;brick-crash@5ms:target=3;congestion@1ms+2ms:magnitude=4");
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kLinkFlap);
  EXPECT_EQ(plan.events()[0].at, Time::ms(2));
  EXPECT_EQ(plan.events()[0].duration, Time::us(500));
  EXPECT_EQ(plan.events()[1].target, 3u);
  EXPECT_DOUBLE_EQ(plan.events()[2].magnitude, 4.0);
}

TEST(FaultPlanText, RejectsMalformedSpecsWithTheOffendingToken) {
  EXPECT_THROW(FaultPlan::parse("meteor-strike@1ms"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("link-flap"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("link-flap@"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("link-flap@1parsec"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("link-flap@1ms:gremlins=7"), std::invalid_argument);
  try {
    FaultPlan::parse("link-flap@1ms;bogus-kind@2ms");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("bogus-kind"), std::string::npos) << e.what();
  }
}

TEST(FaultPlanGenerate, SameSeedSamePlan) {
  Rng rng_a{42};
  Rng rng_b{42};
  const FaultPlan a = FaultPlan::generate(rng_a);
  const FaultPlan b = FaultPlan::generate(rng_b);
  EXPECT_EQ(a.to_string(), b.to_string());

  Rng rng_c{43};
  EXPECT_NE(FaultPlan::generate(rng_c).to_string(), a.to_string());
}

TEST(FaultPlanGenerate, HonoursConfigKnobs) {
  Rng rng{7};
  FaultPlan::GeneratorConfig config;
  config.events = 16;
  config.horizon = Time::ms(10);
  config.weights = {1, 0, 0, 0, 0, 0, 0, 0, 0};  // link flaps only
  const FaultPlan plan = FaultPlan::generate(rng, config);
  ASSERT_EQ(plan.size(), 16u);
  for (const FaultEvent& e : plan.events()) {
    EXPECT_EQ(e.kind, FaultKind::kLinkFlap);
    EXPECT_LT(e.at, Time::ms(10));
  }
}

TEST(FaultInjectorTest, DeliversThroughTheEventQueueInOrder) {
  Simulator sim;
  FaultInjector injector{sim};
  std::vector<FaultKind> seen;
  injector.on(FaultKind::kLinkFlap, [&](const FaultEvent&) {
    seen.push_back(FaultKind::kLinkFlap);
  });
  injector.on(FaultKind::kBrickCrash, [&](const FaultEvent&) {
    seen.push_back(FaultKind::kBrickCrash);
  });

  FaultPlan plan;
  plan.add({Time::ms(5), FaultKind::kBrickCrash});
  plan.add({Time::ms(2), FaultKind::kLinkFlap});
  EXPECT_EQ(injector.schedule(plan), 2u);
  sim.run();

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], FaultKind::kLinkFlap);  // time order, not plan order
  EXPECT_EQ(seen[1], FaultKind::kBrickCrash);
  EXPECT_EQ(injector.injected(), 2u);
  EXPECT_EQ(injector.active(), 2u);  // no recover handlers registered
  injector.check_invariants();
}

TEST(FaultInjectorTest, RecoveryFiresDurationAfterInjection) {
  Simulator sim;
  FaultInjector injector{sim};
  Time injected_at, recovered_at;
  injector.on(FaultKind::kLinkFlap,
              [&](const FaultEvent&) { injected_at = sim.now(); });
  injector.on_recover(FaultKind::kLinkFlap,
                      [&](const FaultEvent&) { recovered_at = sim.now(); });

  FaultPlan plan;
  plan.add({Time::ms(2), FaultKind::kLinkFlap, 0, 0, 0.0, Time::us(500)});
  injector.schedule(plan);
  sim.run();

  // Injection lands one tick past the nominal instant so fault transitions
  // never tie with workload events scheduled at the same timestamp; recovery
  // inherits the skew.
  EXPECT_EQ(injected_at, Time::ms(2) + Time::ps(1));
  EXPECT_EQ(recovered_at, Time::ms(2) + Time::us(500) + Time::ps(1));
  EXPECT_EQ(injector.recovered(), 1u);
  EXPECT_EQ(injector.active(), 0u);
  injector.check_invariants();
}

TEST(FaultInjectorTest, PersistentFaultNeverAutoRecovers) {
  Simulator sim;
  FaultInjector injector{sim};
  injector.on(FaultKind::kBrickCrash, [](const FaultEvent&) {});
  injector.on_recover(FaultKind::kBrickCrash, [](const FaultEvent&) {
    FAIL() << "zero-duration fault must not auto-recover";
  });
  FaultPlan plan;
  plan.add({Time::ms(1), FaultKind::kBrickCrash});  // duration zero
  injector.schedule(plan);
  sim.run();
  EXPECT_EQ(injector.recovered(), 0u);
  EXPECT_EQ(injector.active(), 1u);
}

TEST(FaultInjectorTest, UnhandledKindsCountAsSkipped) {
  Simulator sim;
  FaultInjector injector{sim};
  FaultPlan plan;
  plan.add({Time::ms(1), FaultKind::kControllerStall});
  EXPECT_EQ(injector.schedule(plan), 1u);
  sim.run();
  EXPECT_EQ(injector.injected(), 0u);
  EXPECT_EQ(injector.skipped(), 1u);
  injector.check_invariants();
}

TEST(FaultInjectorTest, PastEventsClampToNow) {
  Simulator sim;
  sim.run_until(Time::ms(10));
  FaultInjector injector{sim};
  Time fired_at;
  injector.on(FaultKind::kLinkFlap, [&](const FaultEvent&) { fired_at = sim.now(); });
  FaultPlan plan;
  plan.add({Time::ms(2), FaultKind::kLinkFlap});  // already in the past
  injector.schedule(plan);
  sim.run();
  EXPECT_EQ(fired_at, Time::ms(10) + Time::ps(1));
}

TEST(FaultInjectorTest, TelemetryCountsInjectionsAndRecoveries) {
  Simulator sim;
  Telemetry telemetry;
  telemetry.enable_all();
  FaultInjector injector{sim};
  injector.set_telemetry(&telemetry);
  injector.on(FaultKind::kLinkFlap, [](const FaultEvent&) {});
  injector.on_recover(FaultKind::kLinkFlap, [](const FaultEvent&) {});

  FaultPlan plan;
  plan.add({Time::ms(1), FaultKind::kLinkFlap, 0, 0, 0.0, Time::ms(1)});
  plan.add({Time::ms(2), FaultKind::kControllerStall});
  injector.schedule(plan);
  sim.run();

  auto& m = telemetry.metrics();
  EXPECT_EQ(m.find_counter("sim.faults.injected")->value(), 1u);
  EXPECT_EQ(m.find_counter("sim.faults.recovered")->value(), 1u);
  EXPECT_EQ(m.find_counter("sim.faults.skipped")->value(), 1u);
  EXPECT_DOUBLE_EQ(m.find_gauge("sim.faults.active")->value(), 0.0);
}

}  // namespace
}  // namespace dredbox::sim
