#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hpp"

namespace dredbox::sim {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesCombinedStream) {
  RunningStats a, b, all;
  Rng rng{5};
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-7);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
}

TEST(SampleSetTest, QuantilesOfKnownSet) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.75), 4.0);
}

TEST(SampleSetTest, QuantileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.1), 1.0);
}

TEST(SampleSetTest, UnsortedInsertionHandled) {
  SampleSet s;
  for (double x : {9.0, 1.0, 5.0, 3.0, 7.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(SampleSetTest, QuantileValidation) {
  SampleSet s;
  EXPECT_THROW(s.quantile(0.5), std::logic_error);
  s.add(1.0);
  EXPECT_THROW(s.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(s.quantile(1.1), std::invalid_argument);
}

TEST(SampleSetTest, BoxPlotFiveNumbers) {
  SampleSet s;
  for (int i = 1; i <= 101; ++i) s.add(static_cast<double>(i));
  const BoxPlot b = s.box_plot();
  EXPECT_DOUBLE_EQ(b.minimum, 1.0);
  EXPECT_DOUBLE_EQ(b.q1, 26.0);
  EXPECT_DOUBLE_EQ(b.median, 51.0);
  EXPECT_DOUBLE_EQ(b.q3, 76.0);
  EXPECT_DOUBLE_EQ(b.maximum, 101.0);
  EXPECT_EQ(b.count, 101u);
  EXPECT_DOUBLE_EQ(b.iqr(), 50.0);
}

TEST(SampleSetTest, BoxPlotOrderingInvariant) {
  Rng rng{77};
  SampleSet s;
  for (int i = 0; i < 500; ++i) s.add(rng.normal(0.0, 1.0));
  const BoxPlot b = s.box_plot();
  EXPECT_LE(b.minimum, b.q1);
  EXPECT_LE(b.q1, b.median);
  EXPECT_LE(b.median, b.q3);
  EXPECT_LE(b.q3, b.maximum);
}

TEST(SampleSetTest, PercentileAliasesQuantile) {
  SampleSet s;
  for (int i = 0; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(95.0), s.quantile(0.95));
}

TEST(SampleSetTest, StandardErrorAndCi95) {
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.standard_error(), 0.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.standard_error(), 0.0);  // one sample: undefined -> 0
  for (double x : {2.0, 3.0, 4.0, 5.0}) s.add(x);
  // stddev of {1..5} = sqrt(2.5); SE = sqrt(2.5)/sqrt(5) = sqrt(0.5).
  EXPECT_NEAR(s.standard_error(), std::sqrt(0.5), 1e-12);
  EXPECT_NEAR(s.ci95_halfwidth(), 1.96 * std::sqrt(0.5), 1e-12);
}

TEST(SampleSetTest, CiShrinksWithMoreSamples) {
  Rng rng{42};
  SampleSet small, large;
  for (int i = 0; i < 30; ++i) small.add(rng.normal(0.0, 1.0));
  for (int i = 0; i < 3000; ++i) large.add(rng.normal(0.0, 1.0));
  EXPECT_LT(large.ci95_halfwidth(), small.ci95_halfwidth());
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h{0.0, 10.0, 5};
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-3.0);   // clamps to bin 0
  h.add(42.0);   // clamps to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(HistogramTest, BinEdges) {
  Histogram h{0.0, 10.0, 5};
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 10.0);
}

TEST(HistogramTest, Validation) {
  EXPECT_THROW(Histogram(5.0, 5.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(5.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, RendersOneLinePerBin) {
  Histogram h{0.0, 4.0, 4};
  h.add(1.0);
  const std::string out = h.to_string();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

}  // namespace
}  // namespace dredbox::sim
