#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/random.hpp"

namespace dredbox::sim {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesCombinedStream) {
  RunningStats a, b, all;
  Rng rng{5};
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-7);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
}

TEST(SampleSetTest, QuantilesOfKnownSet) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.75), 4.0);
}

TEST(SampleSetTest, QuantileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.1), 1.0);
}

TEST(SampleSetTest, UnsortedInsertionHandled) {
  SampleSet s;
  for (double x : {9.0, 1.0, 5.0, 3.0, 7.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(SampleSetTest, QuantileValidation) {
  SampleSet s;
  EXPECT_THROW(s.quantile(0.5), std::logic_error);
  s.add(1.0);
  EXPECT_THROW(s.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(s.quantile(1.1), std::invalid_argument);
}

TEST(SampleSetTest, BoxPlotFiveNumbers) {
  SampleSet s;
  for (int i = 1; i <= 101; ++i) s.add(static_cast<double>(i));
  const BoxPlot b = s.box_plot();
  EXPECT_DOUBLE_EQ(b.minimum, 1.0);
  EXPECT_DOUBLE_EQ(b.q1, 26.0);
  EXPECT_DOUBLE_EQ(b.median, 51.0);
  EXPECT_DOUBLE_EQ(b.q3, 76.0);
  EXPECT_DOUBLE_EQ(b.maximum, 101.0);
  EXPECT_EQ(b.count, 101u);
  EXPECT_DOUBLE_EQ(b.iqr(), 50.0);
}

TEST(SampleSetTest, BoxPlotOrderingInvariant) {
  Rng rng{77};
  SampleSet s;
  for (int i = 0; i < 500; ++i) s.add(rng.normal(0.0, 1.0));
  const BoxPlot b = s.box_plot();
  EXPECT_LE(b.minimum, b.q1);
  EXPECT_LE(b.q1, b.median);
  EXPECT_LE(b.median, b.q3);
  EXPECT_LE(b.q3, b.maximum);
}

// Property coverage for quantile() at the edges the interpolation formula
// is most likely to get wrong: the extremes, a single sample, and
// duplicate-heavy sets where many ranks share one value.

TEST(SampleSetQuantileProperty, ExtremesEqualMinAndMax) {
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    Rng rng{seed};
    SampleSet s;
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 200));
    for (int i = 0; i < n; ++i) {
      s.add(static_cast<double>(rng.uniform_int(-1000, 1000)) / 8.0);
    }
    EXPECT_DOUBLE_EQ(s.quantile(0.0), s.min()) << "seed " << seed;
    EXPECT_DOUBLE_EQ(s.quantile(1.0), s.max()) << "seed " << seed;
  }
}

TEST(SampleSetQuantileProperty, SingleSampleIsEveryQuantile) {
  SampleSet s;
  s.add(3.25);
  for (double q : {0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(s.quantile(q), 3.25) << "q=" << q;
  }
}

TEST(SampleSetQuantileProperty, AllDuplicatesCollapseToTheValue) {
  SampleSet s;
  for (int i = 0; i < 64; ++i) s.add(-2.5);
  for (double q : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(s.quantile(q), -2.5) << "q=" << q;
  }
}

TEST(SampleSetQuantileProperty, DuplicateHeavySetsStayMonotoneAndBounded) {
  for (std::uint64_t seed : {3u, 9u, 27u}) {
    Rng rng{seed};
    SampleSet s;
    // ~8 distinct values spread over 300 samples: long runs of equal ranks.
    for (int i = 0; i < 300; ++i) {
      s.add(static_cast<double>(rng.uniform_int(0, 7)));
    }
    double prev = s.quantile(0.0);
    for (int step = 0; step <= 100; ++step) {
      const double q = static_cast<double>(step) / 100.0;
      const double v = s.quantile(q);
      EXPECT_GE(v, s.min()) << "seed " << seed << " q=" << q;
      EXPECT_LE(v, s.max()) << "seed " << seed << " q=" << q;
      EXPECT_GE(v, prev) << "quantile not monotone at seed " << seed << " q=" << q;
      prev = v;
    }
    // With >= 100 samples per distinct value on average, the median of a
    // duplicate-heavy set must itself be one of the sample values.
    const double med = s.quantile(0.5);
    EXPECT_DOUBLE_EQ(med, std::floor(med));
  }
}

TEST(SampleSetQuantileProperty, InterleavedAddsDoNotDisturbQuantiles) {
  // quantile() sorts lazily; interleaving add() and quantile() must keep
  // answers consistent with a from-scratch sorted copy.
  Rng rng{5};
  SampleSet s;
  std::vector<double> mirror;
  for (int i = 0; i < 120; ++i) {
    const double x = static_cast<double>(rng.uniform_int(-50, 50));
    s.add(x);
    mirror.push_back(x);
    if (i % 10 == 9) {
      std::vector<double> sorted = mirror;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_DOUBLE_EQ(s.quantile(0.0), sorted.front());
      EXPECT_DOUBLE_EQ(s.quantile(1.0), sorted.back());
      const double pos = 0.5 * static_cast<double>(sorted.size() - 1);
      const auto idx = static_cast<std::size_t>(pos);
      const double frac = pos - static_cast<double>(idx);
      const double expect = idx + 1 < sorted.size()
                                ? sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac
                                : sorted.back();
      EXPECT_DOUBLE_EQ(s.quantile(0.5), expect);
    }
  }
}

TEST(SampleSetTest, PercentileAliasesQuantile) {
  SampleSet s;
  for (int i = 0; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(95.0), s.quantile(0.95));
}

TEST(SampleSetTest, StandardErrorAndCi95) {
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.standard_error(), 0.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.standard_error(), 0.0);  // one sample: undefined -> 0
  for (double x : {2.0, 3.0, 4.0, 5.0}) s.add(x);
  // stddev of {1..5} = sqrt(2.5); SE = sqrt(2.5)/sqrt(5) = sqrt(0.5).
  EXPECT_NEAR(s.standard_error(), std::sqrt(0.5), 1e-12);
  EXPECT_NEAR(s.ci95_halfwidth(), 1.96 * std::sqrt(0.5), 1e-12);
}

TEST(SampleSetTest, CiShrinksWithMoreSamples) {
  Rng rng{42};
  SampleSet small, large;
  for (int i = 0; i < 30; ++i) small.add(rng.normal(0.0, 1.0));
  for (int i = 0; i < 3000; ++i) large.add(rng.normal(0.0, 1.0));
  EXPECT_LT(large.ci95_halfwidth(), small.ci95_halfwidth());
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h{0.0, 10.0, 5};
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-3.0);   // clamps to bin 0
  h.add(42.0);   // clamps to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(HistogramTest, BinEdges) {
  Histogram h{0.0, 10.0, 5};
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 10.0);
}

TEST(HistogramTest, Validation) {
  EXPECT_THROW(Histogram(5.0, 5.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(5.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, RendersOneLinePerBin) {
  Histogram h{0.0, 4.0, 4};
  h.add(1.0);
  const std::string out = h.to_string();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

}  // namespace
}  // namespace dredbox::sim
