#include "sim/report.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

namespace dredbox::sim {
namespace {

TEST(TextTableTest, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTableTest, RejectsMismatchedRow) {
  TextTable t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable t{{"workload", "off"}};
  t.add_row({"High RAM", "86%"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("workload"), std::string::npos);
  EXPECT_NE(out.find("High RAM"), std::string::npos);
  EXPECT_NE(out.find("86%"), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(TextTableTest, ColumnsWidenToContent) {
  TextTable t{{"x"}};
  t.add_row({"a-very-long-cell-value"});
  const std::string out = t.to_string();
  // Separator must be at least as wide as the longest cell.
  const auto line_end = out.find('\n');
  EXPECT_GE(line_end, std::string{"a-very-long-cell-value"}.size());
}

TEST(TextTableTest, NumberFormatters) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::pct(0.866, 1), "86.6%");
  const std::string s = TextTable::sci(1.2e-12, 1);
  EXPECT_NE(s.find("e-12"), std::string::npos);
}

TEST(TextTableTest, CsvRendersHeaderAndRows) {
  TextTable t{{"workload", "off"}};
  t.add_row({"High RAM", "86%"});
  t.add_row({"Random", "18%"});
  EXPECT_EQ(t.to_csv(), "workload,off\nHigh RAM,86%\nRandom,18%\n");
}

TEST(TextTableTest, CsvQuotesSpecialCells) {
  TextTable t{{"name", "note"}};
  t.add_row({"a,b", "say \"hi\""});
  EXPECT_EQ(t.to_csv(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(CsvExportTest, NoopWithoutEnvVar) {
  unsetenv("DREDBOX_CSV_DIR");
  TextTable t{{"a"}};
  t.add_row({"1"});
  EXPECT_FALSE(maybe_write_csv("unused", t));
}

TEST(CsvExportTest, WritesFileWhenEnvSet) {
  const std::string dir = ::testing::TempDir();
  setenv("DREDBOX_CSV_DIR", dir.c_str(), 1);
  TextTable t{{"a", "b"}};
  t.add_row({"1", "2"});
  EXPECT_TRUE(maybe_write_csv("csv_export_test", t));
  unsetenv("DREDBOX_CSV_DIR");
  std::ifstream in{dir + "/csv_export_test.csv"};
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
}

TEST(CsvExportTest, BadDirectoryThrows) {
  setenv("DREDBOX_CSV_DIR", "/nonexistent-dredbox-dir", 1);
  TextTable t{{"a"}};
  t.add_row({"1"});
  EXPECT_THROW(maybe_write_csv("x", t), std::runtime_error);
  unsetenv("DREDBOX_CSV_DIR");
}

TEST(AsciiBarTest, ScalesToWidth) {
  EXPECT_EQ(ascii_bar(1.0, 1.0, 10).size(), 10u);
  EXPECT_EQ(ascii_bar(0.5, 1.0, 10).size(), 5u);
  EXPECT_EQ(ascii_bar(0.0, 1.0, 10).size(), 0u);
}

TEST(AsciiBarTest, ClampsOutOfRange) {
  EXPECT_EQ(ascii_bar(2.0, 1.0, 10).size(), 10u);
  EXPECT_EQ(ascii_bar(-1.0, 1.0, 10).size(), 0u);
  EXPECT_EQ(ascii_bar(1.0, 0.0, 10), "");
}

}  // namespace
}  // namespace dredbox::sim
