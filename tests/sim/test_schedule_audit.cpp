#include "sim/schedule_audit.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/contract.hpp"
#include "sim/digest.hpp"
#include "sim/event_queue.hpp"

namespace dredbox::sim {
namespace {

// --- SchedulePerturbation semantics on the queue itself ------------------

/// Schedules `count` tied events at `when` that append their index to
/// `order`, labelled "e0", "e1", ...
std::vector<EventId> schedule_tie(EventQueue& q, Time when, int count, std::vector<int>& order) {
  static const char* kLabels[] = {"e0", "e1", "e2", "e3", "e4", "e5", "e6", "e7"};
  std::vector<EventId> ids;
  for (int i = 0; i < count; ++i) {
    ids.push_back(q.schedule(when, [&order, i] { order.push_back(i); }, kLabels[i]));
  }
  return ids;
}

TEST(SchedulePerturbationTest, IdentityMatchesPlainFifo) {
  std::vector<int> plain;
  {
    EventQueue q;
    schedule_tie(q, Time::ns(10), 4, plain);
    q.run();
  }
  std::vector<int> batched;
  {
    EventQueue q;
    SchedulePerturbation p;
    p.mode = SchedulePerturbation::Mode::kIdentity;
    q.set_perturbation(p);
    schedule_tie(q, Time::ns(10), 4, batched);
    EXPECT_EQ(q.run(), 4u);
    EXPECT_EQ(q.batches_collected(), 1u);
  }
  EXPECT_EQ(batched, plain);
  EXPECT_EQ(plain, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SchedulePerturbationTest, ReverseReversesEachBatch) {
  EventQueue q;
  SchedulePerturbation p;
  p.mode = SchedulePerturbation::Mode::kReverse;
  q.set_perturbation(p);
  std::vector<int> order;
  schedule_tie(q, Time::ns(10), 3, order);
  q.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1, 0}));
}

TEST(SchedulePerturbationTest, RotateRotatesLeftByOne) {
  EventQueue q;
  SchedulePerturbation p;
  p.mode = SchedulePerturbation::Mode::kRotate;
  q.set_perturbation(p);
  std::vector<int> order;
  schedule_tie(q, Time::ns(10), 4, order);
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 0}));
}

TEST(SchedulePerturbationTest, ShuffleIsSeedDeterministicAndPreservesEvents) {
  auto run_shuffled = [](std::uint64_t seed) {
    EventQueue q;
    SchedulePerturbation p;
    p.mode = SchedulePerturbation::Mode::kShuffle;
    p.seed = seed;
    q.set_perturbation(p);
    std::vector<int> order;
    schedule_tie(q, Time::ns(10), 8, order);
    q.run();
    return order;
  };
  const auto a = run_shuffled(7);
  const auto b = run_shuffled(7);
  EXPECT_EQ(a, b);  // same seed, same permutation

  auto sorted = a;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));  // a permutation

  // Some seed must produce a non-FIFO order (8! orders, many seeds).
  bool any_differs = false;
  for (std::uint64_t seed = 1; seed <= 8 && !any_differs; ++seed) {
    any_differs = run_shuffled(seed) != std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7};
  }
  EXPECT_TRUE(any_differs);
}

TEST(SchedulePerturbationTest, WindowRestrictsWhichBatchesPermute) {
  EventQueue q;
  SchedulePerturbation p;
  p.mode = SchedulePerturbation::Mode::kReverse;
  p.first_batch = 1;  // batch 0 stays FIFO, batch 1 reverses
  p.last_batch = 2;
  q.set_perturbation(p);
  std::vector<int> first, second;
  schedule_tie(q, Time::ns(10), 3, first);
  schedule_tie(q, Time::ns(20), 3, second);
  q.run();
  EXPECT_EQ(first, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(second, (std::vector<int>{2, 1, 0}));
  EXPECT_EQ(q.batches_collected(), 2u);  // windowed-out batches still count
}

TEST(SchedulePerturbationTest, SwapAdjacentSwapsExactlyOnePair) {
  EventQueue q;
  SchedulePerturbation p;
  p.mode = SchedulePerturbation::Mode::kSwapAdjacent;
  p.swap_position = 1;
  q.set_perturbation(p);
  std::vector<int> order;
  schedule_tie(q, Time::ns(10), 4, order);
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1, 3}));
}

TEST(SchedulePerturbationTest, SwapAdjacentOutOfRangeLeavesFifo) {
  EventQueue q;
  SchedulePerturbation p;
  p.mode = SchedulePerturbation::Mode::kSwapAdjacent;
  p.swap_position = 3;  // would swap positions 3 and 4 of a 4-event batch
  q.set_perturbation(p);
  std::vector<int> order;
  schedule_tie(q, Time::ns(10), 4, order);
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SchedulePerturbationTest, CaptureRecordsBatchComposition) {
  EventQueue q;
  SchedulePerturbation p;
  p.mode = SchedulePerturbation::Mode::kReverse;
  p.capture_batch = 1;
  q.set_perturbation(p);
  std::vector<int> order;
  schedule_tie(q, Time::ns(10), 2, order);
  schedule_tie(q, Time::ns(20), 3, order);
  q.run();

  ASSERT_TRUE(q.captured_batch().has_value());
  const ScheduleBatchRecord& record = *q.captured_batch();
  EXPECT_EQ(record.index, 1u);
  EXPECT_EQ(record.when, Time::ns(20));
  EXPECT_EQ(record.fifo_labels, (std::vector<std::string>{"e0", "e1", "e2"}));
  EXPECT_EQ(record.dispatch_order, (std::vector<std::size_t>{2, 1, 0}));
}

TEST(SchedulePerturbationTest, SingletonBatchesDoNotCount) {
  EventQueue q;
  SchedulePerturbation p;
  p.mode = SchedulePerturbation::Mode::kIdentity;
  q.set_perturbation(p);
  std::vector<int> order;
  q.schedule(Time::ns(10), [&] { order.push_back(0); });   // singleton
  schedule_tie(q, Time::ns(20), 2, order);                 // real batch
  q.schedule(Time::ns(30), [&] { order.push_back(9); });   // singleton
  q.run();
  EXPECT_EQ(q.batches_collected(), 1u);
}

TEST(SchedulePerturbationTest, CancellationInsideBatchIsHonoured) {
  // An earlier event cancelling a later same-timestamp event must keep
  // working under identity batching: cancellation is checked at fire time.
  EventQueue q;
  SchedulePerturbation p;
  p.mode = SchedulePerturbation::Mode::kIdentity;
  q.set_perturbation(p);
  std::vector<int> order;
  std::vector<EventId> ids = schedule_tie(q, Time::ns(10), 4, order);
  q.schedule(Time::ns(9), [&] { EXPECT_TRUE(q.cancel(ids[2])); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 3}));
  q.check_invariants();
}

TEST(SchedulePerturbationTest, EventsScheduledMidBatchFormNextGeneration) {
  EventQueue q;
  SchedulePerturbation p;
  p.mode = SchedulePerturbation::Mode::kReverse;
  q.set_perturbation(p);
  std::vector<std::string> order;
  q.schedule(Time::ns(10), [&] {
    order.push_back("a");
    // Same timestamp, scheduled mid-batch: joins the *next* batch at t=10,
    // which (with a sibling) reverses independently.
    q.schedule(Time::ns(10), [&] { order.push_back("x"); });
    q.schedule(Time::ns(10), [&] { order.push_back("y"); });
  });
  q.schedule(Time::ns(10), [&] { order.push_back("b"); });
  q.run();
  // First batch {a,b} reversed -> b,a; a's children {x,y} reversed -> y,x.
  EXPECT_EQ(order, (std::vector<std::string>{"b", "a", "y", "x"}));
  EXPECT_EQ(q.batches_collected(), 2u);
}

TEST(SchedulePerturbationTest, RearmMidBatchThrows) {
  EventQueue q;
  SchedulePerturbation p;
  p.mode = SchedulePerturbation::Mode::kIdentity;
  q.set_perturbation(p);
  std::vector<int> order;
  schedule_tie(q, Time::ns(10), 2, order);
  EXPECT_TRUE(q.dispatch_one());  // first batch entry fired, second still staged
  EXPECT_THROW(q.set_perturbation(SchedulePerturbation{}), std::logic_error);
  q.run();  // drain the rest; disarm is legal once the batch is done
  q.set_perturbation(SchedulePerturbation{});
  EXPECT_FALSE(q.perturbation().enabled());
}

TEST(SchedulePerturbationTest, ResetClearsBatchStateKeepsArming) {
  EventQueue q;
  SchedulePerturbation p;
  p.mode = SchedulePerturbation::Mode::kReverse;
  q.set_perturbation(p);
  std::vector<int> order;
  schedule_tie(q, Time::ns(10), 3, order);
  q.run();
  EXPECT_EQ(q.batches_collected(), 1u);
  q.reset();
  EXPECT_TRUE(q.perturbation().enabled());
  EXPECT_EQ(q.batches_collected(), 0u);
  order.clear();
  schedule_tie(q, Time::ns(10), 3, order);
  q.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1, 0}));
}

TEST(SchedulePerturbationTest, ToStringNamesModeAndWindow) {
  SchedulePerturbation p;
  p.mode = SchedulePerturbation::Mode::kShuffle;
  p.seed = 42;
  const std::string s = p.to_string();
  EXPECT_NE(s.find("shuffle"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

// --- ScheduleAuditor ------------------------------------------------------

/// A deterministic toy scenario with two same-timestamp batches:
///   t=10ns: "inc-a", "inc-b"   — commutative counter bumps (tie-safe)
///   t=20ns: "alpha", "beta"    — append to a log (order-DEPENDENT when
///                                `order_dependent` digests the log order)
/// The canonical digest folds the counter total (order-insensitive) and,
/// when order_dependent, the log in dispatch order — the defect the
/// auditor exists to catch.
AuditObservation run_toy(const SchedulePerturbation& p, bool order_dependent) {
  EventQueue q;
  q.set_perturbation(p);
  std::uint64_t counter = 0;
  std::vector<std::string> log;
  q.schedule(Time::ns(10), [&] { counter += 3; }, "inc-a");
  q.schedule(Time::ns(10), [&] { counter += 5; }, "inc-b");
  q.schedule(Time::ns(20), [&] { log.push_back("alpha"); }, "alpha");
  q.schedule(Time::ns(20), [&] { log.push_back("beta"); }, "beta");
  q.run();

  Digest d;
  d.update(counter);
  if (order_dependent) {
    for (const auto& entry : log) d.update(entry);  // dispatch order leaks in
  } else {
    // Canonical: fold entries in a fixed (sorted) order.
    std::vector<std::string> sorted = log;
    std::sort(sorted.begin(), sorted.end());
    for (const auto& entry : sorted) d.update(entry);
  }
  return observe_audit(q, d.value());
}

TEST(ScheduleAuditorTest, CleanScenarioPassesAllPermutations) {
  ScheduleAuditConfig config;
  config.permutations = 16;
  ScheduleAuditor auditor{config};
  const auto report = auditor.audit(
      [](const SchedulePerturbation& p) { return run_toy(p, /*order_dependent=*/false); });
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.batches, 2u);  // the audit was not vacuous
  EXPECT_EQ(report.permutations, 16u);
  EXPECT_EQ(report.runs, 18u);  // baseline + identity + 16
  EXPECT_NE(report.to_string().find("tie-order independent"), std::string::npos);
}

TEST(ScheduleAuditorTest, OrderDependentPairIsDetectedAndBisected) {
  ScheduleAuditor auditor;
  const auto report = auditor.audit(
      [](const SchedulePerturbation& p) { return run_toy(p, /*order_dependent=*/true); });
  ASSERT_FALSE(report.ok());
  const ScheduleDivergence& divergence = report.divergences.front();
  EXPECT_EQ(divergence.permutation, 1u);  // reverse already flips the log
  EXPECT_NE(divergence.observed_digest, divergence.expected_digest);

  // Bisection must walk past the commutative t=10 batch and pin the
  // t=20 log batch, isolate it, and name the first order-sensitive event.
  EXPECT_TRUE(divergence.bisected);
  EXPECT_EQ(divergence.culprit_batch, 1u);
  EXPECT_TRUE(divergence.isolated);
  EXPECT_EQ(divergence.culprit_time, Time::ns(20));
  EXPECT_EQ(divergence.batch_labels, (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_EQ(divergence.culprit_position, 0u);
  EXPECT_EQ(divergence.culprit_label, "alpha");

  const std::string rendered = report.to_string();
  EXPECT_NE(rendered.find("ORDER-DEPENDENT"), std::string::npos);
  EXPECT_NE(rendered.find("alpha"), std::string::npos);
}

TEST(ScheduleAuditorTest, EmptyCallbackThrows) {
  ScheduleAuditor auditor;
  EXPECT_THROW(auditor.audit(ScheduleAuditor::RunFn{}), std::invalid_argument);
}

TEST(ScheduleAuditorTest, NonDeterministicScenarioIsRejectedUpFront) {
  // A scenario whose digest changes between identical runs would make every
  // permutation "diverge" meaninglessly; the auditor refuses it outright.
  ScheduleAuditor auditor;
  std::uint64_t calls = 0;
  EXPECT_THROW(auditor.audit([&](const SchedulePerturbation&) {
                 return AuditObservation{++calls, 0, std::nullopt};
               }),
               ContractViolation);
}

TEST(ScheduleAuditorTest, ReportCountsBisectionRuns) {
  ScheduleAuditor auditor;
  const auto report = auditor.audit(
      [](const SchedulePerturbation& p) { return run_toy(p, /*order_dependent=*/true); });
  // baseline + identity + 16 permutations + bisection probes.
  EXPECT_GT(report.runs, 18u);
  EXPECT_LE(report.runs, 18u + auditor.config().max_bisect_runs);
}

}  // namespace
}  // namespace dredbox::sim
