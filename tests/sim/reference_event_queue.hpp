#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>

#include "sim/time.hpp"

namespace dredbox::sim {

/// The binary-heap event queue that sim::EventQueue replaced — retained
/// verbatim (minus the perturbation/profiler harness) as the differential
/// test oracle. This is a TEST-ONLY type: it is compiled into the test and
/// bench binaries, never into dredbox_sim, and exists so a randomized
/// operation-sequence harness (tests/sim/test_event_queue_differential.cpp)
/// can assert that the calendar-queue kernel produces byte-for-byte the
/// same dispatch stream as the original heap under adversarial
/// schedule/cancel/tie/boundary interleavings — and so the micro benches
/// can record the old-vs-new throughput ratio inside one process, immune
/// to host-load swings between runs.
///
/// Contract (identical to the production queue): strict (when, seq) order,
/// FIFO within a timestamp, O(1) cancellation with lazy eviction,
/// schedule() refuses times before now(), run_until() advances now() to
/// the horizon when it stops early.
class ReferenceEventQueue {
 public:
  using Action = std::function<void()>;

  struct EventId {
    std::uint64_t value = 0;
  };

  EventId schedule(Time when, Action action);

  bool cancel(EventId id);

  bool empty() const { return pending_.empty(); }
  std::size_t pending() const { return pending_.size(); }

  Time next_time() const;

  bool dispatch_one();

  Time now() const { return now_; }

  std::size_t run_until(Time until);
  std::size_t run();

  void reset();

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    EventId id;
    Action action;

    // Min-heap via std::priority_queue, so greater-than ordering.
    bool operator<(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  void evict_cancelled_top() const;

  mutable std::priority_queue<Entry> heap_;
  std::unordered_set<std::uint64_t> pending_;
  mutable std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  Time now_ = Time::zero();
};

}  // namespace dredbox::sim
