#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

namespace dredbox::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.next_time(), Time::infinity());
  EXPECT_FALSE(q.dispatch_one());
}

TEST(EventQueueTest, DispatchesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Time::ns(30), [&] { order.push_back(3); });
  q.schedule(Time::ns(10), [&] { order.push_back(1); });
  q.schedule(Time::ns(20), [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(Time::ns(5), [&, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, NowAdvancesWithDispatch) {
  EventQueue q;
  q.schedule(Time::ns(42), [] {});
  q.dispatch_one();
  EXPECT_EQ(q.now(), Time::ns(42));
}

TEST(EventQueueTest, RejectsSchedulingInThePast) {
  EventQueue q;
  q.schedule(Time::ns(100), [] {});
  q.dispatch_one();
  EXPECT_THROW(q.schedule(Time::ns(50), [] {}), std::invalid_argument);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(Time::ns(10), [&] {
    ++fired;
    q.schedule(Time::ns(20), [&] { ++fired; });
  });
  EXPECT_EQ(q.run(), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), Time::ns(20));
}

TEST(EventQueueTest, CancelPreventsDispatch) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(Time::ns(10), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  q.run();
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.schedule(Time::ns(10), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{999}));
  EXPECT_FALSE(q.cancel(EventId{0}));
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule(Time::ns(10), [&] { ++fired; });
  q.schedule(Time::ns(20), [&] { ++fired; });
  q.schedule(Time::ns(30), [&] { ++fired; });
  EXPECT_EQ(q.run_until(Time::ns(20)), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), Time::ns(20));
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesTimeWhenIdle) {
  EventQueue q;
  q.run_until(Time::ms(5));
  EXPECT_EQ(q.now(), Time::ms(5));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(Time::ns(10), [] {});
  q.schedule(Time::ns(20), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), Time::ns(20));
}

TEST(EventQueueTest, ResetClearsEverything) {
  EventQueue q;
  q.schedule(Time::ns(10), [] {});
  q.schedule(Time::ns(20), [] {});
  q.dispatch_one();
  q.reset();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now(), Time::zero());
}

TEST(EventQueueProfilerTest, DisabledByDefault) {
  EventQueue q;
  q.schedule(Time::us(1), [] {}, "tick");
  q.run();
  EXPECT_TRUE(q.kernel_profile().empty());
}

TEST(EventQueueProfilerTest, AggregatesPerLabel) {
  EventQueue q;
  q.enable_profiling();
  q.schedule(Time::us(1), [] {}, "fabric.read");
  q.schedule(Time::us(2), [] {}, "fabric.read");
  q.schedule(Time::us(3), [] {}, "sampler.tick");
  q.schedule(Time::us(4), [] {});  // unlabeled
  q.run();

  const auto rows = q.kernel_profile();
  ASSERT_EQ(rows.size(), 3u);
  // Label-sorted for deterministic iteration; "(unlabeled)" sorts first.
  EXPECT_EQ(rows[0].label, "(unlabeled)");
  EXPECT_EQ(rows[1].label, "fabric.read");
  EXPECT_EQ(rows[1].dispatches, 2u);
  EXPECT_EQ(rows[2].label, "sampler.tick");
  EXPECT_EQ(rows[2].dispatches, 1u);
  for (const auto& row : rows) EXPECT_GE(row.host_ns, 0.0);

  const std::string table = q.profile_to_string();
  EXPECT_NE(table.find("fabric.read"), std::string::npos);
}

TEST(EventQueueProfilerTest, NsPerDispatchHandlesZero) {
  KernelProfileEntry row;
  EXPECT_EQ(row.ns_per_dispatch(), 0.0);
  row.dispatches = 4;
  row.host_ns = 1000.0;
  EXPECT_EQ(row.ns_per_dispatch(), 250.0);
}

// --- FIFO-within-timestamp contract regressions -------------------------
//
// The documented tie-break is scheduling order (FIFO). These tests pin the
// contract through every path that could plausibly disturb it —
// cancellation holes, cancel-and-reschedule, interleaved timestamps, and
// events scheduled from inside a tie — so the planned calendar-queue
// kernel rewrite (ROADMAP item 1) inherits an executable spec.

TEST(EventQueueFifoContractTest, SurvivesCancellationHoles) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(q.schedule(Time::ns(5), [&, i] { order.push_back(i); }));
  }
  // Punch holes at both ends and the middle; survivors keep FIFO order.
  q.cancel(ids[0]);
  q.cancel(ids[3]);
  q.cancel(ids[7]);
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 4, 5, 6}));
}

TEST(EventQueueFifoContractTest, RescheduleMovesToBackOfTie) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Time::ns(5), [&] { order.push_back(0); });
  const EventId id = q.schedule(Time::ns(5), [&] { order.push_back(1); });
  q.schedule(Time::ns(5), [&] { order.push_back(2); });
  // Cancel + re-schedule is the idiomatic "reschedule"; the new event is a
  // fresh scheduling and therefore joins the *back* of the tie.
  ASSERT_TRUE(q.cancel(id));
  q.schedule(Time::ns(5), [&] { order.push_back(1); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(EventQueueFifoContractTest, InterleavedTimestampsKeepPerTimeFifo) {
  EventQueue q;
  std::vector<std::pair<int, int>> order;  // (time-ns, sequence-within-time)
  // Schedule ties for t=20 and t=10 interleaved; FIFO must hold per
  // timestamp even though scheduling alternated between the two.
  q.schedule(Time::ns(20), [&] { order.push_back({20, 0}); });
  q.schedule(Time::ns(10), [&] { order.push_back({10, 0}); });
  q.schedule(Time::ns(20), [&] { order.push_back({20, 1}); });
  q.schedule(Time::ns(10), [&] { order.push_back({10, 1}); });
  q.schedule(Time::ns(20), [&] { order.push_back({20, 2}); });
  q.run();
  const std::vector<std::pair<int, int>> expected{{10, 0}, {10, 1}, {20, 0}, {20, 1}, {20, 2}};
  EXPECT_EQ(order, expected);
}

TEST(EventQueueFifoContractTest, EventsScheduledInsideTieJoinItsBack) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Time::ns(5), [&] {
    order.push_back(0);
    // Scheduled mid-tie at the same timestamp: fires after every event
    // that was already waiting at t=5.
    q.schedule(Time::ns(5), [&] { order.push_back(9); });
  });
  q.schedule(Time::ns(5), [&] { order.push_back(1); });
  q.schedule(Time::ns(5), [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 9}));
}

TEST(EventQueueFifoContractTest, EarlierTieMemberCanCancelLater) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(q.schedule(Time::ns(5), [&, i] { order.push_back(i); }));
  }
  q.schedule(Time::ns(4), [&] { EXPECT_TRUE(q.cancel(ids[2])); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 3}));
}

// --- Calendar-geometry FIFO regressions ---------------------------------
//
// The calendar kernel partitions sim time into power-of-two "days"
// (buckets) and parks far-future events on an overflow ladder rung that is
// re-spanned into a fresh window once the current one drains. These tests
// aim tie groups directly at those seams — the places where a bucketed
// structure could plausibly lose the (when, seq) contract even though the
// plain in-bucket paths keep it.

TEST(EventQueueFifoContractTest, TiesStraddlingBucketBoundariesStayOrdered) {
  EventQueue q;
  const auto stats = q.calendar_stats();
  ASSERT_GT(stats.bucket_width_ps, 0);
  std::vector<std::pair<std::int64_t, int>> order;  // (fire ticks, seq-within-time)
  // Tie groups one tick before, exactly on, and one tick after a day
  // boundary, with the schedules of all three groups interleaved so the
  // kernel cannot rely on insertion locality.
  const std::int64_t boundary = 3 * stats.bucket_width_ps;
  const std::int64_t times[] = {boundary - 1, boundary, boundary + 1};
  for (int seq = 0; seq < 4; ++seq) {
    for (const std::int64_t t : times) {
      q.schedule(Time::ps(t), [&, t, seq] { order.push_back({t, seq}); });
    }
  }
  EXPECT_EQ(q.run(), 12u);
  std::vector<std::pair<std::int64_t, int>> expected;
  for (const std::int64_t t : times) {
    for (int seq = 0; seq < 4; ++seq) expected.push_back({t, seq});
  }
  EXPECT_EQ(order, expected);
  q.check_invariants();
}

TEST(EventQueueFifoContractTest, TiesSurviveLadderSpillAndRefill) {
  EventQueue q;
  const auto stats = q.calendar_stats();
  // Past the window end: these land on the overflow rung, in scheduling
  // order 0..7, and are only bucketed when the re-span (rebuild) runs.
  const Time far = Time::ps(stats.window_last_ps + 5 * stats.bucket_width_ps);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.schedule(far, [&, i] { order.push_back(i); });
  }
  EXPECT_EQ(q.calendar_stats().in_overflow, 8u);
  // An in-window event first, so the spill is refilled mid-run rather than
  // from a pristine queue.
  q.schedule(Time::ns(1), [&] { order.push_back(-1); });
  EXPECT_EQ(q.run(), 9u);
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_GE(q.calendar_stats().rebuilds, 1u);
  q.check_invariants();
}

TEST(EventQueueFifoContractTest, CancelsAcrossLadderSpillRespected) {
  EventQueue q;
  const auto stats = q.calendar_stats();
  const Time far = Time::ps(stats.window_last_ps + 7 * stats.bucket_width_ps);
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(q.schedule(far, [&, i] { order.push_back(i); }));
  }
  // Cancel overflow-resident events before AND after the rebuild: punch a
  // hole while they sit on the rung, then another from an event that fires
  // first (by which time the survivors have been re-bucketed).
  ASSERT_TRUE(q.cancel(ids[1]));
  q.schedule(Time::ns(1), [&] { EXPECT_TRUE(q.cancel(ids[4])); });
  EXPECT_EQ(q.run(), 5u);
  EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 5}));
  q.check_invariants();
}

TEST(EventQueueFifoContractTest, TieGroupSpanningWindowAndLadderReunites) {
  EventQueue q;
  const auto stats = q.calendar_stats();
  // Same timestamp, scheduled in two phases: the first half while the time
  // is past the window (ladder), the second half after a rebuild has pulled
  // the window forward so the same time is now in-bucket. FIFO must hold
  // across the two residencies.
  const std::int64_t t = stats.window_last_ps + 2 * stats.bucket_width_ps;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    q.schedule(Time::ps(t), [&, i] { order.push_back(i); });
  }
  EXPECT_EQ(q.calendar_stats().in_overflow, 3u);
  // Advancing past an empty stretch forces nothing; the rebuild happens
  // when the far events become next. Schedule a nearer event whose action
  // appends the second half of the tie group.
  q.schedule(Time::ns(1), [&] {
    for (int i = 3; i < 6; ++i) {
      q.schedule(Time::ps(t), [&, i] { order.push_back(i); });
    }
  });
  EXPECT_EQ(q.run(), 7u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  q.check_invariants();
}

TEST(EventQueueCalendarTest, StatsReflectGeometryAndActivity) {
  EventQueue q;
  const auto fresh = q.calendar_stats();
  EXPECT_EQ(fresh.window_start_ps, 0);
  EXPECT_GT(fresh.buckets, 0u);
  EXPECT_EQ(fresh.window_last_ps,
            static_cast<std::int64_t>(fresh.buckets) * fresh.bucket_width_ps - 1);
  EXPECT_EQ(fresh.in_overflow, 0u);
  EXPECT_EQ(fresh.rebuilds, 0u);
  q.schedule(Time::ps(fresh.window_last_ps), [] {});  // last in-window tick
  q.schedule(Time::ps(fresh.window_last_ps) + Time::ps(1), [] {});  // first ladder tick
  const auto loaded = q.calendar_stats();
  EXPECT_EQ(loaded.in_overflow, 1u);
  q.run();
  const auto drained = q.calendar_stats();
  EXPECT_GE(drained.rebuilds, 1u);
  EXPECT_GE(drained.bucket_loads, 1u);
  q.reset();
  const auto reset_stats = q.calendar_stats();
  EXPECT_EQ(reset_stats.window_start_ps, 0);
  EXPECT_EQ(reset_stats.in_overflow, 0u);
  EXPECT_EQ(reset_stats.rebuilds, 0u);
}

TEST(EventQueueTest, ManyEventsStressOrder) {
  EventQueue q;
  Time last = Time::zero();
  bool monotone = true;
  for (int i = 0; i < 1000; ++i) {
    // Pseudo-scattered times, deterministic.
    const Time when = Time::ns((i * 7919) % 4096);
    q.schedule(when, [&, when] {
      if (q.now() < last) monotone = false;
      last = q.now();
    });
  }
  EXPECT_EQ(q.run(), 1000u);
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace dredbox::sim
