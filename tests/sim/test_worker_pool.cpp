#include "sim/worker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

namespace dredbox::sim {
namespace {

TEST(WorkerPoolTest, ThreadsCountsTheCallingThread) {
  WorkerPool one{1};
  EXPECT_EQ(one.threads(), 1u);
  WorkerPool four{4};
  EXPECT_EQ(four.threads(), 4u);
}

TEST(WorkerPoolTest, ZeroThreadsClampsToOne) {
  WorkerPool pool{0};
  EXPECT_EQ(pool.threads(), 1u);
  int ran = 0;
  pool.parallel_for(3, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 3);
}

TEST(WorkerPoolTest, EveryIndexRunsExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u}) {
    for (std::size_t n : {0u, 1u, 7u, 100u}) {
      WorkerPool pool{threads};
      std::vector<std::atomic<int>> hits(n);
      pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
      for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(WorkerPoolTest, SingleThreadRunsInline) {
  WorkerPool pool{1};
  const auto caller = std::this_thread::get_id();
  bool on_caller = true;
  pool.parallel_for(8, [&](std::size_t) {
    if (std::this_thread::get_id() != caller) on_caller = false;
  });
  EXPECT_TRUE(on_caller);
}

TEST(WorkerPoolTest, CallingThreadParticipates) {
  // With a 2-thread pool and one index that blocks until the other ran,
  // completion proves both the worker and the caller claim indices.
  WorkerPool pool{2};
  std::atomic<int> done{0};
  pool.parallel_for(16, [&](std::size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 16);
}

TEST(WorkerPoolTest, ManySmallJobsReuseThePool) {
  WorkerPool pool{3};
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(5, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 1000u);
}

TEST(WorkerPoolTest, FirstExceptionPropagatesAfterDrain) {
  WorkerPool pool{4};
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(32,
                                 [&](std::size_t i) {
                                   ran.fetch_add(1);
                                   if (i == 7) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The throwing job never wedges the pool: the next job still runs.
  std::atomic<int> again{0};
  pool.parallel_for(4, [&](std::size_t) { again.fetch_add(1); });
  EXPECT_EQ(again.load(), 4);
  EXPECT_GE(ran.load(), 1);
}

TEST(WorkerPoolTest, ResultStoreKeepsPerIndexSlots) {
  WorkerPool pool{4};
  ResultStore<std::size_t> store{64};
  pool.parallel_for(64, [&](std::size_t i) { store.store(i, i * i); });
  const std::vector<std::size_t> results = store.take();
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(results[i], i * i);
}

}  // namespace
}  // namespace dredbox::sim
