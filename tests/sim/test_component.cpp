// Tests for the interned component-label registry (ISSUE 9b) and the
// Breakdown behaviours that ride on it: deterministic ids for the shipped
// vocabulary, lock-free lookups that never grow the registry, id/string
// charge equivalence, clear() for pooled reuse, and the fixed-capacity
// overflow invariant.

#include "sim/component.hpp"

#include <gtest/gtest.h>

#include <string>

#include "sim/breakdown.hpp"
#include "sim/contract.hpp"

namespace dredbox::sim {
namespace {

TEST(ComponentRegistryTest, InterningIsIdempotent) {
  const ComponentId a = component_id("TGL lookup (RMST)");
  const ComponentId b = component_id("TGL lookup (RMST)");
  EXPECT_EQ(a, b);
  EXPECT_EQ(component_label(a), "TGL lookup (RMST)");
}

TEST(ComponentRegistryTest, ShippedVocabularyIsPreInterned) {
  // The datapath's labels are interned at registry construction, so the
  // charge(string_view) shim never takes the registry's write lock for
  // them. A representative label from each charging subsystem:
  const std::size_t before = component_count();
  for (const char* label : {"serialization", "optical propagation",
                            "electrical propagation", "memory access",
                            "TGL lookup (RMST)", "retry backoff",
                            "circuit re-provision", "switch programming",
                            "pre-copy (local memory)"}) {
    EXPECT_TRUE(component_id_if_interned(label).has_value())
        << label << " is not pre-interned";
  }
  EXPECT_EQ(component_count(), before) << "lookups must not grow the registry";
}

TEST(ComponentRegistryTest, LookupOfUnknownLabelDoesNotIntern) {
  const std::size_t before = component_count();
  EXPECT_FALSE(component_id_if_interned("never-interned-label-xyzzy").has_value());
  EXPECT_EQ(component_count(), before);
}

TEST(ComponentRegistryTest, NewLabelsGetFreshStableIds) {
  const ComponentId fresh = component_id("test-component-fresh-label");
  EXPECT_EQ(component_label(fresh), "test-component-fresh-label");
  const auto found = component_id_if_interned("test-component-fresh-label");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, fresh);
}

TEST(BreakdownInterningTest, IdAndStringChargesAreEquivalent) {
  const ComponentId id = component_id("serialization");
  Breakdown by_id;
  by_id.charge(id, Time::ns(120));
  Breakdown by_string;
  by_string.charge("serialization", Time::ns(120));
  EXPECT_EQ(by_id.of(id), by_string.of("serialization"));
  EXPECT_EQ(by_id.of("serialization"), Time::ns(120));
  EXPECT_TRUE(by_id.has(id));
  EXPECT_TRUE(by_string.has("serialization"));
}

TEST(BreakdownInterningTest, OfUnknownLabelIsZeroWithoutInterning) {
  Breakdown breakdown;
  breakdown.charge("serialization", Time::ns(5));
  const std::size_t before = component_count();
  EXPECT_EQ(breakdown.of("no-such-component-ever"), Time::zero());
  EXPECT_FALSE(breakdown.has("no-such-component-ever"));
  EXPECT_EQ(component_count(), before)
      << "querying a breakdown must never grow the global registry";
}

TEST(BreakdownInterningTest, ClearResetsForPooledReuse) {
  Breakdown breakdown;
  breakdown.charge("serialization", Time::ns(10));
  breakdown.charge("memory access", Time::ns(20));
  ASSERT_EQ(breakdown.size(), 2u);
  breakdown.clear();
  EXPECT_TRUE(breakdown.empty());
  EXPECT_EQ(breakdown.total(), Time::zero());
  EXPECT_EQ(breakdown.of("serialization"), Time::zero());
  // Reuse after clear starts a fresh first-appearance order.
  breakdown.charge("memory access", Time::ns(7));
  ASSERT_EQ(breakdown.size(), 1u);
  EXPECT_EQ(breakdown.components()[0].first, "memory access");
}

TEST(BreakdownInterningTest, OverflowPastFixedCapacityTrips) {
  Breakdown breakdown;
  for (std::size_t i = 0; i < Breakdown::kMaxComponents; ++i) {
    breakdown.charge("test-overflow-" + std::to_string(i), Time::ns(1));
  }
  EXPECT_EQ(breakdown.size(), Breakdown::kMaxComponents);
  // Re-charging an existing component still works at capacity...
  breakdown.charge("test-overflow-0", Time::ns(1));
  EXPECT_EQ(breakdown.of("test-overflow-0"), Time::ns(2));
  // ...but a 25th distinct component is an invariant violation, not a
  // reallocation: per-op components are a small fixed vocabulary.
  EXPECT_THROW(breakdown.charge("test-overflow-one-too-many", Time::ns(1)),
               ContractViolation);
}

TEST(BreakdownInterningTest, ComponentsViewsPointAtRegistryStorage) {
  std::string_view serialization_view;
  {
    Breakdown breakdown;
    breakdown.charge("serialization", Time::ns(3));
    serialization_view = breakdown.components()[0].first;
  }  // breakdown destroyed; the view must remain valid (registry-owned)
  EXPECT_EQ(serialization_view, "serialization");
  EXPECT_EQ(serialization_view, component_label(*component_id_if_interned("serialization")));
}

}  // namespace
}  // namespace dredbox::sim
