#include "sim/timeseries.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

namespace dredbox::sim {
namespace {

TEST(TimeSeriesTest, AppendsAndIndexesOldestFirst) {
  TimeSeries s{"a.b.c", SeriesKind::kGauge, 8};
  s.append(Time::us(1), 10.0);
  s.append(Time::us(2), 20.0);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.front().when, Time::us(1));
  EXPECT_EQ(s.back().value, 20.0);
  EXPECT_EQ(s.evicted(), 0u);
}

TEST(TimeSeriesTest, RingEvictsOldestPastCapacity) {
  TimeSeries s{"a.b.c", SeriesKind::kCounter, 3};
  for (int i = 0; i < 5; ++i) s.append(Time::us(i), static_cast<double>(i));
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.evicted(), 2u);
  EXPECT_EQ(s.front().value, 2.0);  // 0 and 1 overwritten
  EXPECT_EQ(s.back().value, 4.0);
}

TEST(TimeSeriesSetTest, GetOrCreateRejectsKindMismatch) {
  TimeSeriesSet set;
  set.series("x.y.z", SeriesKind::kCounter, 8);
  EXPECT_NO_THROW(set.series("x.y.z", SeriesKind::kCounter, 8));
  EXPECT_THROW(set.series("x.y.z", SeriesKind::kGauge, 8), std::logic_error);
}

TEST(TimeSeriesSetTest, NamesAreSorted) {
  TimeSeriesSet set;
  set.series("b.b.b", SeriesKind::kGauge, 4);
  set.series("a.a.a", SeriesKind::kGauge, 4);
  const auto names = set.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a.a.a");
  EXPECT_EQ(names[1], "b.b.b");
}

TEST(TimeSeriesSetTest, OpenMetricsShapeAndDeterminism) {
  auto build = [] {
    TimeSeriesSet set;
    auto& c = set.series("memsys.fabric.retries", SeriesKind::kCounter, 8);
    c.append(Time::us(250), 1.0);
    c.append(Time::us(500), 3.0);
    auto& g = set.series("optics.circuits.active", SeriesKind::kGauge, 8);
    g.append(Time::us(250), 2.0);
    return set.to_openmetrics();
  };
  const std::string om = build();
  EXPECT_EQ(om, build());  // byte-identical render

  EXPECT_NE(om.find("# TYPE dredbox_memsys_fabric_retries counter"), std::string::npos);
  EXPECT_NE(om.find("dredbox_memsys_fabric_retries_total 1 0.000250000"), std::string::npos);
  EXPECT_NE(om.find("# TYPE dredbox_optics_circuits_active gauge"), std::string::npos);
  EXPECT_NE(om.find("dredbox_optics_circuits_active 2 0.000250000"), std::string::npos);
  // Terminated by the OpenMetrics end marker.
  const std::string tail = "# EOF\n";
  ASSERT_GE(om.size(), tail.size());
  EXPECT_EQ(om.substr(om.size() - tail.size()), tail);
}

TEST(TimeSeriesSamplerTest, TicksAtPeriodOnSimClock) {
  Simulator sim{1};
  metrics::MetricsRegistry registry;
  registry.enable();
  auto& gauge = registry.gauge("test.sampler.level");

  TimeSeriesSampler sampler{sim, registry, Time::us(100)};
  sampler.start(Time::us(500));
  sim.at(Time::us(150), [&gauge] { gauge.set(7.0); });
  sim.run_until(Time::ms(1));

  EXPECT_EQ(sampler.ticks(), 5u);  // 100..500 us inclusive
  const TimeSeries* series = sampler.series().find("test.sampler.level");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->size(), 5u);
  EXPECT_EQ(series->point(0).value, 0.0);   // at 100 us, before the set
  EXPECT_EQ(series->point(1).value, 7.0);   // at 200 us
  EXPECT_EQ(series->point(1).when, Time::us(200));
}

TEST(TimeSeriesSamplerTest, PeriodNotDividingWindowLeavesShortGap) {
  Simulator sim{1};
  metrics::MetricsRegistry registry;
  registry.enable();
  registry.counter("test.sampler.ticks");

  // 300 us period across a 1 ms window: ticks at 300/600/900 only.
  TimeSeriesSampler sampler{sim, registry, Time::us(300)};
  sampler.start(Time::ms(1));
  sim.run_until(Time::ms(2));
  EXPECT_EQ(sampler.ticks(), 3u);
  const TimeSeries* series = sampler.series().find("test.sampler.ticks");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->back().when, Time::us(900));
}

TEST(TimeSeriesSamplerTest, HistogramsExpandToSummarySeries) {
  Simulator sim{1};
  metrics::MetricsRegistry registry;
  registry.enable();
  auto& h = registry.histogram("test.lat.ns", 0.0, 1000.0);
  h.observe(100.0);
  h.observe(300.0);

  TimeSeriesSampler sampler{sim, registry, Time::us(10)};
  sampler.start(Time::us(10));
  sim.run_until(Time::us(20));

  for (const char* suffix : {".count", ".mean", ".p50", ".p99", ".max"}) {
    EXPECT_NE(sampler.series().find(std::string{"test.lat.ns"} + suffix), nullptr)
        << suffix;
  }
  EXPECT_EQ(sampler.series().find("test.lat.ns.count")->back().value, 2.0);
}

TEST(TimeSeriesSamplerTest, SampleNowSnapshotsImmediately) {
  Simulator sim{1};
  metrics::MetricsRegistry registry;
  registry.enable();
  auto& c = registry.counter("test.now.count");
  c.add(3);
  TimeSeriesSampler sampler{sim, registry, Time::us(100)};
  sampler.sample_now();
  const TimeSeries* series = sampler.series().find("test.now.count");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->size(), 1u);
  EXPECT_EQ(series->back().value, 3.0);
}

class OpenMetricsFileEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv(kOpenMetricsFileEnv);
    std::remove(path_.c_str());
  }
  const std::string path_ = ::testing::TempDir() + "dredbox_timeseries_test.om";
};

TEST_F(OpenMetricsFileEnvTest, NoOpWhenUnset) {
  ::unsetenv(kOpenMetricsFileEnv);
  TimeSeriesSet set;
  EXPECT_FALSE(maybe_write_openmetrics(set));
}

TEST_F(OpenMetricsFileEnvTest, WritesRenderWhenSet) {
  ::setenv(kOpenMetricsFileEnv, path_.c_str(), /*overwrite=*/1);
  TimeSeriesSet set;
  set.series("a.b.c", SeriesKind::kGauge, 4).append(Time::us(1), 5.0);
  ASSERT_TRUE(maybe_write_openmetrics(set));
  std::ifstream in{path_};
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), set.to_openmetrics());
}

}  // namespace
}  // namespace dredbox::sim
