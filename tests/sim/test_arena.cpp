// Unit and property tests for sim::IndexedArena — the fixed-block pool
// behind the event kernel's nodes. Covers the documented guarantees:
// LIFO slot reuse before growth, exhaustion-driven chunk growth, alignment
// (including over-aligned types), generation bumping for stale-handle
// rejection, destructor/clear() lifecycle (which is also the ASan leak
// coverage — a leaked live object would trip the sanitizer job), and
// check_invariants() freelist-consistency auditing under random churn.

#include "sim/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sim/contract.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"

namespace dredbox::sim {
namespace {

/// Instrumented payload: counts live instances so lifecycle tests can
/// prove every constructed object is destroyed exactly once.
struct Probe {
  static int live_count;
  explicit Probe(int v = 0) : value{v} { ++live_count; }
  Probe(const Probe&) = delete;
  Probe& operator=(const Probe&) = delete;
  ~Probe() { --live_count; }
  int value;
  std::string payload = "heap-backed so ASan sees leaks";
};
int Probe::live_count = 0;

class ArenaProbeTest : public testing::Test {
 protected:
  void TearDown() override { EXPECT_EQ(Probe::live_count, 0) << "Probe instances leaked"; }
};

TEST_F(ArenaProbeTest, CreateReturnsWorkingObjectAndDenseSlots) {
  IndexedArena<Probe> arena;
  auto [first, slot0] = arena.create(41);
  auto [second, slot1] = arena.create(42);
  EXPECT_EQ(first->value, 41);
  EXPECT_EQ(second->value, 42);
  EXPECT_EQ(slot0, 0u);
  EXPECT_EQ(slot1, 1u);
  EXPECT_EQ(arena.live(), 2u);
  EXPECT_EQ(arena.get(slot0), first);
  EXPECT_EQ(arena.get(slot1), second);
  arena.check_invariants();
  arena.destroy(slot0);
  arena.destroy(slot1);
}

TEST_F(ArenaProbeTest, FreedSlotIsReusedBeforeGrowth) {
  IndexedArena<Probe> arena;
  auto [a, slot_a] = arena.create(1);
  auto [b, slot_b] = arena.create(2);
  (void)a;
  const std::size_t capacity_before = arena.capacity();
  arena.destroy(slot_a);
  // LIFO: the most recently freed slot comes back first, and the arena
  // must not grow while any freed block is available.
  auto [c, slot_c] = arena.create(3);
  EXPECT_EQ(slot_c, slot_a);
  EXPECT_EQ(arena.capacity(), capacity_before);
  EXPECT_EQ(c->value, 3);
  EXPECT_EQ(b->value, 2) << "reuse must not disturb other live blocks";
  arena.check_invariants();
  arena.destroy(slot_b);
  arena.destroy(slot_c);
}

TEST_F(ArenaProbeTest, LifoReuseOrder) {
  IndexedArena<Probe> arena;
  std::vector<std::uint32_t> slots;
  for (int i = 0; i < 8; ++i) slots.push_back(arena.create(i).second);
  arena.destroy(slots[2]);
  arena.destroy(slots[5]);
  arena.destroy(slots[7]);
  EXPECT_EQ(arena.create(10).second, slots[7]);  // last freed, first reused
  EXPECT_EQ(arena.create(11).second, slots[5]);
  EXPECT_EQ(arena.create(12).second, slots[2]);
  arena.check_invariants();
  arena.clear();
}

TEST_F(ArenaProbeTest, ExhaustionGrowsByWholeChunks) {
  IndexedArena<Probe> arena;
  EXPECT_EQ(arena.capacity(), 0u);
  EXPECT_EQ(arena.chunks(), 0u);
  constexpr std::size_t kChunk = IndexedArena<Probe>::kBlocksPerChunk;
  for (std::size_t i = 0; i < kChunk; ++i) arena.create(static_cast<int>(i));
  EXPECT_EQ(arena.chunks(), 1u);
  EXPECT_EQ(arena.capacity(), kChunk);
  EXPECT_EQ(arena.free_blocks(), 0u);
  // The next create exhausts the chunk and must grow by exactly one more.
  arena.create(-1);
  EXPECT_EQ(arena.chunks(), 2u);
  EXPECT_EQ(arena.capacity(), 2 * kChunk);
  EXPECT_EQ(arena.live(), kChunk + 1);
  arena.check_invariants();
  arena.clear();
  EXPECT_EQ(arena.live(), 0u);
  EXPECT_EQ(arena.chunks(), 2u) << "clear() keeps chunks for reuse";
}

TEST_F(ArenaProbeTest, StableAddressesAcrossGrowth) {
  IndexedArena<Probe> arena;
  auto [first, slot] = arena.create(123);
  for (int i = 0; i < 3000; ++i) arena.create(i);  // forces many chunks
  EXPECT_EQ(arena.get(slot), first) << "growth must never relocate blocks";
  EXPECT_EQ(first->value, 123);
  arena.clear();
}

TEST_F(ArenaProbeTest, ClearDestroysEveryLiveObjectAndDestructorToo) {
  {
    IndexedArena<Probe> arena;
    for (int i = 0; i < 700; ++i) arena.create(i);
    EXPECT_EQ(Probe::live_count, 700);
    arena.clear();
    EXPECT_EQ(Probe::live_count, 0);
    // Refill after clear: recycled blocks, no leak of the first wave.
    for (int i = 0; i < 10; ++i) arena.create(i);
    EXPECT_EQ(Probe::live_count, 10);
    arena.check_invariants();
  }  // ~IndexedArena destroys the 10 remaining
  EXPECT_EQ(Probe::live_count, 0);
}

TEST(ArenaGenerationTest, DestroyBumpsGenerationSoStaleHandlesMiss) {
  IndexedArena<int> arena;
  auto [p, slot] = arena.create(5);
  (void)p;
  const std::uint32_t gen_before = arena.generation(slot);
  EXPECT_NE(gen_before, 0u) << "0 is reserved for never-allocated slots";
  arena.destroy(slot);
  EXPECT_EQ(arena.get(slot), nullptr);
  EXPECT_EQ(arena.generation(slot), gen_before + 1);
  // Reuse: same slot, different generation -> a (slot, gen_before) handle
  // is distinguishable from the slot's next tenant.
  auto [q, slot2] = arena.create(6);
  (void)q;
  ASSERT_EQ(slot2, slot);
  EXPECT_NE(arena.generation(slot), gen_before);
  arena.destroy(slot);
}

TEST(ArenaGenerationTest, NeverAllocatedSlotsReportGenerationZeroAndNullGet) {
  IndexedArena<int> arena;
  EXPECT_EQ(arena.generation(0), 0u);
  EXPECT_EQ(arena.generation(12345), 0u);
  EXPECT_EQ(arena.get(0), nullptr);
  EXPECT_EQ(arena.get(12345), nullptr);
  arena.check_invariants();
}

TEST(ArenaAlignmentTest, OverAlignedTypeBlocksAreAligned) {
  struct alignas(64) Wide {
    double lanes[8];
  };
  IndexedArena<Wide> arena;
  // Spans multiple chunks so first-block-of-chunk alignment is covered.
  constexpr std::size_t kChunk = IndexedArena<Wide>::kBlocksPerChunk;
  for (std::size_t i = 0; i < 2 * kChunk + 3; ++i) {
    auto [object, slot] = arena.create();
    (void)slot;
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(object) % 64, 0u)
        << "block " << i << " violates alignas(64)";
  }
  arena.check_invariants();  // includes the alignment audit over all blocks
}

TEST(ArenaInvariantTest, DestroyingDeadSlotThrows) {
  IndexedArena<int> arena;
  auto [p, slot] = arena.create(9);
  (void)p;
  arena.destroy(slot);
  EXPECT_THROW(arena.destroy(slot), ContractViolation);
}

// Randomized churn property: under an arbitrary create/destroy
// interleaving the arena always satisfies its deep audit, never grows
// while free blocks exist, and never hands out a slot twice concurrently.
TEST(ArenaPropertyTest, RandomChurnKeepsFreelistConsistent) {
  std::uint64_t state = 0x51ed270b7a64e9cdull;
  const auto next = [&state] {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  IndexedArena<std::pair<std::uint64_t, std::string>> arena;
  std::set<std::uint32_t> live_slots;
  for (int op = 0; op < 5000; ++op) {
    if (live_slots.empty() || next() % 100 < 55) {
      const bool had_free = arena.free_blocks() > 0;
      const std::size_t capacity_before = arena.capacity();
      auto [object, slot] = arena.create(next(), "churn");
      EXPECT_EQ(object->second, "churn");
      EXPECT_TRUE(live_slots.insert(slot).second) << "slot " << slot << " double-allocated";
      if (had_free) {
        EXPECT_EQ(arena.capacity(), capacity_before) << "grew while free blocks existed";
      }
    } else {
      auto it = live_slots.begin();
      std::advance(it, static_cast<long>(next() % live_slots.size()));
      arena.destroy(*it);
      live_slots.erase(it);
    }
    if (op % 97 == 0) arena.check_invariants();
  }
  EXPECT_EQ(arena.live(), live_slots.size());
  arena.check_invariants();
  arena.clear();
  EXPECT_EQ(arena.live(), 0u);
  arena.check_invariants();
}

// Fault-plan interleaving (ISSUE 9 satellite): pooled-op churn driven on a
// real Simulator timeline with a FaultInjector firing mid-stream. Each
// injected "brick crash" abandons half the live slots (the DMA engine's
// fault-abandonment path in miniature): destroys must reclaim the slots
// and bump generations, recoveries refill from the freelist, and the deep
// audit must hold at every transition.
TEST(ArenaFaultChurnTest, FaultInjectorInterleavedChurnStaysConsistent) {
  Simulator sim;
  IndexedArena<std::pair<std::uint64_t, std::string>> arena;
  std::vector<std::uint32_t> live_slots;
  std::uint64_t generation_bumps = 0;

  FaultInjector injector{sim};
  injector.on(FaultKind::kBrickCrash, [&](const FaultEvent&) {
    // The crash abandons the newest half of the in-flight ops.
    std::size_t victims = (live_slots.size() + 1) / 2;
    while (victims-- > 0 && !live_slots.empty()) {
      const std::uint32_t slot = live_slots.back();
      live_slots.pop_back();
      const std::uint32_t generation_before = arena.generation(slot);
      arena.destroy(slot);
      EXPECT_EQ(arena.get(slot), nullptr) << "abandoned slot must read as dead";
      EXPECT_EQ(arena.generation(slot), generation_before + 1)
          << "abandonment must bump the generation";
      ++generation_bumps;
    }
    arena.check_invariants();
  });
  injector.on_recover(FaultKind::kBrickCrash, [&](const FaultEvent&) {
    // Recovery re-issues a burst of ops; the freelist must serve them
    // before any growth (LIFO reuse of the just-abandoned slots).
    const std::size_t free_before = arena.free_blocks();
    const std::size_t capacity_before = arena.capacity();
    for (std::uint64_t i = 0; i < 16; ++i) {
      live_slots.push_back(arena.create(i, "recovered").second);
    }
    if (free_before >= 16) {
      EXPECT_EQ(arena.capacity(), capacity_before)
          << "grew while abandoned slots sat on the freelist";
    }
    arena.check_invariants();
  });

  FaultPlan plan;
  for (int i = 1; i <= 6; ++i) {
    FaultEvent crash;
    crash.at = Time::us(40 * i);
    crash.kind = FaultKind::kBrickCrash;
    crash.duration = Time::us(15);
    plan.add(crash);
  }
  ASSERT_EQ(injector.schedule(plan), 6u);

  // A steady creation stream interleaved with the crash/recover events.
  for (std::uint64_t i = 0; i < 200; ++i) {
    sim.at(Time::us(2 * static_cast<double>(i)), [&arena, &live_slots, i] {
      live_slots.push_back(arena.create(i, "churn").second);
    });
  }
  sim.run();

  EXPECT_EQ(injector.injected(), 6u);
  EXPECT_EQ(injector.recovered(), 6u);
  EXPECT_GT(generation_bumps, 0u);
  EXPECT_EQ(arena.live(), live_slots.size());
  arena.check_invariants();
  injector.check_invariants();
  arena.clear();
  EXPECT_EQ(arena.live(), 0u);
  arena.check_invariants();
}

}  // namespace
}  // namespace dredbox::sim
