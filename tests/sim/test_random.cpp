#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace dredbox::sim {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1 << 30) == b.uniform_int(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng{7};
  EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng rng{7};
  EXPECT_THROW(rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng{9};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(1, 8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRealStaysInRange) {
  Rng rng{11};
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, NormalHasRequestedMoments) {
  Rng rng{13};
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng{17};
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, ExponentialRejectsNonPositiveMean) {
  Rng rng{17};
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(RngTest, ChanceEdgeCases) {
  Rng rng{19};
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_FALSE(rng.chance(-0.5));
  EXPECT_TRUE(rng.chance(1.5));
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng{23};
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng{29};
  std::vector<double> weights{1.0, 3.0};
  int ones = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    if (rng.weighted_index(weights) == 1) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(RngTest, WeightedIndexRejectsBadInput) {
  Rng rng{29};
  EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng{31};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkProducesDecorrelatedStream) {
  Rng parent{37};
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.uniform_int(0, 1 << 30) == child.uniform_int(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace dredbox::sim
