#include "sim/trace_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace dredbox::sim {
namespace {

// Minimal structural JSON check: balanced braces/brackets outside string
// literals, escapes consumed, no trailing garbage. Enough to catch the
// classic exporter bugs (stray commas are caught by the shape assertions
// in the tests themselves, unbalanced nesting and broken escaping here).
bool json_balanced(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        break;
      default:
        break;
    }
  }
  return depth == 0 && !in_string;
}

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak\ttab\rret"), "line\\nbreak\\ttab\\rret");
  EXPECT_EQ(json_escape(std::string{"\x01"}), "\\u0001");
}

TEST(TraceExportTest, EmptyLogStillWellFormed) {
  Tracer tracer;
  const std::string json = to_chrome_trace_json(tracer);
  EXPECT_TRUE(json_balanced(json));
  EXPECT_EQ(json,
            "{\"displayTimeUnit\":\"ns\",\"metadata\":{\"tracer\":{\"capacity\":65536,"
            "\"retained\":0,\"dropped_while_disabled\":0,\"evicted\":0}},"
            "\"traceEvents\":[]}");
}

TEST(TraceExportTest, SpansBecomeCompleteEvents) {
  Tracer tracer;
  tracer.enable();
  tracer.record_span(Time::us(100), Time::us(350), TraceCategory::kHotplug, "kernel hot-add",
                     {{"bytes", "1073741824"}});
  const std::string json = to_chrome_trace_json(tracer);
  EXPECT_TRUE(json_balanced(json));
  // The span itself: complete event with microsecond ts/dur and its args.
  EXPECT_NE(json.find("\"name\":\"kernel hot-add\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":100.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":250.000"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"bytes\":\"1073741824\"}"), std::string::npos);
  // Its track: one thread_name metadata record naming the category.
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"hotplug\"}"), std::string::npos);
}

TEST(TraceExportTest, InstantsBecomeGlobalMarkers) {
  Tracer tracer;
  tracer.enable();
  tracer.record(Time::ms(3), TraceCategory::kPower, "wake brick 7");
  const std::string json = to_chrome_trace_json(tracer);
  EXPECT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"g\""), std::string::npos);
  EXPECT_EQ(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":3000.000"), std::string::npos);
}

TEST(TraceExportTest, OneTrackPerCategoryWithEvents) {
  Tracer tracer;
  tracer.enable();
  tracer.record(Time::ms(1), TraceCategory::kFabric, "a");
  tracer.record(Time::ms(2), TraceCategory::kFabric, "b");
  tracer.record(Time::ms(3), TraceCategory::kMigration, "c");
  const std::string json = to_chrome_trace_json(tracer);
  EXPECT_TRUE(json_balanced(json));
  // Two categories seen -> exactly two metadata records, shared tids.
  EXPECT_EQ(count_occurrences(json, "\"name\":\"thread_name\""), 2u);
  EXPECT_NE(json.find("\"args\":{\"name\":\"fabric\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"migration\"}"), std::string::npos);
  // 2 metadata + 3 events.
  EXPECT_EQ(count_occurrences(json, "\"ph\":"), 5u);
}

TEST(TraceExportTest, MessagesWithQuotesStayValid) {
  Tracer tracer;
  tracer.enable();
  tracer.record(Time::ms(1), TraceCategory::kApplication, "tenant \"alpha\" {burst}");
  const std::string json = to_chrome_trace_json(tracer);
  EXPECT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("tenant \\\"alpha\\\" {burst}"), std::string::npos);
}

class TraceFileEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv(kTraceFileEnv);
    std::remove(path_.c_str());
  }
  const std::string path_ = ::testing::TempDir() + "dredbox_trace_export_test.json";
};

TEST_F(TraceFileEnvTest, NoOpWhenEnvUnset) {
  ::unsetenv(kTraceFileEnv);
  Tracer tracer;
  tracer.enable();
  tracer.record(Time::ms(1), TraceCategory::kFabric, "attach");
  EXPECT_FALSE(maybe_write_trace(tracer));
}

TEST_F(TraceFileEnvTest, EmptyValueMeansUnset) {
  ::setenv(kTraceFileEnv, "", /*overwrite=*/1);
  Tracer tracer;
  EXPECT_FALSE(maybe_write_trace(tracer));
}

TEST_F(TraceFileEnvTest, WritesFileWhenEnvSet) {
  ::setenv(kTraceFileEnv, path_.c_str(), /*overwrite=*/1);
  Tracer tracer;
  tracer.enable();
  tracer.record_span(Time::ms(1), Time::ms(2), TraceCategory::kOrchestration, "allocate VM");
  ASSERT_TRUE(maybe_write_trace(tracer));

  std::ifstream in{path_};
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string written = buffer.str();
  EXPECT_EQ(written, to_chrome_trace_json(tracer));
  EXPECT_TRUE(json_balanced(written));
  EXPECT_NE(written.find("allocate VM"), std::string::npos);
}

TEST_F(TraceFileEnvTest, UnwritablePathThrows) {
  ::setenv(kTraceFileEnv, "/nonexistent-dir/trace.json", /*overwrite=*/1);
  Tracer tracer;
  EXPECT_THROW(maybe_write_trace(tracer), std::runtime_error);
}

TEST(TraceExportTest, MetadataRecordsTruncationAccounting) {
  Tracer tracer{4};
  tracer.record(Time::us(1), TraceCategory::kFabric, "dropped while disabled");
  tracer.enable();
  for (int i = 0; i < 6; ++i) {
    tracer.record(Time::us(10 + i), TraceCategory::kFabric, "evictor");
  }
  const std::string json = to_chrome_trace_json(tracer);
  EXPECT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("\"capacity\":4"), std::string::npos);
  EXPECT_NE(json.find("\"retained\":4"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_while_disabled\":1"), std::string::npos);
  EXPECT_NE(json.find("\"evicted\":2"), std::string::npos);
}

TEST(TraceExportTest, ParentChildSpansEmitFlowLinks) {
  Tracer tracer;
  tracer.enable();
  const TraceContext root = tracer.begin_trace();
  const TraceContext child = tracer.child_of(root);
  tracer.record_span(Time::us(1), Time::us(9), TraceCategory::kFabric, "remote read", {},
                     root);
  tracer.record_span(Time::us(2), Time::us(5), TraceCategory::kFabric, "retry backoff", {},
                     child);
  const std::string json = to_chrome_trace_json(tracer);
  EXPECT_TRUE(json_balanced(json));
  // One flow start at the parent, one flow finish at the child, sharing
  // the child's span id as the flow id.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"s\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"f\""), 1u);
  char id[32];
  std::snprintf(id, sizeof id, "%016llx", static_cast<unsigned long long>(child.span_id));
  EXPECT_EQ(count_occurrences(json, std::string{"\"id\":\""} + id + "\""), 2u);
}

TEST(TraceExportTest, NoFlowLinksWithoutContexts) {
  Tracer tracer;
  tracer.enable();
  tracer.record_span(Time::us(1), Time::us(2), TraceCategory::kFabric, "plain span");
  const std::string json = to_chrome_trace_json(tracer);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"s\""), 0u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"f\""), 0u);
}

TEST(TraceExportTest, ExportIsDeterministic) {
  auto build = [] {
    Tracer tracer;
    tracer.seed_trace_ids(9);
    tracer.enable();
    const TraceContext root = tracer.begin_trace();
    tracer.record_span(Time::us(3), Time::us(7), TraceCategory::kApplication, "op read",
                       {{"vm", "1"}}, root);
    tracer.record_span(Time::us(4), Time::us(6), TraceCategory::kFabric, "remote read", {},
                       tracer.child_of(root));
    return to_chrome_trace_json(tracer);
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace dredbox::sim
