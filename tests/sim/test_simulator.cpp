#include "sim/simulator.hpp"

#include <gtest/gtest.h>

namespace dredbox::sim {
namespace {

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), Time::zero());
}

TEST(SimulatorTest, AfterSchedulesRelativeToNow) {
  Simulator sim;
  std::vector<int> order;
  sim.after(Time::ms(10), [&] {
    order.push_back(1);
    sim.after(Time::ms(5), [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), Time::ms(15));
}

TEST(SimulatorTest, AtSchedulesAbsolute) {
  Simulator sim;
  bool fired = false;
  sim.at(Time::sec(1), [&] { fired = true; });
  sim.run_until(Time::ms(500));
  EXPECT_FALSE(fired);
  sim.run_until(Time::sec(2));
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), Time::sec(2));
}

TEST(SimulatorTest, CancelStopsEvent) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.after(Time::ms(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, SeededRngIsDeterministic) {
  Simulator a{99};
  Simulator b{99};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.rng().uniform_int(0, 1 << 20), b.rng().uniform_int(0, 1 << 20));
  }
}

TEST(SimulatorTest, ForkRngDecorrelates) {
  Simulator sim{7};
  Rng child = sim.fork_rng();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (sim.rng().uniform_int(0, 1 << 30) == child.uniform_int(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(SimulatorTest, ResetRestoresCleanState) {
  Simulator sim{1};
  sim.after(Time::sec(5), [] {});
  sim.run_until(Time::sec(1));
  sim.reset(2);
  EXPECT_EQ(sim.now(), Time::zero());
  EXPECT_EQ(sim.run(), 0u);  // pending event was dropped
}

TEST(SimulatorTest, RunReturnsDispatchCount) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.after(Time::ms(i + 1), [] {});
  EXPECT_EQ(sim.run(), 7u);
}

}  // namespace
}  // namespace dredbox::sim
