// Unit tests for sim::InplaceFunction / sim::InplaceAction — the
// allocation-free callable the event kernel and DMA completions carry
// (ISSUE 9a). Covers the documented contract: inline invocation with
// arguments and returns, move-only ownership (moved-from is empty, the
// target runs the capture), destructor execution for owned captures,
// std::bad_function_call on empty invocation, and the fixed memory
// footprint the event node layout depends on.

#include "sim/inplace_action.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>

namespace dredbox::sim {
namespace {

TEST(InplaceFunctionTest, InvokesWithArgumentsAndReturn) {
  InplaceFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_TRUE(static_cast<bool>(add));
  EXPECT_EQ(add(2, 3), 5);
  EXPECT_EQ(add(-7, 7), 0);
}

TEST(InplaceFunctionTest, CapturesStateInline) {
  int counter = 0;
  InplaceAction bump = [&counter] { ++counter; };
  bump();
  bump();
  EXPECT_EQ(counter, 2);
}

TEST(InplaceFunctionTest, DefaultConstructedIsEmptyAndThrows) {
  InplaceAction empty;
  EXPECT_FALSE(static_cast<bool>(empty));
  EXPECT_THROW(empty(), std::bad_function_call);
  InplaceAction null_constructed{nullptr};
  EXPECT_FALSE(static_cast<bool>(null_constructed));
  EXPECT_THROW(null_constructed(), std::bad_function_call);
}

TEST(InplaceFunctionTest, MoveTransfersTheCallableAndEmptiesTheSource) {
  int calls = 0;
  InplaceAction original = [&calls] { ++calls; };
  InplaceAction moved{std::move(original)};
  EXPECT_FALSE(static_cast<bool>(original));  // NOLINT(bugprone-use-after-move)
  EXPECT_THROW(original(), std::bad_function_call);
  moved();
  EXPECT_EQ(calls, 1);

  InplaceAction assigned;
  assigned = std::move(moved);
  EXPECT_FALSE(static_cast<bool>(moved));  // NOLINT(bugprone-use-after-move)
  assigned();
  EXPECT_EQ(calls, 2);
}

TEST(InplaceFunctionTest, MoveAssignmentDestroysThePreviousTarget) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> alive = token;
  InplaceAction holder = [token] { (void)token; };
  token.reset();
  EXPECT_FALSE(alive.expired()) << "capture keeps the token alive";
  holder = [] {};  // replacing the target must destroy the old capture
  EXPECT_TRUE(alive.expired());
}

TEST(InplaceFunctionTest, AssigningNullptrDestroysAndEmpties) {
  auto token = std::make_shared<int>(2);
  std::weak_ptr<int> alive = token;
  InplaceAction holder = [token] { (void)token; };
  token.reset();
  ASSERT_FALSE(alive.expired());
  holder = nullptr;
  EXPECT_TRUE(alive.expired());
  EXPECT_FALSE(static_cast<bool>(holder));
}

TEST(InplaceFunctionTest, DestructorRunsTheCaptureDestructor) {
  auto token = std::make_shared<std::string>("owned");
  std::weak_ptr<std::string> alive = token;
  {
    InplaceAction holder = [token] { (void)token; };
    token.reset();
    EXPECT_FALSE(alive.expired());
  }
  EXPECT_TRUE(alive.expired()) << "~InplaceFunction must destroy the capture";
}

TEST(InplaceFunctionTest, MoveOnlyCapturesWork) {
  auto owned = std::make_unique<int>(42);
  InplaceFunction<int()> read = [owned = std::move(owned)] { return *owned; };
  EXPECT_EQ(read(), 42);
  InplaceFunction<int()> moved{std::move(read)};
  EXPECT_EQ(moved(), 42);
}

TEST(InplaceFunctionTest, CapacityBoundaryCapturesFitExactly) {
  // The datapath budget: a capture of exactly kCapacity bytes compiles and
  // runs (the widest real capture — the workload DMA completion — is
  // exactly 48 bytes). One byte more is a compile error by static_assert,
  // which cannot be expressed as a runtime test; the boundary fit can.
  struct Exact {
    std::uint64_t words[6];  // 48 bytes == InplaceAction::kCapacity
  };
  static_assert(sizeof(Exact) == InplaceAction::kCapacity);
  Exact payload{{1, 2, 3, 4, 5, 6}};
  std::uint64_t sum = 0;
  InplaceFunction<std::uint64_t()> fold = [payload]() {
    std::uint64_t s = 0;
    for (const std::uint64_t w : payload.words) s += w;
    return s;
  };
  sum = fold();
  EXPECT_EQ(sum, 21u);
}

TEST(InplaceFunctionTest, FootprintIsStorePlusTwoFunctionPointers) {
  // The event node embeds the action by value; its size is part of the
  // kernel's cache layout. 48 bytes of max_align_t-aligned storage plus
  // invoke/manage pointers pads to exactly 64 bytes on LP64.
  static_assert(InplaceAction::kCapacity == 48);
  EXPECT_EQ(sizeof(InplaceAction), 64u);
}

TEST(InplaceFunctionTest, SelfMoveAssignmentIsSafe) {
  int calls = 0;
  InplaceAction action = [&calls] { ++calls; };
  InplaceAction& alias = action;
  action = std::move(alias);
  action();
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace dredbox::sim
