#include "sim/breakdown.hpp"

#include <gtest/gtest.h>

namespace dredbox::sim {
namespace {

TEST(BreakdownTest, EmptyTotalIsZero) {
  Breakdown b;
  EXPECT_EQ(b.total(), Time::zero());
  EXPECT_TRUE(b.components().empty());
}

TEST(BreakdownTest, ChargeAccumulatesPerComponent) {
  Breakdown b;
  b.charge("mac", Time::ns(100));
  b.charge("phy", Time::ns(50));
  b.charge("mac", Time::ns(25));
  EXPECT_EQ(b.of("mac"), Time::ns(125));
  EXPECT_EQ(b.of("phy"), Time::ns(50));
  EXPECT_EQ(b.total(), Time::ns(175));
  EXPECT_EQ(b.components().size(), 2u);
}

TEST(BreakdownTest, PreservesFirstAppearanceOrder) {
  Breakdown b;
  b.charge("z-late", Time::ns(1));
  b.charge("a-early", Time::ns(1));
  b.charge("z-late", Time::ns(1));
  EXPECT_EQ(b.components()[0].first, "z-late");
  EXPECT_EQ(b.components()[1].first, "a-early");
}

TEST(BreakdownTest, MissingComponentIsZero) {
  Breakdown b;
  EXPECT_EQ(b.of("nothing"), Time::zero());
  EXPECT_FALSE(b.has("nothing"));
}

TEST(BreakdownTest, MergeAddsComponentwise) {
  Breakdown a, b;
  a.charge("x", Time::ns(10));
  b.charge("x", Time::ns(5));
  b.charge("y", Time::ns(7));
  a.merge(b);
  EXPECT_EQ(a.of("x"), Time::ns(15));
  EXPECT_EQ(a.of("y"), Time::ns(7));
  EXPECT_EQ(a.total(), Time::ns(22));
}

TEST(BreakdownTest, ScaleAllAverages) {
  Breakdown b;
  b.charge("x", Time::ns(100));
  b.charge("y", Time::ns(300));
  b.scale_all(0.25);
  EXPECT_EQ(b.of("x"), Time::ns(25));
  EXPECT_EQ(b.of("y"), Time::ns(75));
}

TEST(BreakdownTest, ToStringContainsComponentsAndTotal) {
  Breakdown b;
  b.charge("glue logic", Time::ns(40));
  b.charge("memory access", Time::ns(60));
  const std::string out = b.to_string();
  EXPECT_NE(out.find("glue logic"), std::string::npos);
  EXPECT_NE(out.find("memory access"), std::string::npos);
  EXPECT_NE(out.find("TOTAL"), std::string::npos);
  EXPECT_NE(out.find("100 ns"), std::string::npos);  // auto-unit total
}

TEST(BreakdownTest, ZeroChargeComponentAppears) {
  Breakdown b;
  b.charge("queueing", Time::zero());
  EXPECT_TRUE(b.has("queueing"));
  EXPECT_EQ(b.total(), Time::zero());
}

}  // namespace
}  // namespace dredbox::sim
