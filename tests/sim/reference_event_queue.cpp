#include "reference_event_queue.hpp"

#include <stdexcept>

namespace dredbox::sim {

ReferenceEventQueue::EventId ReferenceEventQueue::schedule(Time when, Action action) {
  if (when < now_) {
    throw std::invalid_argument("ReferenceEventQueue::schedule: time " + when.to_string() +
                                " precedes current time " + now_.to_string());
  }
  EventId id{next_id_++};
  heap_.push(Entry{when, next_seq_++, id, std::move(action)});
  pending_.insert(id.value);
  return id;
}

bool ReferenceEventQueue::cancel(EventId id) {
  auto it = pending_.find(id.value);
  if (it == pending_.end()) return false;
  pending_.erase(it);
  cancelled_.insert(id.value);
  return true;
}

void ReferenceEventQueue::evict_cancelled_top() const {
  while (!heap_.empty() && cancelled_.erase(heap_.top().id.value) > 0) heap_.pop();
}

Time ReferenceEventQueue::next_time() const {
  evict_cancelled_top();
  if (heap_.empty()) return Time::infinity();
  return heap_.top().when;
}

bool ReferenceEventQueue::dispatch_one() {
  evict_cancelled_top();
  if (heap_.empty()) return false;
  Entry top = heap_.top();
  heap_.pop();
  pending_.erase(top.id.value);
  now_ = top.when;
  top.action();
  return true;
}

std::size_t ReferenceEventQueue::run_until(Time until) {
  std::size_t dispatched = 0;
  while (next_time() <= until) {
    if (!dispatch_one()) break;
    ++dispatched;
  }
  if (now_ < until && !until.is_infinite()) now_ = until;
  return dispatched;
}

std::size_t ReferenceEventQueue::run() {
  std::size_t dispatched = 0;
  while (dispatch_one()) ++dispatched;
  return dispatched;
}

void ReferenceEventQueue::reset() {
  heap_ = {};
  pending_.clear();
  cancelled_.clear();
  now_ = Time::zero();
}

}  // namespace dredbox::sim
