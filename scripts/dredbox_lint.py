#!/usr/bin/env python3
"""dredbox-lint: project-specific determinism and hygiene checks.

clang-tidy covers the generic C++ bug classes; this linter enforces the
rules that make a discrete-event simulator reproducible, which no generic
tool knows about:

  wall-clock           Simulated time must come from sim::Time /
                       Simulator::now(), never the host clock. Bans
                       std::chrono::system_clock / steady_clock /
                       high_resolution_clock, time(NULL)-style calls,
                       clock(), gettimeofday(), clock_gettime().
  nondeterministic-rng Randomness must flow from the seeded sim::Rng.
                       Bans std::rand/srand and std::random_device
                       outside src/sim/random.*.
  unordered-iteration  Range-for over a std::unordered_{map,set} member
                       produces platform-dependent order; decision paths
                       and reports iterating one must either use std::map
                       or sort first (and carry a suppression explaining
                       why order cannot leak).
  raw-new              Library code allocates through make_unique /
                       make_shared / containers; raw `new`/`delete`
                       invites leaks on the exception paths the contract
                       layer introduces.
  printf-family        Direct printf/fprintf/sprintf/snprintf in library
                       code bypasses sim::strformat (the bounds-checked
                       formatting wrapper) and writes to streams the
                       determinism harness cannot capture.
  metric-name          Instrument names registered on MetricsRegistry
                       must be dotted lower-case with at least three
                       components ("sub.system.metric"), so OpenMetrics /
                       report exports group deterministically and rename
                       collisions stay visible. Checked for literal names
                       in .counter("...")/.gauge("...")/.histogram("...")
                       calls in library code.
  include-layering     src/ is a DAG of layers (sim -> hw -> {optics, net,
                       memsys} / {os, hyp} -> orch -> core -> workload,
                       with tco off sim); a file under src/<layer>/ may
                       #include "other/..." only when <layer> is allowed
                       to depend on `other`. Keeps the simulation kernel
                       reusable and upward dependencies (the cycles that
                       break incremental testing) out.
  mutable-global       `static`/`inline` non-const data (namespace-scope
                       globals, class statics, function-local statics) is
                       shared mutable state: it leaks simulation results
                       across runs within one process and races under the
                       parallel sweep runner. State belongs in objects
                       owned by a Datacenter; genuinely immutable tables
                       must be `static const`/`static constexpr`.
                       (Heuristic skips declarations whose first
                       punctuation is `(` — i.e. functions.)

  hot-path-alloc       The op datapath is allocation-free in steady state
                       (the BM_*SteadyStateAllocs benches pin it at 0
                       allocs/op); code between
                       `// dredbox-lint: hot-path-begin` and
                       `// dredbox-lint: hot-path-end` markers must not
                       reach for heap-allocating constructs: make_unique /
                       make_shared, std::function (type-erased heap
                       fallback; use sim::InplaceFunction), or std::string
                       temporaries (std::string{...}, std::to_string).
                       Cold branches inside a hot region (error-string
                       assembly, tracing-gated telemetry) carry a
                       suppression with the reason.

Suppress a finding with:  // dredbox-lint: ignore[<rule>]
(with a reason after the closing bracket, by convention). On a line of its
own the suppression applies to the next line; trailing a statement it
applies to that line.

Usage: dredbox_lint.py [--root DIR] [PATHS...]
Exits 0 when clean, 1 when any violation is found. Output is sorted by
(file, line) so runs are diffable.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Library code held to the strictest standard. examples/ and bench/ are
# CLI programs where printf-to-stdout is the product; tests may exercise
# banned constructs on purpose.
LIB_DIRS = ("src",)
ALL_DIRS = ("src", "tests", "examples", "bench")
EXTENSIONS = {".cpp", ".hpp", ".cc", ".hh", ".h"}

SUPPRESS_RE = re.compile(r"//\s*dredbox-lint:\s*ignore\[([a-z-]+(?:\s*,\s*[a-z-]+)*)\]")

# Hot-datapath region markers (matched on RAW lines, so they read as plain
# comments to the compiler). Between a begin and its end, heap-allocating
# constructs are findings under `hot-path-alloc`.
HOT_PATH_BEGIN_RE = re.compile(r"//\s*dredbox-lint:\s*hot-path-begin\b")
HOT_PATH_END_RE = re.compile(r"//\s*dredbox-lint:\s*hot-path-end\b")
HOT_ALLOC_RE = re.compile(
    r"\bstd::make_unique\s*<"
    r"|\bstd::make_shared\s*<"
    r"|\bstd::function\s*<"
    r"|\bstd::string\s*[({]"
    r"|\bstd::to_string\s*\("
)

WALL_CLOCK_RE = re.compile(
    r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"
    r"|\b(?:std::)?(?:time|clock|gettimeofday|clock_gettime|localtime|gmtime)\s*\("
)
RNG_RE = re.compile(r"\bstd::(rand|srand|random_device)\b|\brandom_device\b")
RAW_NEW_RE = re.compile(r"(?<![:\w])new\s+(?:\(|[A-Za-z_:])")
RAW_DELETE_RE = re.compile(r"(?<![:\w])delete(?:\[\])?\s+[A-Za-z_:(]")
PRINTF_RE = re.compile(r"\b(?:std::)?(printf|fprintf|sprintf|snprintf|vsprintf|vsnprintf|vprintf|vfprintf|puts|fputs|putchar)\s*\(")
UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s+(\w+)\s*[;{=]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*(?:const\s+)?auto\s*&{0,2}\s*(?:\[[^\]]*\]|\w+)\s*:\s*([A-Za-z_][\w.:\->]*)\s*\)")
# Literal instrument registrations; the name itself lives in the raw line
# because strip_comments_and_strings blanks string contents.
METRIC_REG_CALL_RE = re.compile(r"\.(?:counter|gauge|histogram)\s*\(")
METRIC_REG_NAME_RE = re.compile(r"\.(?:counter|gauge|histogram)\s*\(\s*\"([^\"]*)\"")
METRIC_NAME_RE = re.compile(r"^[a-z0-9_]+(?:\.[a-z0-9_]+){2,}$")

# Declarations allowed to use banned constructs because they ARE the
# sanctioned wrapper (relative to repo root).
RNG_ALLOWED = {"src/sim/random.hpp", "src/sim/random.cpp"}

# The architecture DAG: src/<layer>/ may include headers only from these
# layers. sim is the dependency-free kernel; hw models sit on it; the
# fabric stack (optics -> net -> memsys) and the software stack (os ->
# hyp) build on hw; orch coordinates both; tco is an independent model off
# sim; core composes everything; workload drives core.
LAYER_DEPS: dict[str, set[str]] = {
    "sim": {"sim"},
    "hw": {"sim", "hw"},
    "optics": {"sim", "hw", "optics"},
    "net": {"sim", "hw", "optics", "net"},
    "memsys": {"sim", "hw", "optics", "net", "memsys"},
    "os": {"sim", "hw", "os"},
    "hyp": {"sim", "hw", "os", "hyp"},
    "orch": {"sim", "hw", "optics", "net", "memsys", "os", "hyp", "orch"},
    "tco": {"sim", "tco"},
    "core": {"sim", "hw", "optics", "net", "memsys", "os", "hyp", "orch", "tco", "core"},
    "workload": {"sim", "hw", "optics", "net", "memsys", "os", "hyp", "orch", "tco",
                 "core", "workload"},
}
# Quoted project include whose first path component is a known layer.
# Matched on the RAW line: string stripping blanks the path out.
PROJECT_INCLUDE_RE = re.compile(r'#include\s+"([a-z]+)/')

# `static`/`inline` data declarations that are not immutable. The first
# punctuation after the declarator decides: `(` is a function (skipped),
# `; = {` is data (flagged). Misses pathological cases like
# `static std::function<void()> f;` (a `(` inside template args), which a
# review catches; the rule exists to stop the easy 95%.
MUTABLE_GLOBAL_RE = re.compile(
    r"^\s*(?:(?:inline|static)\s+){1,2}"
    r"(?!(?:const|constexpr|constinit|consteval|thread_local|struct|class|enum|union)\b)"
)
MUTABLE_GLOBAL_KEYWORD_RE = re.compile(r"\b(?:static|inline)\s")


class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path: str, line: int, rule: str, message: str) -> None:
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line layout.

    Suppression comments are consumed separately before this runs.
    """
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            chunk = text[i : j + 2]
            out.append("".join("\n" if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            out.append(quote + " " * max(0, j - i - 1) + (text[j] if j < n else ""))
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def collect_unordered_members(stripped_files: dict[str, str]) -> set[str]:
    """Names declared anywhere as unordered containers (cross-file, by name).

    Name-based matching is deliberately coarse: a name that is unordered
    in one translation unit flags range-fors over the same name anywhere,
    which errs toward review rather than silence.
    """
    names: set[str] = set()
    for text in stripped_files.values():
        for m in UNORDERED_DECL_RE.finditer(text):
            names.add(m.group(1))
    return names


def lint_file(
    rel: str,
    raw: str,
    stripped: str,
    unordered_names: set[str],
    in_lib: bool,
) -> list[Finding]:
    findings: list[Finding] = []
    raw_lines = raw.splitlines()
    stripped_lines = stripped.splitlines()

    suppressions: dict[int, set[str]] = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",")}
            suppressions.setdefault(idx, set()).update(rules)
            # A comment-only suppression line also covers the next line.
            if line.lstrip().startswith("//"):
                suppressions.setdefault(idx + 1, set()).update(rules)

    def suppressed(lineno: int, rule: str) -> bool:
        rules = suppressions.get(lineno)
        return rules is not None and (rule in rules or "all" in rules)

    def add(lineno: int, rule: str, message: str) -> None:
        if not suppressed(lineno, rule):
            findings.append(Finding(rel, lineno, rule, message))

    # Layer of a src/<layer>/... file, for include-layering.
    parts = rel.split("/")
    layer = parts[1] if len(parts) >= 3 and parts[0] == "src" and parts[1] in LAYER_DEPS else None

    # Hot-datapath regions: lines between begin/end markers (raw lines —
    # the markers are comments, which stripping blanks out).
    hot_lines: set[int] = set()
    in_hot = False
    for idx, line in enumerate(raw_lines, start=1):
        if HOT_PATH_END_RE.search(line):
            in_hot = False
        elif HOT_PATH_BEGIN_RE.search(line):
            in_hot = True
        elif in_hot:
            hot_lines.add(idx)
    if in_hot:
        add(len(raw_lines), "hot-path-alloc",
            "unterminated hot-path-begin marker (missing hot-path-end)")

    for idx, line in enumerate(stripped_lines, start=1):
        if idx in hot_lines and HOT_ALLOC_RE.search(line):
            add(idx, "hot-path-alloc",
                "heap-allocating construct inside a hot-path region; the op "
                "datapath is allocation-free in steady state — use "
                "sim::InplaceFunction, interned ComponentIds, or pooled storage "
                "(or suppress with the reason this branch is cold)")
        if layer is not None:
            raw_line = raw_lines[idx - 1] if idx - 1 < len(raw_lines) else ""
            for m in PROJECT_INCLUDE_RE.finditer(raw_line):
                included = m.group(1)
                if included in LAYER_DEPS and included not in LAYER_DEPS[layer]:
                    add(idx, "include-layering",
                        f"src/{layer}/ must not include \"{included}/...\": the layer DAG "
                        f"allows {layer} -> {{{', '.join(sorted(LAYER_DEPS[layer]))}}}")
        if in_lib and MUTABLE_GLOBAL_RE.match(line):
            decl = MUTABLE_GLOBAL_KEYWORD_RE.sub("", line, count=2)
            first_punct = next((c for c in decl if c in "(;={"), None)
            if first_punct in {";", "=", "{"}:
                add(idx, "mutable-global",
                    "static/inline non-const data is shared mutable state (races under "
                    "the parallel sweep, leaks across runs); move it into an object or "
                    "declare it static const/constexpr")
        if WALL_CLOCK_RE.search(line):
            add(idx, "wall-clock",
                "host clock source in simulation code; use sim::Time / Simulator::now()")
        if rel not in RNG_ALLOWED and RNG_RE.search(line):
            add(idx, "nondeterministic-rng",
                "unseeded randomness; draw from the simulation's sim::Rng instead")
        if in_lib:
            if RAW_NEW_RE.search(line):
                add(idx, "raw-new",
                    "raw `new` in library code; use std::make_unique/make_shared or a container")
            if RAW_DELETE_RE.search(line):
                add(idx, "raw-new",
                    "raw `delete` in library code; ownership belongs in smart pointers")
            if PRINTF_RE.search(line):
                add(idx, "printf-family",
                    "printf-family call in library code; use sim::strformat / iostreams")
            for m in RANGE_FOR_RE.finditer(line):
                target = m.group(1)
                base = target.split(".")[-1].split("->")[-1]
                if base in unordered_names:
                    add(idx, "unordered-iteration",
                        f"range-for over unordered container '{base}': iteration order is "
                        "implementation-defined; use std::map, sort first, or suppress with "
                        "a reason if order provably cannot leak into simulation state")
            if METRIC_REG_CALL_RE.search(line):
                raw_line = raw_lines[idx - 1] if idx - 1 < len(raw_lines) else ""
                for m in METRIC_REG_NAME_RE.finditer(raw_line):
                    name = m.group(1)
                    if not METRIC_NAME_RE.match(name):
                        add(idx, "metric-name",
                            f"instrument name '{name}' must be dotted lower-case with >= 3 "
                            "components, e.g. 'memsys.fabric.retries'")
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=".", help="repository root (default: cwd)")
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: src/ tests/ examples/ bench/)")
    args = parser.parse_args(argv)

    root = Path(args.root).resolve()
    if args.paths:
        files = [Path(p).resolve() for p in args.paths]
    else:
        files = []
        for d in ALL_DIRS:
            base = root / d
            if base.is_dir():
                files.extend(p for p in sorted(base.rglob("*")) if p.suffix in EXTENSIONS)

    raw_texts: dict[str, str] = {}
    stripped_texts: dict[str, str] = {}
    for path in files:
        try:
            rel = str(path.relative_to(root))
        except ValueError:
            rel = str(path)
        try:
            raw_texts[rel] = path.read_text(encoding="utf-8", errors="replace")
        except OSError as err:
            print(f"dredbox-lint: cannot read {rel}: {err}", file=sys.stderr)
            return 2
        stripped_texts[rel] = strip_comments_and_strings(raw_texts[rel])

    unordered_names = collect_unordered_members(
        {r: t for r, t in stripped_texts.items() if r.startswith(LIB_DIRS)}
    )

    findings: list[Finding] = []
    for rel in raw_texts:
        in_lib = rel.startswith(LIB_DIRS)
        findings.extend(
            lint_file(rel, raw_texts[rel], stripped_texts[rel], unordered_names, in_lib)
        )

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")

    if findings:
        print(f"\ndredbox-lint: {len(findings)} violation(s) in "
              f"{len({f.path for f in findings})} file(s)", file=sys.stderr)
        return 1
    print(f"dredbox-lint: {len(raw_texts)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
