#!/usr/bin/env bash
# Perf harness: build Release, run the micro benchmarks plus a fixed set of
# end-to-end reproduction benches, and reduce everything into one
# BENCH_<tag>.json perf-trajectory point (see scripts/bench_reduce.py for
# the schema). All benches are seed-pinned in code, so two runs on the
# same host differ only by timer noise.
#
# Usage: scripts/bench.sh [--tag TAG] [-o OUT] [--build-dir DIR] [--quick]
#                         [--sweep] [--baseline 'NAME=NS[=NOTE]']...
#   --tag TAG    label for the point (default: local); OUT defaults to
#                BENCH_<tag>.json in the repo root
#   --quick      short micro timings (~seconds total); for CI smoke, not
#                for checked-in points
#   --sweep      also run the examples/sweep parameter sweep (sequential +
#                4-thread parallel, digest-checked) and fold its summary —
#                speedup, digest verdict, latency percentiles — into the
#                point
#   --baseline   record a pre-change reference number for a headline
#                benchmark alongside the measured results
set -euo pipefail

cd "$(dirname "$0")/.."

TAG=local
BUILD_DIR=build
OUT=""
MIN_TIME=0.5
# Median of several repetitions, not one long run: the host is shared, so a
# single repetition's mean can be inflated ~2x by neighbor load. The reducer
# keeps the median aggregate when repetitions > 1.
REPETITIONS=5
RUN_SWEEP=0
BASELINE_ARGS=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --tag) TAG="$2"; shift 2 ;;
    -o) OUT="$2"; shift 2 ;;
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --quick) MIN_TIME=0.05; REPETITIONS=1; shift ;;
    --sweep) RUN_SWEEP=1; shift ;;
    --baseline) BASELINE_ARGS+=(--baseline "$2"); shift 2 ;;
    *) echo "bench.sh: unknown argument: $1" >&2; exit 2 ;;
  esac
done
OUT="${OUT:-BENCH_${TAG}.json}"

# The end-to-end set: fabric throughput (bandwidth), Fig. 8 (latency
# breakdown), Fig. 10 (orchestration agility) — one bench per axis of the
# paper's evaluation.
E2E_BENCHES="abl_fabric_throughput fig8_latency fig10_scaleup"

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "== configure $BUILD_DIR (Release)"
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
fi
echo "== build bench targets"
SWEEP_TARGET=""
[[ "$RUN_SWEEP" == 1 ]] && SWEEP_TARGET="sweep"
# shellcheck disable=SC2086
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 4)" \
  --target micro_benchmarks quickstart $E2E_BENCHES $SWEEP_TARGET

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== micro benchmarks (min_time=${MIN_TIME}s, repetitions=${REPETITIONS})"
"$BUILD_DIR/bench/micro_benchmarks" \
  --benchmark_format=json \
  --benchmark_out="$tmp/micro.json" \
  --benchmark_out_format=json \
  --benchmark_repetitions="$REPETITIONS" \
  --benchmark_min_time="$MIN_TIME" > /dev/null

echo "== event-kernel dispatch profile (quickstart, DREDBOX_PROFILE=1)"
DREDBOX_PROFILE=1 DREDBOX_REPORT_FILE="$tmp/profile_report.json" \
  "$BUILD_DIR/examples/quickstart" > /dev/null

E2E_ARGS=()
for bench in $E2E_BENCHES; do
  echo "== end-to-end: $bench"
  start_ns=$(date +%s%N)
  rc=0
  "$BUILD_DIR/bench/$bench" > "$tmp/$bench.out" 2>&1 || rc=$?
  end_ns=$(date +%s%N)
  wall=$(awk -v s="$start_ns" -v e="$end_ns" 'BEGIN { printf "%.3f", (e - s) / 1e9 }')
  if [[ "$rc" != 0 ]]; then
    echo "bench.sh: $bench exited with $rc:" >&2
    tail -20 "$tmp/$bench.out" >&2
    exit 1
  fi
  E2E_ARGS+=(--e2e "$bench=$wall=$rc=$tmp/$bench.out")
done

SWEEP_ARGS=()
if [[ "$RUN_SWEEP" == 1 ]]; then
  echo "== parameter sweep (sequential + 4-thread parallel, digest-checked)"
  "$BUILD_DIR/examples/sweep" --threads 4 --out "$tmp/sweep.json"
  SWEEP_ARGS=(--sweep "$tmp/sweep.json")
fi

python3 scripts/bench_reduce.py reduce --tag "$TAG" --micro "$tmp/micro.json" \
  --kernel-profile "$tmp/profile_report.json" \
  "${E2E_ARGS[@]}" ${SWEEP_ARGS[@]+"${SWEEP_ARGS[@]}"} \
  ${BASELINE_ARGS[@]+"${BASELINE_ARGS[@]}"} -o "$OUT"
python3 scripts/bench_reduce.py validate "$OUT"
