#!/usr/bin/env python3
"""Reduce benchmark runs into a BENCH_*.json perf-trajectory point, and
validate such files against the dredbox-bench/v1 schema.

The repo's perf north star ("as fast as the hardware allows", ROADMAP.md)
is tracked as a series of checked-in BENCH_<tag>.json files, one per PR
that claims a performance change. Each point records:

  * micro       — google-benchmark results (op latency, items/sec) from
                  bench/micro_benchmarks,
  * end_to_end  — wall time + exit status + paper-shape check lines from a
                  fixed set of end-to-end reproduction benches,
  * baseline    — optional pre-change reference numbers for the headline
                  benchmarks, so the claimed improvement is auditable.

Usage:
  bench_reduce.py reduce --tag pr4 --micro MICRO.json \
      --e2e NAME=WALL_SECONDS=EXIT=STDOUT_PATH ... \
      [--baseline 'BM_Foo/32=21.5=note'] -o BENCH_pr4.json
  bench_reduce.py validate BENCH_pr4.json [...]
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

SCHEMA = "dredbox-bench/v1"

# End-to-end bench stdout lines worth keeping in the record: the paper
# shape checks and the headline summary figures.
CHECK_RE = re.compile(r"REPRODUCED|NOT reproduced|Round trip:|speedup")


def reduce_point(args: argparse.Namespace) -> dict:
    micro_raw = json.loads(Path(args.micro).read_text(encoding="utf-8"))
    context = micro_raw.get("context", {})
    micro = []
    for b in micro_raw.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        entry = {
            "name": b["name"],
            "real_time": b["real_time"],
            "cpu_time": b["cpu_time"],
            "time_unit": b.get("time_unit", "ns"),
        }
        for rate_key in ("items_per_second", "bytes_per_second"):
            if rate_key in b:
                entry[rate_key] = b[rate_key]
        micro.append(entry)

    end_to_end = []
    for spec in args.e2e or []:
        name, wall, exit_code, stdout_path = spec.split("=", 3)
        checks = []
        text = Path(stdout_path).read_text(encoding="utf-8", errors="replace")
        for line in text.splitlines():
            if CHECK_RE.search(line):
                checks.append(line.strip())
        end_to_end.append(
            {
                "name": name,
                "wall_seconds": float(wall),
                "exit_code": int(exit_code),
                "checks": checks,
            }
        )

    baseline = {}
    for spec in args.baseline or []:
        name, value, note = (spec.split("=", 2) + [""])[:3]
        baseline[name] = {"real_time": float(value), "time_unit": "ns", "note": note}

    point = {
        "schema": SCHEMA,
        "tag": args.tag,
        "host": {
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "library_build_type": context.get("library_build_type"),
        },
        "micro": micro,
        "end_to_end": end_to_end,
    }
    if baseline:
        point["baseline"] = baseline
    return point


def validate_point(path: Path) -> list[str]:
    errors: list[str] = []

    def err(msg: str) -> None:
        errors.append(f"{path}: {msg}")

    try:
        point = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]

    if point.get("schema") != SCHEMA:
        err(f"schema is {point.get('schema')!r}, want {SCHEMA!r}")
    if not isinstance(point.get("tag"), str) or not point.get("tag"):
        err("tag must be a non-empty string")

    micro = point.get("micro")
    if not isinstance(micro, list) or not micro:
        err("micro must be a non-empty list")
        micro = []
    names = set()
    for b in micro:
        for key in ("name", "real_time", "cpu_time", "time_unit"):
            if key not in b:
                err(f"micro entry {b.get('name', '?')} missing {key}")
        if not isinstance(b.get("real_time"), (int, float)) or b.get("real_time", -1) < 0:
            err(f"micro entry {b.get('name', '?')} real_time must be >= 0")
        names.add(b.get("name"))
    if "BM_RmstLookup/32" not in names:
        err("micro must include the headline BM_RmstLookup/32 point")

    e2e = point.get("end_to_end")
    if not isinstance(e2e, list) or len(e2e) < 3:
        err("end_to_end must list at least 3 benches")
        e2e = []
    for b in e2e:
        if not isinstance(b.get("name"), str):
            err("end_to_end entry missing name")
        if not isinstance(b.get("wall_seconds"), (int, float)) or b.get("wall_seconds", -1) < 0:
            err(f"end_to_end {b.get('name', '?')} wall_seconds must be >= 0")
        if b.get("exit_code") != 0:
            err(f"end_to_end {b.get('name', '?')} recorded a non-zero exit")

    for name, ref in (point.get("baseline") or {}).items():
        if not isinstance(ref.get("real_time"), (int, float)):
            err(f"baseline {name} missing real_time")
    return errors


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="mode", required=True)

    reduce_p = sub.add_parser("reduce", help="merge bench outputs into one point")
    reduce_p.add_argument("--tag", required=True)
    reduce_p.add_argument("--micro", required=True, help="google-benchmark JSON output")
    reduce_p.add_argument("--e2e", action="append", metavar="NAME=WALL=EXIT=STDOUT")
    reduce_p.add_argument("--baseline", action="append", metavar="NAME=NS[=NOTE]")
    reduce_p.add_argument("-o", "--out", required=True)

    validate_p = sub.add_parser("validate", help="check BENCH_*.json schema")
    validate_p.add_argument("files", nargs="+")

    args = parser.parse_args(argv)
    if args.mode == "reduce":
        point = reduce_point(args)
        Path(args.out).write_text(json.dumps(point, indent=2) + "\n", encoding="utf-8")
        print(f"bench-reduce: wrote {args.out} "
              f"({len(point['micro'])} micro, {len(point['end_to_end'])} end-to-end)")
        return 0

    all_errors: list[str] = []
    for f in args.files:
        all_errors.extend(validate_point(Path(f)))
    for e in all_errors:
        print(e, file=sys.stderr)
    if not all_errors:
        print(f"bench-reduce: {len(args.files)} file(s) valid against {SCHEMA}")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
