#!/usr/bin/env python3
"""Reduce benchmark runs into a BENCH_*.json perf-trajectory point, and
validate observability artifacts. `validate` dispatches on the file's
shape: dredbox-bench/v1 points, dredbox-sweep/v1 reports from
examples/sweep, dredbox-parallel/v1 coupled multi-rack reports from
examples/datacenter, dredbox-report/v1 run reports (DREDBOX_REPORT_FILE),
Chrome trace-event JSON (DREDBOX_TRACE_FILE) and OpenMetrics text
(DREDBOX_OPENMETRICS_FILE).

The repo's perf north star ("as fast as the hardware allows", ROADMAP.md)
is tracked as a series of checked-in BENCH_<tag>.json files, one per PR
that claims a performance change. Each point records:

  * micro       — google-benchmark results (op latency, items/sec) from
                  bench/micro_benchmarks,
  * end_to_end  — wall time + exit status + paper-shape check lines from a
                  fixed set of end-to-end reproduction benches,
  * sweep       — optional summary of a SweepRunner run (examples/sweep
                  --out): parallel speedup, digest verdict, per-cell
                  latency percentiles,
  * baseline    — optional pre-change reference numbers for the headline
                  benchmarks, so the claimed improvement is auditable.

Usage:
  bench_reduce.py reduce --tag pr4 --micro MICRO.json \
      --e2e NAME=WALL_SECONDS=EXIT=STDOUT_PATH ... \
      [--sweep SWEEP.json] [--kernel-profile REPORT.json] \
      [--baseline 'BM_Foo/32=21.5=note'] \
      -o BENCH_pr4.json
  bench_reduce.py validate BENCH_pr4.json SWEEP.json [...]
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

SCHEMA = "dredbox-bench/v1"
SWEEP_SCHEMA = "dredbox-sweep/v1"
REPORT_SCHEMA = "dredbox-report/v1"
PARALLEL_SCHEMA = "dredbox-parallel/v1"

# Minimum parallel speedup the acceptance bar demands of a sweep — only
# enforceable when the host actually has at least as many cores as the
# sweep used threads (a 4-thread sweep on a 1-core CI box is legitimately
# ~1x; the report still records the honest numbers).
MIN_SWEEP_SPEEDUP = 2.0

# Same idea for the coupled multi-rack runs (examples/datacenter): the
# conservative-lookahead kernel pays a barrier per round, so its bar is
# lower than the embarrassingly-parallel sweep's — and like the sweep's
# it only binds when the host has the cores to honour it.
MIN_PARALLEL_SPEEDUP = 1.2

# End-to-end bench stdout lines worth keeping in the record: the paper
# shape checks and the headline summary figures.
CHECK_RE = re.compile(r"REPRODUCED|NOT reproduced|Round trip:|speedup")


def reduce_point(args: argparse.Namespace) -> dict:
    micro_raw = json.loads(Path(args.micro).read_text(encoding="utf-8"))
    context = micro_raw.get("context", {})
    # One row per benchmark. When the run used --benchmark_repetitions, the
    # median aggregate supersedes the per-repetition rows (the host is
    # shared, so a single repetition's mean can be inflated ~2x by neighbor
    # load; the median across repetitions is the stable point).
    micro_by_name: dict[str, dict] = {}
    micro_order: list[str] = []
    # Custom "min" aggregates (the queue benches register one): the min
    # across repetitions approximates the contention-free cost on a shared
    # host, so it rides along as real_time_min next to the median.
    min_by_name: dict[str, float] = {}
    for b in micro_raw.get("benchmarks", []):
        run_type = b.get("run_type", "iteration")
        if run_type == "aggregate" and b.get("aggregate_name") == "min":
            min_by_name[b.get("run_name", b["name"])] = b["real_time"]
            continue
        if run_type == "aggregate" and b.get("aggregate_name") != "median":
            continue
        name = b.get("run_name", b["name"]) if run_type == "aggregate" else b["name"]
        if name in micro_by_name and run_type != "aggregate":
            continue  # later repetition of an already-recorded bench
        entry = {
            "name": name,
            "real_time": b["real_time"],
            "cpu_time": b["cpu_time"],
            "time_unit": b.get("time_unit", "ns"),
        }
        if run_type == "aggregate":
            entry["aggregate"] = "median"
        for rate_key in ("items_per_second", "bytes_per_second"):
            if rate_key in b:
                entry[rate_key] = b[rate_key]
        # Allocation counters (the steady-state-allocs benches): carried
        # into the point so validation can hold the 0-allocs/op line.
        for key, value in b.items():
            if key.startswith("allocs"):
                entry[key] = value
        if name not in micro_by_name:
            micro_order.append(name)
        micro_by_name[name] = entry
    for name, real_time_min in min_by_name.items():
        if name in micro_by_name:
            micro_by_name[name]["real_time_min"] = real_time_min
    micro = [micro_by_name[name] for name in micro_order]

    end_to_end = []
    for spec in args.e2e or []:
        name, wall, exit_code, stdout_path = spec.split("=", 3)
        checks = []
        text = Path(stdout_path).read_text(encoding="utf-8", errors="replace")
        for line in text.splitlines():
            if CHECK_RE.search(line):
                checks.append(line.strip())
        end_to_end.append(
            {
                "name": name,
                "wall_seconds": float(wall),
                "exit_code": int(exit_code),
                "checks": checks,
            }
        )

    baseline = {}
    for spec in args.baseline or []:
        name, value, note = (spec.split("=", 2) + [""])[:3]
        baseline[name] = {"real_time": float(value), "time_unit": "ns", "note": note}

    point = {
        "schema": SCHEMA,
        "tag": args.tag,
        "host": {
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "library_build_type": context.get("library_build_type"),
        },
        "micro": micro,
        "end_to_end": end_to_end,
    }
    if args.sweep:
        point["sweep"] = summarize_sweep(Path(args.sweep))
    if args.parallel:
        point["parallel"] = summarize_parallel(Path(args.parallel))
    if args.kernel_profile:
        point["kernel_profile"] = summarize_kernel_profile(Path(args.kernel_profile))
    if baseline:
        point["baseline"] = baseline
    return point


def summarize_kernel_profile(path: Path) -> dict:
    """Reduce a dredbox-report/v1 run artifact (DREDBOX_REPORT_FILE written
    with DREDBOX_PROFILE=1) to the event-kernel dispatch profile embedded in
    a bench point: per-label dispatch counts and ns/dispatch, so the cost of
    each event family is tracked PR over PR alongside the micro benches."""
    report = json.loads(path.read_text(encoding="utf-8"))
    errors = validate_report(path, report)
    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        raise SystemExit(f"bench-reduce: {path} is not a valid {REPORT_SCHEMA} report")
    rows = report.get("kernel_profile") or []
    if not rows:
        raise SystemExit(
            f"bench-reduce: {path} has no kernel_profile rows — "
            "was the run made with DREDBOX_PROFILE=1?"
        )
    out_rows = []
    for row in sorted(rows, key=lambda r: r.get("host_ns", 0), reverse=True):
        dispatches = row.get("dispatches", 0)
        out_rows.append(
            {
                "label": row["label"],
                "dispatches": dispatches,
                "host_ns": row["host_ns"],
                "ns_per_dispatch": (row["host_ns"] / dispatches) if dispatches else 0.0,
            }
        )
    return {
        "source": report.get("tag", ""),
        "total_dispatches": sum(r["dispatches"] for r in out_rows),
        "rows": out_rows,
    }


def summarize_sweep(path: Path) -> dict:
    """Reduce an examples/sweep --out report to the summary embedded in a
    bench point: the parallel-speedup evidence plus aggregate latency."""
    sweep = json.loads(path.read_text(encoding="utf-8"))
    errors = validate_sweep(path, sweep)
    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        raise SystemExit(f"bench-reduce: {path} is not a valid {SWEEP_SCHEMA} report")

    seq = sweep.get("sequential_wall_seconds")
    wall = sweep["wall_seconds"]
    summary = {
        "cells": sweep["aggregate"]["cells"],
        "cells_ok": sweep["aggregate"]["cells_ok"],
        "threads": sweep["threads"],
        "wall_seconds": wall,
        "digests_match": sweep.get("digests_match", True),
        "throughput_hz": sweep["aggregate"]["throughput_hz"],
        "p99_us": sweep["aggregate"]["p99_us"],
        "latency_percentiles": [
            {
                "cell": f"seed={c['seed']} trays={c['trays']} remote={c['remote_ratio']}",
                **c["latency_us"],
            }
            for c in sweep["cells"]
            if c.get("ok")
        ],
    }
    if seq is not None:
        summary["sequential_wall_seconds"] = seq
        summary["speedup"] = seq / wall if wall > 0 else 0.0
    if "host" in sweep:
        summary["host"] = sweep["host"]
    return summary


def summarize_parallel(path: Path) -> dict:
    """Reduce an examples/datacenter --out report to the summary embedded
    in a bench point: the coupled-run determinism verdict plus the honest
    multi-thread speedup evidence."""
    report = json.loads(path.read_text(encoding="utf-8"))
    errors = validate_parallel(path, report)
    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        raise SystemExit(f"bench-reduce: {path} is not a valid {PARALLEL_SCHEMA} report")
    summary = {
        "racks": report["racks"],
        "threads": report["threads"],
        "digests_match": report["digests_match"],
        "rounds": report["rounds"],
        "messages": report["messages"],
        "cross_ops": report["cross_ops"],
        "sequential_wall_seconds": report["sequential_wall_seconds"],
        "parallel_wall_seconds": report["parallel_wall_seconds"],
        "speedup": report["speedup"],
    }
    if "host" in report:
        summary["host"] = report["host"]
    return summary


def validate_parallel(path: Path, report: dict) -> list[str]:
    """Validate a dredbox-parallel/v1 report (examples/datacenter --out)."""
    errors: list[str] = []

    def err(msg: str) -> None:
        errors.append(f"{path}: {msg}")

    if report.get("schema") != PARALLEL_SCHEMA:
        err(f"schema is {report.get('schema')!r}, want {PARALLEL_SCHEMA!r}")

    for key in ("racks", "threads"):
        if not isinstance(report.get(key), int) or report.get(key, 0) < 1:
            err(f"{key} must be a positive integer")
    if not isinstance(report.get("seed"), int):
        err("seed must be an integer")

    digest = report.get("digest")
    if not isinstance(digest, str) or not re.fullmatch(r"[0-9a-f]{16}", digest):
        err("digest must be a 16-digit lowercase hex string")
    # The point of the artifact: the parallel coupled schedule must be
    # byte-identical to the sequential reference.
    if report.get("digests_match") is not True:
        err("digests_match is false: parallel run diverged from sequential")

    for key in ("offered", "completed", "cross_ops", "spine_tx_messages",
                "spine_fail_fast", "rounds", "messages"):
        if not isinstance(report.get(key), int) or report.get(key, -1) < 0:
            err(f"{key} must be a non-negative integer")
    if report.get("offered", 0) < 1:
        err("offered must be positive (an idle run proves nothing)")

    seq = report.get("sequential_wall_seconds")
    wall = report.get("parallel_wall_seconds")
    for key, value in (("sequential_wall_seconds", seq), ("parallel_wall_seconds", wall)):
        if not isinstance(value, (int, float)) or value < 0:
            err(f"{key} must be >= 0")

    threads = report.get("threads")
    num_cpus = (report.get("host") or {}).get("num_cpus")
    # The speedup bar binds only when the host can actually run the
    # threads in parallel; a multi-thread run on fewer cores records its
    # honest (sub-1x) number without failing validation.
    if (
        isinstance(threads, int)
        and isinstance(num_cpus, int)
        and threads > 1
        and threads <= num_cpus
        and isinstance(seq, (int, float))
        and isinstance(wall, (int, float))
        and wall > 0
        and seq / wall < MIN_PARALLEL_SPEEDUP
    ):
        err(
            f"coupled-run speedup {seq / wall:.2f}x below the "
            f"{MIN_PARALLEL_SPEEDUP}x bar ({threads} threads on {num_cpus} cpus)"
        )
    return errors


def validate_sweep(path: Path, sweep: dict) -> list[str]:
    """Validate a dredbox-sweep/v1 report (examples/sweep --out)."""
    errors: list[str] = []

    def err(msg: str) -> None:
        errors.append(f"{path}: {msg}")

    if sweep.get("schema") != SWEEP_SCHEMA:
        err(f"schema is {sweep.get('schema')!r}, want {SWEEP_SCHEMA!r}")

    threads = sweep.get("threads")
    if not isinstance(threads, int) or threads < 1:
        err("threads must be a positive integer")
    wall = sweep.get("wall_seconds")
    if not isinstance(wall, (int, float)) or wall < 0:
        err("wall_seconds must be >= 0")

    grid = sweep.get("grid")
    if not isinstance(grid, dict):
        err("grid must be an object")
        grid = {}
    expected_cells = 1
    for axis in ("seeds", "rack_trays", "remote_ratios", "fault_plans"):
        values = grid.get(axis)
        if not isinstance(values, list) or not values:
            err(f"grid.{axis} must be a non-empty list")
            expected_cells = None
        elif expected_cells is not None:
            expected_cells *= len(values)

    cells = sweep.get("cells")
    if not isinstance(cells, list) or not cells:
        err("cells must be a non-empty list")
        cells = []
    if expected_cells is not None and cells and len(cells) != expected_cells:
        err(f"cells has {len(cells)} entries, grid implies {expected_cells}")
    for i, c in enumerate(cells):
        if c.get("index") != i:
            err(f"cells[{i}] index is {c.get('index')!r}, want grid order")
        if not c.get("ok"):
            err(f"cells[{i}] failed: {c.get('error', '?')}")
            continue
        digest = c.get("digest")
        if not isinstance(digest, str) or not re.fullmatch(r"[0-9a-f]{16}", digest):
            err(f"cells[{i}] digest must be a 16-digit lowercase hex string")
        latency = c.get("latency_us")
        if not isinstance(latency, dict) or not all(
            isinstance(latency.get(p), (int, float)) for p in ("p50", "p95", "p99")
        ):
            err(f"cells[{i}] latency_us must carry numeric p50/p95/p99")
        for key in ("offered", "completed", "failed"):
            if not isinstance(c.get(key), int) or c.get(key, -1) < 0:
                err(f"cells[{i}] {key} must be a non-negative integer")

    aggregate = sweep.get("aggregate")
    if not isinstance(aggregate, dict):
        err("aggregate must be an object")
    else:
        if aggregate.get("cells") != len(cells):
            err("aggregate.cells disagrees with the cells array")
        if aggregate.get("cells_ok") != sum(1 for c in cells if c.get("ok")):
            err("aggregate.cells_ok disagrees with the cells array")
        for key in ("throughput_hz", "p99_us"):
            if not isinstance(aggregate.get(key), dict):
                err(f"aggregate.{key} must be an object")

    # Fields spliced in by the examples/sweep CLI (absent when to_json()
    # was emitted directly, e.g. from a unit test).
    if "digests_match" in sweep and sweep["digests_match"] is not True:
        err("digests_match is false: parallel run diverged from sequential")
    seq = sweep.get("sequential_wall_seconds")
    if seq is not None:
        if not isinstance(seq, (int, float)) or seq < 0:
            err("sequential_wall_seconds must be >= 0")
        else:
            num_cpus = (sweep.get("host") or {}).get("num_cpus")
            # The >=2x speedup bar only binds when the host can actually
            # run the sweep's threads in parallel.
            if (
                isinstance(threads, int)
                and isinstance(num_cpus, int)
                and threads > 1
                and threads <= num_cpus
                and isinstance(wall, (int, float))
                and wall > 0
                and seq / wall < MIN_SWEEP_SPEEDUP
            ):
                err(
                    f"parallel speedup {seq / wall:.2f}x below the "
                    f"{MIN_SWEEP_SPEEDUP}x bar ({threads} threads on "
                    f"{num_cpus} cpus)"
                )
    return errors


HEX_DIGEST_RE = re.compile(r"^[0-9a-f]{1,16}$")
OM_SAMPLE_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]* -?[0-9.eE+-]+( [0-9.]+)?$")
OM_TYPE_RE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge)$")


def _validate_span(path: Path, span: dict, parent_span_id: str | None,
                   errors: list[str]) -> None:
    where = f"{path}: slowest_traces span {span.get('span_id', '?')}"
    for key in ("name", "category", "begin_us", "duration_us", "span_id"):
        if key not in span:
            errors.append(f"{where} missing {key}")
    if not isinstance(span.get("duration_us"), (int, float)) or span.get("duration_us", -1) < 0:
        errors.append(f"{where} duration_us must be >= 0")
    if parent_span_id is not None and span.get("parent_span_id") != parent_span_id:
        errors.append(f"{where} parent_span_id does not point at its parent")
    for child in span.get("children", []):
        _validate_span(path, child, span.get("span_id"), errors)


def validate_report(path: Path, report: dict) -> list[str]:
    """dredbox-report/v1: the standardized per-run artifact."""
    errors: list[str] = []

    def err(msg: str) -> None:
        errors.append(f"{path}: {msg}")

    if not isinstance(report.get("tag"), str) or not report.get("tag"):
        err("tag must be a non-empty string")
    if not isinstance(report.get("seed"), int):
        err("seed must be an integer")
    for key in ("config_digest", "determinism_digest"):
        if not isinstance(report.get(key), str) or not HEX_DIGEST_RE.match(report.get(key) or ""):
            err(f"{key} must be a lower-case hex string")
    if not isinstance(report.get("fault_plan"), str):
        err("fault_plan must be a string (empty = healthy run)")
    if not isinstance(report.get("tracing"), bool):
        err("tracing must be a boolean")
    if not isinstance(report.get("duration_us"), (int, float)) or report.get("duration_us", -1) < 0:
        err("duration_us must be a number >= 0")

    # metrics / tracer / slowest_traces are per-rack sections; aggregate
    # reports (e.g. the sweep's) legitimately omit them.
    metrics = report.get("metrics")
    if metrics is not None and not isinstance(metrics, list):
        err("metrics must be a list")
    elif metrics is not None:
        for row in metrics:
            if not isinstance(row.get("name"), str) or row.get("type") not in (
                    "counter", "gauge", "histogram"):
                err(f"metrics row {row.get('name', '?')} malformed")
        names = [row.get("name") for row in metrics]
        if names != sorted(names):
            err("metrics rows must be name-sorted")

    tracer = report.get("tracer")
    if tracer is not None and not isinstance(tracer, dict):
        err("tracer accounting block malformed")
    elif tracer is not None:
        for key in ("capacity", "retained", "dropped_while_disabled", "evicted"):
            if not isinstance(tracer.get(key), int) or tracer.get(key, -1) < 0:
                err(f"tracer.{key} must be a non-negative integer")

    traces = report.get("slowest_traces")
    if traces is not None and not isinstance(traces, list):
        err("slowest_traces must be a list")
    elif traces is not None:
        last = None
        for entry in traces:
            if not isinstance(entry.get("trace_id"), str):
                errors.append(f"{path}: slowest_traces entry missing trace_id")
            if not isinstance(entry.get("root"), dict):
                errors.append(f"{path}: slowest_traces entry missing root span")
            else:
                _validate_span(path, entry["root"], None, errors)
            dur = entry.get("duration_us")
            if last is not None and isinstance(dur, (int, float)) and dur > last:
                err("slowest_traces must be sorted by duration descending")
            if isinstance(dur, (int, float)):
                last = dur

    ts = report.get("timeseries")
    if ts is not None:
        if not isinstance(ts, dict) or "period_us" not in ts or not isinstance(
                ts.get("series"), list):
            err("timeseries must be {period_us, series: [...]}")

    profile = report.get("kernel_profile")
    if profile is not None:
        for row in profile if isinstance(profile, list) else []:
            for key in ("label", "dispatches", "host_ns"):
                if key not in row:
                    err(f"kernel_profile row missing {key}")
    return errors


def validate_trace(path: Path, trace: dict) -> list[str]:
    """Chrome trace-event JSON as written by sim::write_trace_file."""
    errors: list[str] = []

    def err(msg: str) -> None:
        errors.append(f"{path}: {msg}")

    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: traceEvents must be a list"]
    meta = trace.get("metadata", {}).get("tracer")
    if not isinstance(meta, dict):
        err("metadata.tracer accounting block missing")
    else:
        for key in ("capacity", "retained", "dropped_while_disabled", "evicted"):
            if not isinstance(meta.get(key), int):
                err(f"metadata.tracer.{key} must be an integer")
    flow_starts, flow_ends = set(), set()
    for ev in events:
        if not isinstance(ev.get("ph"), str):
            err("event missing ph")
            continue
        if ev["ph"] in ("X", "i", "s", "f") and not isinstance(ev.get("ts"), (int, float)):
            err(f"{ev.get('name', '?')} event missing ts")
        if ev["ph"] == "s":
            flow_starts.add(ev.get("id"))
        elif ev["ph"] == "f":
            flow_ends.add(ev.get("id"))
    if flow_ends - flow_starts:
        err(f"flow ends without a matching start: {sorted(flow_ends - flow_starts)[:3]}")
    if flow_starts - flow_ends:
        err(f"flow starts without a matching end: {sorted(flow_starts - flow_ends)[:3]}")
    return errors


def validate_openmetrics(path: Path, text: str) -> list[str]:
    """OpenMetrics text exposition as written by TimeSeriesSet::to_openmetrics."""
    errors: list[str] = []
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        errors.append(f"{path}: must end with '# EOF'")
    typed: set[str] = set()
    for num, line in enumerate(lines, start=1):
        if not line or line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            if not OM_TYPE_RE.match(line):
                errors.append(f"{path}:{num}: malformed TYPE line")
            else:
                typed.add(line.split()[2])
        elif line.startswith("#"):
            continue
        elif OM_SAMPLE_RE.match(line):
            name = line.split()[0]
            base = name[: -len("_total")] if name.endswith("_total") else name
            if name not in typed and base not in typed:
                errors.append(f"{path}:{num}: sample for {name} before its # TYPE line")
        else:
            errors.append(f"{path}:{num}: unparseable line {line[:60]!r}")
    return errors


def validate_point(path: Path) -> list[str]:
    errors: list[str] = []

    def err(msg: str) -> None:
        errors.append(f"{path}: {msg}")

    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [f"{path}: unreadable ({exc})"]

    # OpenMetrics expositions are plain text, not JSON.
    stripped = text.lstrip()
    if path.suffix == ".om" or stripped.startswith("# TYPE"):
        return validate_openmetrics(path, text)

    try:
        point = json.loads(text)
    except json.JSONDecodeError as exc:
        return [f"{path}: unreadable ({exc})"]

    # Chrome trace-event files carry no schema marker; dispatch on shape,
    # then on the "schema" field for the dredbox JSON artifacts.
    if isinstance(point, dict) and "traceEvents" in point:
        return validate_trace(path, point)
    if point.get("schema") == SWEEP_SCHEMA:
        return validate_sweep(path, point)
    if point.get("schema") == REPORT_SCHEMA:
        return validate_report(path, point)
    if point.get("schema") == PARALLEL_SCHEMA:
        return validate_parallel(path, point)

    if point.get("schema") != SCHEMA:
        err(f"schema is {point.get('schema')!r}, want {SCHEMA!r}")
    if not isinstance(point.get("tag"), str) or not point.get("tag"):
        err("tag must be a non-empty string")

    micro = point.get("micro")
    if not isinstance(micro, list) or not micro:
        err("micro must be a non-empty list")
        micro = []
    names = set()
    for b in micro:
        for key in ("name", "real_time", "cpu_time", "time_unit"):
            if key not in b:
                err(f"micro entry {b.get('name', '?')} missing {key}")
        if not isinstance(b.get("real_time"), (int, float)) or b.get("real_time", -1) < 0:
            err(f"micro entry {b.get('name', '?')} real_time must be >= 0")
        # The allocation-free hot-datapath contract (PR 9): every recorded
        # allocs* counter must be exactly zero. Older points without the
        # counters pass vacuously; a new point with a nonzero counter is a
        # steady-state heap regression, not noise.
        for key, value in b.items():
            if key.startswith("allocs") and value != 0:
                err(f"micro entry {b.get('name', '?')} {key} must be 0, got {value}")
        names.add(b.get("name"))
    if "BM_RmstLookup/32" not in names:
        err("micro must include the headline BM_RmstLookup/32 point")

    e2e = point.get("end_to_end")
    if not isinstance(e2e, list) or len(e2e) < 3:
        err("end_to_end must list at least 3 benches")
        e2e = []
    for b in e2e:
        if not isinstance(b.get("name"), str):
            err("end_to_end entry missing name")
        if not isinstance(b.get("wall_seconds"), (int, float)) or b.get("wall_seconds", -1) < 0:
            err(f"end_to_end {b.get('name', '?')} wall_seconds must be >= 0")
        if b.get("exit_code") != 0:
            err(f"end_to_end {b.get('name', '?')} recorded a non-zero exit")

    sweep = point.get("sweep")
    if sweep is not None:
        if not isinstance(sweep, dict):
            err("sweep must be an object")
        else:
            for key in ("cells", "cells_ok", "threads", "wall_seconds", "digests_match"):
                if key not in sweep:
                    err(f"sweep summary missing {key}")
            if sweep.get("digests_match") is not True:
                err("sweep.digests_match must be true")
            if sweep.get("cells") != sweep.get("cells_ok"):
                err("sweep recorded failed cells")
            if not isinstance(sweep.get("latency_percentiles"), list) or not sweep.get(
                "latency_percentiles"
            ):
                err("sweep.latency_percentiles must be a non-empty list")

    par = point.get("parallel")
    if par is not None:
        if not isinstance(par, dict):
            err("parallel must be an object")
        else:
            for key in ("racks", "threads", "digests_match", "rounds",
                        "sequential_wall_seconds", "parallel_wall_seconds", "speedup"):
                if key not in par:
                    err(f"parallel summary missing {key}")
            if par.get("digests_match") is not True:
                err("parallel.digests_match must be true")

    profile = point.get("kernel_profile")
    if profile is not None:
        if not isinstance(profile, dict) or not isinstance(profile.get("rows"), list):
            err("kernel_profile must be {source, total_dispatches, rows}")
        else:
            for row in profile["rows"]:
                for key in ("label", "dispatches", "host_ns", "ns_per_dispatch"):
                    if key not in row:
                        err(f"kernel_profile row {row.get('label', '?')} missing {key}")
            if not isinstance(profile.get("total_dispatches"), int):
                err("kernel_profile.total_dispatches must be an integer")

    for name, ref in (point.get("baseline") or {}).items():
        if not isinstance(ref.get("real_time"), (int, float)):
            err(f"baseline {name} missing real_time")
    return errors


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="mode", required=True)

    reduce_p = sub.add_parser("reduce", help="merge bench outputs into one point")
    reduce_p.add_argument("--tag", required=True)
    reduce_p.add_argument("--micro", required=True, help="google-benchmark JSON output")
    reduce_p.add_argument("--e2e", action="append", metavar="NAME=WALL=EXIT=STDOUT")
    reduce_p.add_argument("--sweep", metavar="SWEEP_JSON",
                          help="examples/sweep --out report to summarize into the point")
    reduce_p.add_argument("--parallel", metavar="PARALLEL_JSON",
                          help="examples/datacenter --out report to summarize into "
                               "the point (coupled multi-rack speedup evidence)")
    reduce_p.add_argument("--kernel-profile", metavar="REPORT_JSON",
                          help="dredbox-report/v1 artifact from a DREDBOX_PROFILE=1 "
                               "run; its per-label dispatch profile is embedded as "
                               "ns/dispatch rows")
    reduce_p.add_argument("--baseline", action="append", metavar="NAME=NS[=NOTE]")
    reduce_p.add_argument("-o", "--out", required=True)

    validate_p = sub.add_parser("validate", help="check BENCH_*.json schema")
    validate_p.add_argument("files", nargs="+")

    args = parser.parse_args(argv)
    if args.mode == "reduce":
        point = reduce_point(args)
        Path(args.out).write_text(json.dumps(point, indent=2) + "\n", encoding="utf-8")
        parts = f"{len(point['micro'])} micro, {len(point['end_to_end'])} end-to-end"
        if "sweep" in point:
            sweep = point["sweep"]
            parts += f", sweep {sweep['cells_ok']}/{sweep['cells']} cells"
        print(f"bench-reduce: wrote {args.out} ({parts})")
        return 0

    all_errors: list[str] = []
    for f in args.files:
        all_errors.extend(validate_point(Path(f)))
    for e in all_errors:
        print(e, file=sys.stderr)
    if not all_errors:
        print(f"bench-reduce: {len(args.files)} file(s) valid against "
              f"{SCHEMA}/{SWEEP_SCHEMA}/{REPORT_SCHEMA}/{PARALLEL_SCHEMA}"
              "/trace/openmetrics")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
