#!/usr/bin/env sh
# Full pre-merge check: the tier-1 suite twice — a plain Release build, then
# an ASan+UBSan build (DREDBOX_SANITIZE) to catch memory and UB bugs the
# plain run cannot see. Run from the repository root:
#
#   $ scripts/check.sh
#
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
jobs=$(nproc 2>/dev/null || echo 4)

run_suite() {
  build_dir=$1
  shift
  echo "== configure $build_dir ($*)"
  cmake -B "$root/$build_dir" -S "$root" "$@"
  echo "== build $build_dir"
  cmake --build "$root/$build_dir" -j "$jobs"
  echo "== test $build_dir"
  (cd "$root/$build_dir" && ctest --output-on-failure -j "$jobs")
}

run_suite build
run_suite build-asan -DDREDBOX_SANITIZE="address;undefined" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== all checks passed"
