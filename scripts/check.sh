#!/usr/bin/env sh
# Full pre-merge check: static analysis first (fail fast), then the tier-1
# suite three ways — a plain Release build, an ASan+UBSan build
# (DREDBOX_SANITIZE) to catch memory and UB bugs, and a DREDBOX_AUDIT=ON
# build that turns on the contract/invariant layer so every deep
# check_invariants() audit runs after every mutation. A tsan stage rebuilds
# with DREDBOX_SANITIZE=thread and re-runs the concurrency-touching tests
# (SweepRunner, workload engine, schedule audit) under ThreadSanitizer, and
# a thread-safety stage builds with clang -Wthread-safety -Werror over the
# sim/annotations.hpp capability layer (skipped when clang++ is not
# installed — gcc compiles the annotations to no-ops). A queue-differential
# stage re-runs the calendar-queue-vs-reference-heap oracle and the arena
# property suite under the sanitizers and the audit layer. Then the
# determinism harness (same-seed double run must be byte-identical) and a
# faults stage: the fault-scenario sweep re-run under the sanitizers and
# the audit layer, plus a scripted-fault quickstart run. A sweep stage then
# proves the parallel SweepRunner bit-identical to a sequential pass on a
# small grid, a parallel stage proves the conservative-lookahead coupled
# multi-rack run digest-identical to its sequential reference (healthy and
# under a spine fault), an obs stage schema-validates the three
# observability artifacts (Chrome trace, OpenMetrics, dredbox-report/v1)
# from a faulty quickstart, and the bench smoke finishes.
# Run from the repository root:
#
#   $ scripts/check.sh
#
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
jobs=$(nproc 2>/dev/null || echo 4)

echo "== lint"
bash "$root/scripts/lint.sh" --fast

run_suite() {
  build_dir=$1
  shift
  echo "== configure $build_dir ($*)"
  cmake -B "$root/$build_dir" -S "$root" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON "$@"
  echo "== build $build_dir"
  cmake --build "$root/$build_dir" -j "$jobs"
  echo "== test $build_dir"
  (cd "$root/$build_dir" && ctest --output-on-failure -j "$jobs")
}

run_suite build
run_suite build-asan -DDREDBOX_SANITIZE="address;undefined" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
run_suite build-audit -DDREDBOX_AUDIT=ON

echo "== tsan: concurrency-touching tests under ThreadSanitizer"
cmake -B "$root/build-tsan" -S "$root" -DDREDBOX_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$root/build-tsan" -j "$jobs"
(cd "$root/build-tsan" && \
  TSAN_OPTIONS="suppressions=$root/tsan.supp" ctest --output-on-failure -j "$jobs" \
    -R 'Sweep|Workload|ScheduleAudit|EventQueue|Partition|Cluster|WorkerPool')

echo "== thread-safety: clang -Wthread-safety -Werror over the annotations"
if command -v clang++ >/dev/null 2>&1; then
  cmake -B "$root/build-threadsafety" -S "$root" -DDREDBOX_WERROR=ON \
    -DCMAKE_CXX_COMPILER=clang++
  cmake --build "$root/build-threadsafety" -j "$jobs"
else
  echo "   clang++ not installed; skipping (CI's thread-safety job enforces this)"
fi

echo "== clang-tidy (over build/ compile database; skipped when not installed)"
bash "$root/scripts/lint.sh" --tidy-only build

echo "== queue-differential: calendar kernel vs reference-heap oracle"
# The randomized differential oracle (tests/sim/test_event_queue_differential)
# and the arena property suite, re-run under ASan/UBSan and under the
# DREDBOX_AUDIT deep-invariant layer. The TSan stage above already matches
# these via its EventQueue filter.
(cd "$root/build-asan" && ctest --output-on-failure -j "$jobs" \
  -R 'EventQueueDifferential|Arena')
(cd "$root/build-audit" && ctest --output-on-failure -j "$jobs" \
  -R 'EventQueueDifferential|Arena')

echo "== determinism harness"
bash "$root/scripts/determinism.sh" build

echo "== faults: scenario sweep under ASan/UBSan"
(cd "$root/build-asan" && ctest --output-on-failure -j "$jobs" \
  -R 'Fault|Retry|FailureRepair')

echo "== faults: scenario sweep with DREDBOX_AUDIT=ON invariants armed"
(cd "$root/build-audit" && ctest --output-on-failure -j "$jobs" \
  -R 'FaultScenario|DeterminismTest.Faulty')

echo "== faults: scripted DREDBOX_FAULT_PLAN quickstart (sanitized)"
DREDBOX_FAULT_PLAN='link-flap@1ms+2ms;congestion@2ms+1ms:magnitude=4;brick-crash@3ms+2ms' \
  "$root/build-asan/examples/quickstart" > /dev/null

echo "== sweep: 2x2 grid on 2 threads, digests must match sequential"
"$root/build/examples/sweep" --threads 2 --seeds 1,2 --trays 1,2 \
  --ratios 0.5 --duration-ms 2 --out "$root/build/sweep_smoke.json"
python3 "$root/scripts/bench_reduce.py" validate "$root/build/sweep_smoke.json"

echo "== parallel: 2-rack coupled run on 2 threads, digests must match sequential"
# The conservative-lookahead kernel's gating proof, healthy and with a
# mid-window spine fault: examples/datacenter exits non-zero on any
# sequential-vs-parallel digest mismatch, and the dredbox-parallel/v1
# artifact must pass schema validation.
"$root/build/examples/datacenter" --racks 2 --threads 2 --duration-ms 1 \
  --out "$root/build/parallel_smoke.json" > /dev/null
python3 "$root/scripts/bench_reduce.py" validate "$root/build/parallel_smoke.json"
"$root/build/examples/datacenter" --racks 2 --threads 2 --duration-ms 1 \
  --fault-rack 0 --fault-at-ms 0.3 --fault-for-ms 0.4 > /dev/null

echo "== obs: faulty quickstart must emit schema-valid trace/OpenMetrics/report"
DREDBOX_FAULT_PLAN='link-flap@1ms+2ms;congestion@2ms+1ms:magnitude=4' \
  DREDBOX_TRACE_FILE="$root/build/obs.trace.json" \
  DREDBOX_OPENMETRICS_FILE="$root/build/obs.om" \
  DREDBOX_REPORT_FILE="$root/build/obs.report.json" \
  DREDBOX_PROFILE=1 \
  "$root/build/examples/quickstart" > /dev/null
python3 "$root/scripts/bench_reduce.py" validate \
  "$root/build/obs.trace.json" "$root/build/obs.om" "$root/build/obs.report.json"

echo "== bench: micro + end-to-end smoke, BENCH_*.json schema"
bash "$root/scripts/bench.sh" --quick --tag smoke -o "$root/build/BENCH_smoke.json"
python3 "$root/scripts/bench_reduce.py" validate "$root"/BENCH_*.json

echo "== all checks passed"
