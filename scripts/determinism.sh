#!/usr/bin/env bash
# Determinism harness: proves a seeded simulation is bit-reproducible.
#
# Two layers:
#   1. ctest -R Determinism — the in-process double-run test
#      (tests/integration/determinism_test.cpp): same seed => identical
#      metrics/trace digests, different seed => divergent digests.
#   2. Process-level: run the quickstart example twice in separate
#      processes and byte-compare stdout. Catches nondeterminism the
#      in-process test cannot see (ASLR-dependent ordering, locale,
#      static-init order).
#
# Usage: scripts/determinism.sh [BUILD_DIR]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "determinism: $BUILD_DIR/ missing; run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 2
fi

echo "== in-process determinism test =="
ctest --test-dir "$BUILD_DIR" -R 'Determinism' --output-on-failure

QUICKSTART="$BUILD_DIR/examples/quickstart"
if [[ -x "$QUICKSTART" ]]; then
  echo "== process-level double run (quickstart) =="
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  "$QUICKSTART" > "$tmp/run1.out" 2>&1
  "$QUICKSTART" > "$tmp/run2.out" 2>&1
  if cmp -s "$tmp/run1.out" "$tmp/run2.out"; then
    echo "quickstart: two runs byte-identical ($(wc -c < "$tmp/run1.out") bytes)"
  else
    echo "quickstart: runs DIVERGED:" >&2
    diff "$tmp/run1.out" "$tmp/run2.out" | head -40 >&2
    exit 1
  fi
else
  echo "== $QUICKSTART not built; skipping process-level check =="
fi

echo "determinism: OK"
