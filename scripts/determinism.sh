#!/usr/bin/env bash
# Determinism harness: proves a seeded simulation is bit-reproducible.
#
# Two layers:
#   1. ctest -R Determinism — the in-process double-run test
#      (tests/integration/determinism_test.cpp): same seed => identical
#      metrics/trace digests, different seed => divergent digests.
#   2. Process-level: run the quickstart example twice in separate
#      processes and byte-compare stdout PLUS every exported observability
#      artifact — the Chrome trace JSON, the OpenMetrics series and the
#      dredbox-report/v1 run report. Catches nondeterminism the in-process
#      test cannot see (ASLR-dependent ordering, locale, static-init
#      order) anywhere in the export pipeline, not just on stdout.
#      DREDBOX_PROFILE stays unset: the kernel self-profile is host
#      wall-clock data and legitimately differs between runs.
#
# Usage: scripts/determinism.sh [BUILD_DIR]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "determinism: $BUILD_DIR/ missing; run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 2
fi

echo "== in-process determinism test =="
ctest --test-dir "$BUILD_DIR" -R 'Determinism' --output-on-failure

QUICKSTART="$BUILD_DIR/examples/quickstart"
if [[ -x "$QUICKSTART" ]]; then
  echo "== process-level double run (quickstart + artifacts) =="
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  quickstart_abs="$(cd "$(dirname "$QUICKSTART")" && pwd)/$(basename "$QUICKSTART")"
  # Relative artifact paths + a per-run cwd keep the two runs' environments
  # (and therefore their stdout, which echoes the paths) byte-identical.
  for run in 1 2; do
    mkdir -p "$tmp/run$run"
    (cd "$tmp/run$run" && \
      DREDBOX_TRACE_FILE=trace.json \
      DREDBOX_OPENMETRICS_FILE=series.om \
      DREDBOX_REPORT_FILE=report.json \
      "$quickstart_abs" > stdout.txt 2>&1)
  done
  status=0
  for artifact in stdout.txt trace.json series.om report.json; do
    if cmp -s "$tmp/run1/$artifact" "$tmp/run2/$artifact"; then
      echo "quickstart $artifact: byte-identical ($(wc -c < "$tmp/run1/$artifact") bytes)"
    else
      echo "quickstart $artifact: runs DIVERGED:" >&2
      diff "$tmp/run1/$artifact" "$tmp/run2/$artifact" | head -40 >&2
      status=1
    fi
  done
  [[ "$status" == 0 ]] || exit 1
else
  echo "== $QUICKSTART not built; skipping process-level check =="
fi

echo "determinism: OK"
