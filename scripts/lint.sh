#!/usr/bin/env bash
# Static-analysis gate: dredbox-lint (always) + clang-tidy and
# clang-format when the binaries exist. Exits non-zero on any finding.
#
# clang-tidy needs the compile database; configure first if build/ is
# missing:  cmake -B build -S .   (CMakeLists.txt always exports
# compile_commands.json).
#
# Usage: scripts/lint.sh [--tidy-only|--fast] [BUILD_DIR]
#   --fast       skip clang-tidy (the slow stage); dredbox-lint + format only
#   --tidy-only  skip dredbox-lint and clang-format
set -u -o pipefail

cd "$(dirname "$0")/.."

RUN_TIDY=1
RUN_LINT=1
RUN_FORMAT=1
BUILD_DIR=build
for arg in "$@"; do
  case "$arg" in
    --fast) RUN_TIDY=0 ;;
    --tidy-only) RUN_LINT=0; RUN_FORMAT=0 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

status=0

if [[ "$RUN_LINT" == 1 ]]; then
  echo "== dredbox-lint =="
  python3 scripts/dredbox_lint.py --root . || status=1
fi

if [[ "$RUN_FORMAT" == 1 ]]; then
  if command -v clang-format >/dev/null 2>&1; then
    echo "== clang-format (dry run) =="
    # shellcheck disable=SC2046
    if ! clang-format --dry-run --Werror \
        $(find src tests examples bench -name '*.cpp' -o -name '*.hpp' 2>/dev/null); then
      status=1
    fi
  else
    echo "== clang-format not installed; skipping format check =="
  fi
fi

if [[ "$RUN_TIDY" == 1 ]]; then
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "== clang-tidy not installed; skipping =="
  elif [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    echo "== no $BUILD_DIR/compile_commands.json; run 'cmake -B $BUILD_DIR -S .' first; skipping clang-tidy =="
  else
    echo "== clang-tidy =="
    mapfile -t sources < <(find src -name '*.cpp' | sort)
    if command -v run-clang-tidy >/dev/null 2>&1; then
      run-clang-tidy -p "$BUILD_DIR" -quiet "${sources[@]}" || status=1
    else
      for f in "${sources[@]}"; do
        clang-tidy -p "$BUILD_DIR" --quiet "$f" || status=1
      done
    fi
  fi
fi

if [[ "$status" == 0 ]]; then
  echo "lint: OK"
else
  echo "lint: FAILED" >&2
fi
exit "$status"
