
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tco/conventional_dc.cpp" "src/tco/CMakeFiles/dredbox_tco.dir/conventional_dc.cpp.o" "gcc" "src/tco/CMakeFiles/dredbox_tco.dir/conventional_dc.cpp.o.d"
  "/root/repo/src/tco/disaggregated_dc.cpp" "src/tco/CMakeFiles/dredbox_tco.dir/disaggregated_dc.cpp.o" "gcc" "src/tco/CMakeFiles/dredbox_tco.dir/disaggregated_dc.cpp.o.d"
  "/root/repo/src/tco/refresh_model.cpp" "src/tco/CMakeFiles/dredbox_tco.dir/refresh_model.cpp.o" "gcc" "src/tco/CMakeFiles/dredbox_tco.dir/refresh_model.cpp.o.d"
  "/root/repo/src/tco/tco_study.cpp" "src/tco/CMakeFiles/dredbox_tco.dir/tco_study.cpp.o" "gcc" "src/tco/CMakeFiles/dredbox_tco.dir/tco_study.cpp.o.d"
  "/root/repo/src/tco/workload.cpp" "src/tco/CMakeFiles/dredbox_tco.dir/workload.cpp.o" "gcc" "src/tco/CMakeFiles/dredbox_tco.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dredbox_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
