file(REMOVE_RECURSE
  "CMakeFiles/dredbox_tco.dir/conventional_dc.cpp.o"
  "CMakeFiles/dredbox_tco.dir/conventional_dc.cpp.o.d"
  "CMakeFiles/dredbox_tco.dir/disaggregated_dc.cpp.o"
  "CMakeFiles/dredbox_tco.dir/disaggregated_dc.cpp.o.d"
  "CMakeFiles/dredbox_tco.dir/refresh_model.cpp.o"
  "CMakeFiles/dredbox_tco.dir/refresh_model.cpp.o.d"
  "CMakeFiles/dredbox_tco.dir/tco_study.cpp.o"
  "CMakeFiles/dredbox_tco.dir/tco_study.cpp.o.d"
  "CMakeFiles/dredbox_tco.dir/workload.cpp.o"
  "CMakeFiles/dredbox_tco.dir/workload.cpp.o.d"
  "libdredbox_tco.a"
  "libdredbox_tco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dredbox_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
