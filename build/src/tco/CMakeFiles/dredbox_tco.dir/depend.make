# Empty dependencies file for dredbox_tco.
# This may be replaced when dependencies are built.
