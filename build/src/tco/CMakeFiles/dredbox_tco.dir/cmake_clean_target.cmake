file(REMOVE_RECURSE
  "libdredbox_tco.a"
)
