file(REMOVE_RECURSE
  "libdredbox_orch.a"
)
