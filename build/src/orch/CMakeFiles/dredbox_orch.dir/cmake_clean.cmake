file(REMOVE_RECURSE
  "CMakeFiles/dredbox_orch.dir/accel_manager.cpp.o"
  "CMakeFiles/dredbox_orch.dir/accel_manager.cpp.o.d"
  "CMakeFiles/dredbox_orch.dir/consolidator.cpp.o"
  "CMakeFiles/dredbox_orch.dir/consolidator.cpp.o.d"
  "CMakeFiles/dredbox_orch.dir/demand_registry.cpp.o"
  "CMakeFiles/dredbox_orch.dir/demand_registry.cpp.o.d"
  "CMakeFiles/dredbox_orch.dir/migration.cpp.o"
  "CMakeFiles/dredbox_orch.dir/migration.cpp.o.d"
  "CMakeFiles/dredbox_orch.dir/oom_guard.cpp.o"
  "CMakeFiles/dredbox_orch.dir/oom_guard.cpp.o.d"
  "CMakeFiles/dredbox_orch.dir/openstack.cpp.o"
  "CMakeFiles/dredbox_orch.dir/openstack.cpp.o.d"
  "CMakeFiles/dredbox_orch.dir/power_manager.cpp.o"
  "CMakeFiles/dredbox_orch.dir/power_manager.cpp.o.d"
  "CMakeFiles/dredbox_orch.dir/scale_out.cpp.o"
  "CMakeFiles/dredbox_orch.dir/scale_out.cpp.o.d"
  "CMakeFiles/dredbox_orch.dir/sdm_agent.cpp.o"
  "CMakeFiles/dredbox_orch.dir/sdm_agent.cpp.o.d"
  "CMakeFiles/dredbox_orch.dir/sdm_controller.cpp.o"
  "CMakeFiles/dredbox_orch.dir/sdm_controller.cpp.o.d"
  "libdredbox_orch.a"
  "libdredbox_orch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dredbox_orch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
