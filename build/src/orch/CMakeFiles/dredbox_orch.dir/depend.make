# Empty dependencies file for dredbox_orch.
# This may be replaced when dependencies are built.
