
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/orch/accel_manager.cpp" "src/orch/CMakeFiles/dredbox_orch.dir/accel_manager.cpp.o" "gcc" "src/orch/CMakeFiles/dredbox_orch.dir/accel_manager.cpp.o.d"
  "/root/repo/src/orch/consolidator.cpp" "src/orch/CMakeFiles/dredbox_orch.dir/consolidator.cpp.o" "gcc" "src/orch/CMakeFiles/dredbox_orch.dir/consolidator.cpp.o.d"
  "/root/repo/src/orch/demand_registry.cpp" "src/orch/CMakeFiles/dredbox_orch.dir/demand_registry.cpp.o" "gcc" "src/orch/CMakeFiles/dredbox_orch.dir/demand_registry.cpp.o.d"
  "/root/repo/src/orch/migration.cpp" "src/orch/CMakeFiles/dredbox_orch.dir/migration.cpp.o" "gcc" "src/orch/CMakeFiles/dredbox_orch.dir/migration.cpp.o.d"
  "/root/repo/src/orch/oom_guard.cpp" "src/orch/CMakeFiles/dredbox_orch.dir/oom_guard.cpp.o" "gcc" "src/orch/CMakeFiles/dredbox_orch.dir/oom_guard.cpp.o.d"
  "/root/repo/src/orch/openstack.cpp" "src/orch/CMakeFiles/dredbox_orch.dir/openstack.cpp.o" "gcc" "src/orch/CMakeFiles/dredbox_orch.dir/openstack.cpp.o.d"
  "/root/repo/src/orch/power_manager.cpp" "src/orch/CMakeFiles/dredbox_orch.dir/power_manager.cpp.o" "gcc" "src/orch/CMakeFiles/dredbox_orch.dir/power_manager.cpp.o.d"
  "/root/repo/src/orch/scale_out.cpp" "src/orch/CMakeFiles/dredbox_orch.dir/scale_out.cpp.o" "gcc" "src/orch/CMakeFiles/dredbox_orch.dir/scale_out.cpp.o.d"
  "/root/repo/src/orch/sdm_agent.cpp" "src/orch/CMakeFiles/dredbox_orch.dir/sdm_agent.cpp.o" "gcc" "src/orch/CMakeFiles/dredbox_orch.dir/sdm_agent.cpp.o.d"
  "/root/repo/src/orch/sdm_controller.cpp" "src/orch/CMakeFiles/dredbox_orch.dir/sdm_controller.cpp.o" "gcc" "src/orch/CMakeFiles/dredbox_orch.dir/sdm_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dredbox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/dredbox_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/dredbox_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/memsys/CMakeFiles/dredbox_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dredbox_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hyp/CMakeFiles/dredbox_hyp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dredbox_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
