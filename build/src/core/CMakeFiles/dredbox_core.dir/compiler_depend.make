# Empty compiler generated dependencies file for dredbox_core.
# This may be replaced when dependencies are built.
