file(REMOVE_RECURSE
  "libdredbox_core.a"
)
