
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/app_performance.cpp" "src/core/CMakeFiles/dredbox_core.dir/app_performance.cpp.o" "gcc" "src/core/CMakeFiles/dredbox_core.dir/app_performance.cpp.o.d"
  "/root/repo/src/core/datacenter.cpp" "src/core/CMakeFiles/dredbox_core.dir/datacenter.cpp.o" "gcc" "src/core/CMakeFiles/dredbox_core.dir/datacenter.cpp.o.d"
  "/root/repo/src/core/pilots/network_analytics.cpp" "src/core/CMakeFiles/dredbox_core.dir/pilots/network_analytics.cpp.o" "gcc" "src/core/CMakeFiles/dredbox_core.dir/pilots/network_analytics.cpp.o.d"
  "/root/repo/src/core/pilots/nfv.cpp" "src/core/CMakeFiles/dredbox_core.dir/pilots/nfv.cpp.o" "gcc" "src/core/CMakeFiles/dredbox_core.dir/pilots/nfv.cpp.o.d"
  "/root/repo/src/core/pilots/video_analytics.cpp" "src/core/CMakeFiles/dredbox_core.dir/pilots/video_analytics.cpp.o" "gcc" "src/core/CMakeFiles/dredbox_core.dir/pilots/video_analytics.cpp.o.d"
  "/root/repo/src/core/scaleup_experiment.cpp" "src/core/CMakeFiles/dredbox_core.dir/scaleup_experiment.cpp.o" "gcc" "src/core/CMakeFiles/dredbox_core.dir/scaleup_experiment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dredbox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/dredbox_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/dredbox_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dredbox_net.dir/DependInfo.cmake"
  "/root/repo/build/src/memsys/CMakeFiles/dredbox_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dredbox_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hyp/CMakeFiles/dredbox_hyp.dir/DependInfo.cmake"
  "/root/repo/build/src/orch/CMakeFiles/dredbox_orch.dir/DependInfo.cmake"
  "/root/repo/build/src/tco/CMakeFiles/dredbox_tco.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
