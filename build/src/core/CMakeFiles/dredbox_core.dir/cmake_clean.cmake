file(REMOVE_RECURSE
  "CMakeFiles/dredbox_core.dir/app_performance.cpp.o"
  "CMakeFiles/dredbox_core.dir/app_performance.cpp.o.d"
  "CMakeFiles/dredbox_core.dir/datacenter.cpp.o"
  "CMakeFiles/dredbox_core.dir/datacenter.cpp.o.d"
  "CMakeFiles/dredbox_core.dir/pilots/network_analytics.cpp.o"
  "CMakeFiles/dredbox_core.dir/pilots/network_analytics.cpp.o.d"
  "CMakeFiles/dredbox_core.dir/pilots/nfv.cpp.o"
  "CMakeFiles/dredbox_core.dir/pilots/nfv.cpp.o.d"
  "CMakeFiles/dredbox_core.dir/pilots/video_analytics.cpp.o"
  "CMakeFiles/dredbox_core.dir/pilots/video_analytics.cpp.o.d"
  "CMakeFiles/dredbox_core.dir/scaleup_experiment.cpp.o"
  "CMakeFiles/dredbox_core.dir/scaleup_experiment.cpp.o.d"
  "libdredbox_core.a"
  "libdredbox_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dredbox_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
