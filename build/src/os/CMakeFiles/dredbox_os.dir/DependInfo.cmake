
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/baremetal_os.cpp" "src/os/CMakeFiles/dredbox_os.dir/baremetal_os.cpp.o" "gcc" "src/os/CMakeFiles/dredbox_os.dir/baremetal_os.cpp.o.d"
  "/root/repo/src/os/hotplug.cpp" "src/os/CMakeFiles/dredbox_os.dir/hotplug.cpp.o" "gcc" "src/os/CMakeFiles/dredbox_os.dir/hotplug.cpp.o.d"
  "/root/repo/src/os/memory_map.cpp" "src/os/CMakeFiles/dredbox_os.dir/memory_map.cpp.o" "gcc" "src/os/CMakeFiles/dredbox_os.dir/memory_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dredbox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/dredbox_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
