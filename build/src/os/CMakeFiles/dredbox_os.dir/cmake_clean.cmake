file(REMOVE_RECURSE
  "CMakeFiles/dredbox_os.dir/baremetal_os.cpp.o"
  "CMakeFiles/dredbox_os.dir/baremetal_os.cpp.o.d"
  "CMakeFiles/dredbox_os.dir/hotplug.cpp.o"
  "CMakeFiles/dredbox_os.dir/hotplug.cpp.o.d"
  "CMakeFiles/dredbox_os.dir/memory_map.cpp.o"
  "CMakeFiles/dredbox_os.dir/memory_map.cpp.o.d"
  "libdredbox_os.a"
  "libdredbox_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dredbox_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
