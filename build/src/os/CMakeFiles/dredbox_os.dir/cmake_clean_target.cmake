file(REMOVE_RECURSE
  "libdredbox_os.a"
)
