# Empty compiler generated dependencies file for dredbox_os.
# This may be replaced when dependencies are built.
