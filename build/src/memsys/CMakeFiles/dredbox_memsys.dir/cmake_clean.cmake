file(REMOVE_RECURSE
  "CMakeFiles/dredbox_memsys.dir/dma.cpp.o"
  "CMakeFiles/dredbox_memsys.dir/dma.cpp.o.d"
  "CMakeFiles/dredbox_memsys.dir/remote_memory.cpp.o"
  "CMakeFiles/dredbox_memsys.dir/remote_memory.cpp.o.d"
  "libdredbox_memsys.a"
  "libdredbox_memsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dredbox_memsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
