# Empty compiler generated dependencies file for dredbox_memsys.
# This may be replaced when dependencies are built.
