file(REMOVE_RECURSE
  "libdredbox_memsys.a"
)
