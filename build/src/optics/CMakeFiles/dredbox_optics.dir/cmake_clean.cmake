file(REMOVE_RECURSE
  "CMakeFiles/dredbox_optics.dir/circuit.cpp.o"
  "CMakeFiles/dredbox_optics.dir/circuit.cpp.o.d"
  "CMakeFiles/dredbox_optics.dir/fec.cpp.o"
  "CMakeFiles/dredbox_optics.dir/fec.cpp.o.d"
  "CMakeFiles/dredbox_optics.dir/link_budget.cpp.o"
  "CMakeFiles/dredbox_optics.dir/link_budget.cpp.o.d"
  "CMakeFiles/dredbox_optics.dir/mbo.cpp.o"
  "CMakeFiles/dredbox_optics.dir/mbo.cpp.o.d"
  "CMakeFiles/dredbox_optics.dir/optical_switch.cpp.o"
  "CMakeFiles/dredbox_optics.dir/optical_switch.cpp.o.d"
  "CMakeFiles/dredbox_optics.dir/receiver.cpp.o"
  "CMakeFiles/dredbox_optics.dir/receiver.cpp.o.d"
  "CMakeFiles/dredbox_optics.dir/units.cpp.o"
  "CMakeFiles/dredbox_optics.dir/units.cpp.o.d"
  "libdredbox_optics.a"
  "libdredbox_optics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dredbox_optics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
