file(REMOVE_RECURSE
  "libdredbox_optics.a"
)
