
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optics/circuit.cpp" "src/optics/CMakeFiles/dredbox_optics.dir/circuit.cpp.o" "gcc" "src/optics/CMakeFiles/dredbox_optics.dir/circuit.cpp.o.d"
  "/root/repo/src/optics/fec.cpp" "src/optics/CMakeFiles/dredbox_optics.dir/fec.cpp.o" "gcc" "src/optics/CMakeFiles/dredbox_optics.dir/fec.cpp.o.d"
  "/root/repo/src/optics/link_budget.cpp" "src/optics/CMakeFiles/dredbox_optics.dir/link_budget.cpp.o" "gcc" "src/optics/CMakeFiles/dredbox_optics.dir/link_budget.cpp.o.d"
  "/root/repo/src/optics/mbo.cpp" "src/optics/CMakeFiles/dredbox_optics.dir/mbo.cpp.o" "gcc" "src/optics/CMakeFiles/dredbox_optics.dir/mbo.cpp.o.d"
  "/root/repo/src/optics/optical_switch.cpp" "src/optics/CMakeFiles/dredbox_optics.dir/optical_switch.cpp.o" "gcc" "src/optics/CMakeFiles/dredbox_optics.dir/optical_switch.cpp.o.d"
  "/root/repo/src/optics/receiver.cpp" "src/optics/CMakeFiles/dredbox_optics.dir/receiver.cpp.o" "gcc" "src/optics/CMakeFiles/dredbox_optics.dir/receiver.cpp.o.d"
  "/root/repo/src/optics/units.cpp" "src/optics/CMakeFiles/dredbox_optics.dir/units.cpp.o" "gcc" "src/optics/CMakeFiles/dredbox_optics.dir/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dredbox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/dredbox_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
