# Empty compiler generated dependencies file for dredbox_optics.
# This may be replaced when dependencies are built.
