# Empty dependencies file for dredbox_net.
# This may be replaced when dependencies are built.
