file(REMOVE_RECURSE
  "libdredbox_net.a"
)
