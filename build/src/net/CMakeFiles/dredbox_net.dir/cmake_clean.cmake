file(REMOVE_RECURSE
  "CMakeFiles/dredbox_net.dir/packet_network.cpp.o"
  "CMakeFiles/dredbox_net.dir/packet_network.cpp.o.d"
  "CMakeFiles/dredbox_net.dir/packet_switch.cpp.o"
  "CMakeFiles/dredbox_net.dir/packet_switch.cpp.o.d"
  "libdredbox_net.a"
  "libdredbox_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dredbox_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
