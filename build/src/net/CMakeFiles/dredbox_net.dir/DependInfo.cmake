
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/packet_network.cpp" "src/net/CMakeFiles/dredbox_net.dir/packet_network.cpp.o" "gcc" "src/net/CMakeFiles/dredbox_net.dir/packet_network.cpp.o.d"
  "/root/repo/src/net/packet_switch.cpp" "src/net/CMakeFiles/dredbox_net.dir/packet_switch.cpp.o" "gcc" "src/net/CMakeFiles/dredbox_net.dir/packet_switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dredbox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/dredbox_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/dredbox_optics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
