file(REMOVE_RECURSE
  "libdredbox_hw.a"
)
