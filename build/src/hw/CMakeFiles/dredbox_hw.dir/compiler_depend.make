# Empty compiler generated dependencies file for dredbox_hw.
# This may be replaced when dependencies are built.
