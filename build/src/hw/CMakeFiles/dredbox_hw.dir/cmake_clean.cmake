file(REMOVE_RECURSE
  "CMakeFiles/dredbox_hw.dir/accel_brick.cpp.o"
  "CMakeFiles/dredbox_hw.dir/accel_brick.cpp.o.d"
  "CMakeFiles/dredbox_hw.dir/brick.cpp.o"
  "CMakeFiles/dredbox_hw.dir/brick.cpp.o.d"
  "CMakeFiles/dredbox_hw.dir/compute_brick.cpp.o"
  "CMakeFiles/dredbox_hw.dir/compute_brick.cpp.o.d"
  "CMakeFiles/dredbox_hw.dir/memory_brick.cpp.o"
  "CMakeFiles/dredbox_hw.dir/memory_brick.cpp.o.d"
  "CMakeFiles/dredbox_hw.dir/rack.cpp.o"
  "CMakeFiles/dredbox_hw.dir/rack.cpp.o.d"
  "CMakeFiles/dredbox_hw.dir/rmst.cpp.o"
  "CMakeFiles/dredbox_hw.dir/rmst.cpp.o.d"
  "CMakeFiles/dredbox_hw.dir/tgl.cpp.o"
  "CMakeFiles/dredbox_hw.dir/tgl.cpp.o.d"
  "CMakeFiles/dredbox_hw.dir/tray.cpp.o"
  "CMakeFiles/dredbox_hw.dir/tray.cpp.o.d"
  "libdredbox_hw.a"
  "libdredbox_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dredbox_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
