
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/accel_brick.cpp" "src/hw/CMakeFiles/dredbox_hw.dir/accel_brick.cpp.o" "gcc" "src/hw/CMakeFiles/dredbox_hw.dir/accel_brick.cpp.o.d"
  "/root/repo/src/hw/brick.cpp" "src/hw/CMakeFiles/dredbox_hw.dir/brick.cpp.o" "gcc" "src/hw/CMakeFiles/dredbox_hw.dir/brick.cpp.o.d"
  "/root/repo/src/hw/compute_brick.cpp" "src/hw/CMakeFiles/dredbox_hw.dir/compute_brick.cpp.o" "gcc" "src/hw/CMakeFiles/dredbox_hw.dir/compute_brick.cpp.o.d"
  "/root/repo/src/hw/memory_brick.cpp" "src/hw/CMakeFiles/dredbox_hw.dir/memory_brick.cpp.o" "gcc" "src/hw/CMakeFiles/dredbox_hw.dir/memory_brick.cpp.o.d"
  "/root/repo/src/hw/rack.cpp" "src/hw/CMakeFiles/dredbox_hw.dir/rack.cpp.o" "gcc" "src/hw/CMakeFiles/dredbox_hw.dir/rack.cpp.o.d"
  "/root/repo/src/hw/rmst.cpp" "src/hw/CMakeFiles/dredbox_hw.dir/rmst.cpp.o" "gcc" "src/hw/CMakeFiles/dredbox_hw.dir/rmst.cpp.o.d"
  "/root/repo/src/hw/tgl.cpp" "src/hw/CMakeFiles/dredbox_hw.dir/tgl.cpp.o" "gcc" "src/hw/CMakeFiles/dredbox_hw.dir/tgl.cpp.o.d"
  "/root/repo/src/hw/tray.cpp" "src/hw/CMakeFiles/dredbox_hw.dir/tray.cpp.o" "gcc" "src/hw/CMakeFiles/dredbox_hw.dir/tray.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dredbox_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
