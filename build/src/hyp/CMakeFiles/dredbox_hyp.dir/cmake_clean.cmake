file(REMOVE_RECURSE
  "CMakeFiles/dredbox_hyp.dir/hypervisor.cpp.o"
  "CMakeFiles/dredbox_hyp.dir/hypervisor.cpp.o.d"
  "CMakeFiles/dredbox_hyp.dir/vm.cpp.o"
  "CMakeFiles/dredbox_hyp.dir/vm.cpp.o.d"
  "libdredbox_hyp.a"
  "libdredbox_hyp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dredbox_hyp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
