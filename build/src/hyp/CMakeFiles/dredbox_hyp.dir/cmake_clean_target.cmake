file(REMOVE_RECURSE
  "libdredbox_hyp.a"
)
