# Empty compiler generated dependencies file for dredbox_hyp.
# This may be replaced when dependencies are built.
