
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hyp/hypervisor.cpp" "src/hyp/CMakeFiles/dredbox_hyp.dir/hypervisor.cpp.o" "gcc" "src/hyp/CMakeFiles/dredbox_hyp.dir/hypervisor.cpp.o.d"
  "/root/repo/src/hyp/vm.cpp" "src/hyp/CMakeFiles/dredbox_hyp.dir/vm.cpp.o" "gcc" "src/hyp/CMakeFiles/dredbox_hyp.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dredbox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/dredbox_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dredbox_os.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
