file(REMOVE_RECURSE
  "libdredbox_sim.a"
)
