file(REMOVE_RECURSE
  "CMakeFiles/dredbox_sim.dir/breakdown.cpp.o"
  "CMakeFiles/dredbox_sim.dir/breakdown.cpp.o.d"
  "CMakeFiles/dredbox_sim.dir/event_queue.cpp.o"
  "CMakeFiles/dredbox_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/dredbox_sim.dir/random.cpp.o"
  "CMakeFiles/dredbox_sim.dir/random.cpp.o.d"
  "CMakeFiles/dredbox_sim.dir/report.cpp.o"
  "CMakeFiles/dredbox_sim.dir/report.cpp.o.d"
  "CMakeFiles/dredbox_sim.dir/stats.cpp.o"
  "CMakeFiles/dredbox_sim.dir/stats.cpp.o.d"
  "CMakeFiles/dredbox_sim.dir/time.cpp.o"
  "CMakeFiles/dredbox_sim.dir/time.cpp.o.d"
  "CMakeFiles/dredbox_sim.dir/trace.cpp.o"
  "CMakeFiles/dredbox_sim.dir/trace.cpp.o.d"
  "libdredbox_sim.a"
  "libdredbox_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dredbox_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
