# Empty compiler generated dependencies file for dredbox_sim.
# This may be replaced when dependencies are built.
