# Empty dependencies file for nfv_keyserver.
# This may be replaced when dependencies are built.
