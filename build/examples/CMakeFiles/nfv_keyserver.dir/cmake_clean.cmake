file(REMOVE_RECURSE
  "CMakeFiles/nfv_keyserver.dir/nfv_keyserver.cpp.o"
  "CMakeFiles/nfv_keyserver.dir/nfv_keyserver.cpp.o.d"
  "nfv_keyserver"
  "nfv_keyserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfv_keyserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
