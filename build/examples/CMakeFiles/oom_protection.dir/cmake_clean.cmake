file(REMOVE_RECURSE
  "CMakeFiles/oom_protection.dir/oom_protection.cpp.o"
  "CMakeFiles/oom_protection.dir/oom_protection.cpp.o.d"
  "oom_protection"
  "oom_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oom_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
