# Empty dependencies file for oom_protection.
# This may be replaced when dependencies are built.
