file(REMOVE_RECURSE
  "CMakeFiles/rack_report.dir/rack_report.cpp.o"
  "CMakeFiles/rack_report.dir/rack_report.cpp.o.d"
  "rack_report"
  "rack_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rack_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
