# Empty compiler generated dependencies file for rack_report.
# This may be replaced when dependencies are built.
