file(REMOVE_RECURSE
  "CMakeFiles/abl_app_slowdown.dir/abl_app_slowdown.cpp.o"
  "CMakeFiles/abl_app_slowdown.dir/abl_app_slowdown.cpp.o.d"
  "abl_app_slowdown"
  "abl_app_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_app_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
