# Empty dependencies file for abl_app_slowdown.
# This may be replaced when dependencies are built.
