# Empty compiler generated dependencies file for abl_consolidation.
# This may be replaced when dependencies are built.
