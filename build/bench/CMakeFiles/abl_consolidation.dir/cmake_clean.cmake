file(REMOVE_RECURSE
  "CMakeFiles/abl_consolidation.dir/abl_consolidation.cpp.o"
  "CMakeFiles/abl_consolidation.dir/abl_consolidation.cpp.o.d"
  "abl_consolidation"
  "abl_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
