# Empty dependencies file for abl_memory_controllers.
# This may be replaced when dependencies are built.
