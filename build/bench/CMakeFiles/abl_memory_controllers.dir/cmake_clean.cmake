file(REMOVE_RECURSE
  "CMakeFiles/abl_memory_controllers.dir/abl_memory_controllers.cpp.o"
  "CMakeFiles/abl_memory_controllers.dir/abl_memory_controllers.cpp.o.d"
  "abl_memory_controllers"
  "abl_memory_controllers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_memory_controllers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
