# Empty compiler generated dependencies file for abl_tco_refresh.
# This may be replaced when dependencies are built.
