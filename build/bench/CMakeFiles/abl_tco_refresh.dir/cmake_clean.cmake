file(REMOVE_RECURSE
  "CMakeFiles/abl_tco_refresh.dir/abl_tco_refresh.cpp.o"
  "CMakeFiles/abl_tco_refresh.dir/abl_tco_refresh.cpp.o.d"
  "abl_tco_refresh"
  "abl_tco_refresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tco_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
