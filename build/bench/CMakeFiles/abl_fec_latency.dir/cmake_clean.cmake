file(REMOVE_RECURSE
  "CMakeFiles/abl_fec_latency.dir/abl_fec_latency.cpp.o"
  "CMakeFiles/abl_fec_latency.dir/abl_fec_latency.cpp.o.d"
  "abl_fec_latency"
  "abl_fec_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fec_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
