# Empty dependencies file for abl_fec_latency.
# This may be replaced when dependencies are built.
