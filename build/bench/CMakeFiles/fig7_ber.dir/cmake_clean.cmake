file(REMOVE_RECURSE
  "CMakeFiles/fig7_ber.dir/fig7_ber.cpp.o"
  "CMakeFiles/fig7_ber.dir/fig7_ber.cpp.o.d"
  "fig7_ber"
  "fig7_ber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
