# Empty dependencies file for fig7_ber.
# This may be replaced when dependencies are built.
