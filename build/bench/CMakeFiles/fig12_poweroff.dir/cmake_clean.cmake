file(REMOVE_RECURSE
  "CMakeFiles/fig12_poweroff.dir/fig12_poweroff.cpp.o"
  "CMakeFiles/fig12_poweroff.dir/fig12_poweroff.cpp.o.d"
  "fig12_poweroff"
  "fig12_poweroff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_poweroff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
