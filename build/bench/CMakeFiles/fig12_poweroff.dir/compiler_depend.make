# Empty compiler generated dependencies file for fig12_poweroff.
# This may be replaced when dependencies are built.
