# Empty dependencies file for abl_intra_tray.
# This may be replaced when dependencies are built.
