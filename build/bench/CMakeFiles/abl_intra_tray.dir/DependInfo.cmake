
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_intra_tray.cpp" "bench/CMakeFiles/abl_intra_tray.dir/abl_intra_tray.cpp.o" "gcc" "bench/CMakeFiles/abl_intra_tray.dir/abl_intra_tray.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dredbox_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tco/CMakeFiles/dredbox_tco.dir/DependInfo.cmake"
  "/root/repo/build/src/orch/CMakeFiles/dredbox_orch.dir/DependInfo.cmake"
  "/root/repo/build/src/hyp/CMakeFiles/dredbox_hyp.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dredbox_os.dir/DependInfo.cmake"
  "/root/repo/build/src/memsys/CMakeFiles/dredbox_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dredbox_net.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/dredbox_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/dredbox_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dredbox_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
