file(REMOVE_RECURSE
  "CMakeFiles/abl_intra_tray.dir/abl_intra_tray.cpp.o"
  "CMakeFiles/abl_intra_tray.dir/abl_intra_tray.cpp.o.d"
  "abl_intra_tray"
  "abl_intra_tray.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_intra_tray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
