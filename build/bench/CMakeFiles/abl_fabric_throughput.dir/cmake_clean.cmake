file(REMOVE_RECURSE
  "CMakeFiles/abl_fabric_throughput.dir/abl_fabric_throughput.cpp.o"
  "CMakeFiles/abl_fabric_throughput.dir/abl_fabric_throughput.cpp.o.d"
  "abl_fabric_throughput"
  "abl_fabric_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fabric_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
