# Empty compiler generated dependencies file for abl_fabric_throughput.
# This may be replaced when dependencies are built.
