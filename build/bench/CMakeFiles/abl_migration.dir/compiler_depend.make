# Empty compiler generated dependencies file for abl_migration.
# This may be replaced when dependencies are built.
