file(REMOVE_RECURSE
  "CMakeFiles/abl_migration.dir/abl_migration.cpp.o"
  "CMakeFiles/abl_migration.dir/abl_migration.cpp.o.d"
  "abl_migration"
  "abl_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
