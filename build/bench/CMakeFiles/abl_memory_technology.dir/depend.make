# Empty dependencies file for abl_memory_technology.
# This may be replaced when dependencies are built.
