file(REMOVE_RECURSE
  "CMakeFiles/abl_memory_technology.dir/abl_memory_technology.cpp.o"
  "CMakeFiles/abl_memory_technology.dir/abl_memory_technology.cpp.o.d"
  "abl_memory_technology"
  "abl_memory_technology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_memory_technology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
