file(REMOVE_RECURSE
  "CMakeFiles/abl_power_management.dir/abl_power_management.cpp.o"
  "CMakeFiles/abl_power_management.dir/abl_power_management.cpp.o.d"
  "abl_power_management"
  "abl_power_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_power_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
