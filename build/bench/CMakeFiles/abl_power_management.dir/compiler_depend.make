# Empty compiler generated dependencies file for abl_power_management.
# This may be replaced when dependencies are built.
