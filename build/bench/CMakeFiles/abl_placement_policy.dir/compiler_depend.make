# Empty compiler generated dependencies file for abl_placement_policy.
# This may be replaced when dependencies are built.
