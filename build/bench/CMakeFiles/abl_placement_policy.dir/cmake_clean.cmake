file(REMOVE_RECURSE
  "CMakeFiles/abl_placement_policy.dir/abl_placement_policy.cpp.o"
  "CMakeFiles/abl_placement_policy.dir/abl_placement_policy.cpp.o.d"
  "abl_placement_policy"
  "abl_placement_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_placement_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
