file(REMOVE_RECURSE
  "CMakeFiles/abl_link_partitioning.dir/abl_link_partitioning.cpp.o"
  "CMakeFiles/abl_link_partitioning.dir/abl_link_partitioning.cpp.o.d"
  "abl_link_partitioning"
  "abl_link_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_link_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
