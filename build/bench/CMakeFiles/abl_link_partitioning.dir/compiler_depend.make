# Empty compiler generated dependencies file for abl_link_partitioning.
# This may be replaced when dependencies are built.
