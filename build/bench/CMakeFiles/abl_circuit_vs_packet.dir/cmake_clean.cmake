file(REMOVE_RECURSE
  "CMakeFiles/abl_circuit_vs_packet.dir/abl_circuit_vs_packet.cpp.o"
  "CMakeFiles/abl_circuit_vs_packet.dir/abl_circuit_vs_packet.cpp.o.d"
  "abl_circuit_vs_packet"
  "abl_circuit_vs_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_circuit_vs_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
