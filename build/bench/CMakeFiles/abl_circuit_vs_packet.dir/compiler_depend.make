# Empty compiler generated dependencies file for abl_circuit_vs_packet.
# This may be replaced when dependencies are built.
