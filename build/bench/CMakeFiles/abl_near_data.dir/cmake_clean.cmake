file(REMOVE_RECURSE
  "CMakeFiles/abl_near_data.dir/abl_near_data.cpp.o"
  "CMakeFiles/abl_near_data.dir/abl_near_data.cpp.o.d"
  "abl_near_data"
  "abl_near_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_near_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
