# Empty dependencies file for abl_near_data.
# This may be replaced when dependencies are built.
