file(REMOVE_RECURSE
  "CMakeFiles/fig10_scaleup.dir/fig10_scaleup.cpp.o"
  "CMakeFiles/fig10_scaleup.dir/fig10_scaleup.cpp.o.d"
  "fig10_scaleup"
  "fig10_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
