# Empty dependencies file for abl_elasticity_tiers.
# This may be replaced when dependencies are built.
