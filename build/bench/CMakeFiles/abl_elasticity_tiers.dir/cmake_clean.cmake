file(REMOVE_RECURSE
  "CMakeFiles/abl_elasticity_tiers.dir/abl_elasticity_tiers.cpp.o"
  "CMakeFiles/abl_elasticity_tiers.dir/abl_elasticity_tiers.cpp.o.d"
  "abl_elasticity_tiers"
  "abl_elasticity_tiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_elasticity_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
