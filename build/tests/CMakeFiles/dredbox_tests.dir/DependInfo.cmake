
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_app_performance.cpp" "tests/CMakeFiles/dredbox_tests.dir/core/test_app_performance.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/core/test_app_performance.cpp.o.d"
  "/root/repo/tests/core/test_datacenter.cpp" "tests/CMakeFiles/dredbox_tests.dir/core/test_datacenter.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/core/test_datacenter.cpp.o.d"
  "/root/repo/tests/core/test_datacenter_edge.cpp" "tests/CMakeFiles/dredbox_tests.dir/core/test_datacenter_edge.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/core/test_datacenter_edge.cpp.o.d"
  "/root/repo/tests/core/test_facade_extensions.cpp" "tests/CMakeFiles/dredbox_tests.dir/core/test_facade_extensions.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/core/test_facade_extensions.cpp.o.d"
  "/root/repo/tests/core/test_pilots.cpp" "tests/CMakeFiles/dredbox_tests.dir/core/test_pilots.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/core/test_pilots.cpp.o.d"
  "/root/repo/tests/core/test_scaleup_experiment.cpp" "tests/CMakeFiles/dredbox_tests.dir/core/test_scaleup_experiment.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/core/test_scaleup_experiment.cpp.o.d"
  "/root/repo/tests/core/test_umbrella.cpp" "tests/CMakeFiles/dredbox_tests.dir/core/test_umbrella.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/core/test_umbrella.cpp.o.d"
  "/root/repo/tests/hw/test_accel_brick.cpp" "tests/CMakeFiles/dredbox_tests.dir/hw/test_accel_brick.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/hw/test_accel_brick.cpp.o.d"
  "/root/repo/tests/hw/test_brick.cpp" "tests/CMakeFiles/dredbox_tests.dir/hw/test_brick.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/hw/test_brick.cpp.o.d"
  "/root/repo/tests/hw/test_compute_brick.cpp" "tests/CMakeFiles/dredbox_tests.dir/hw/test_compute_brick.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/hw/test_compute_brick.cpp.o.d"
  "/root/repo/tests/hw/test_memory_brick.cpp" "tests/CMakeFiles/dredbox_tests.dir/hw/test_memory_brick.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/hw/test_memory_brick.cpp.o.d"
  "/root/repo/tests/hw/test_rmst.cpp" "tests/CMakeFiles/dredbox_tests.dir/hw/test_rmst.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/hw/test_rmst.cpp.o.d"
  "/root/repo/tests/hw/test_tgl.cpp" "tests/CMakeFiles/dredbox_tests.dir/hw/test_tgl.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/hw/test_tgl.cpp.o.d"
  "/root/repo/tests/hw/test_tray_rack.cpp" "tests/CMakeFiles/dredbox_tests.dir/hw/test_tray_rack.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/hw/test_tray_rack.cpp.o.d"
  "/root/repo/tests/hyp/test_balloon.cpp" "tests/CMakeFiles/dredbox_tests.dir/hyp/test_balloon.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/hyp/test_balloon.cpp.o.d"
  "/root/repo/tests/hyp/test_hypervisor.cpp" "tests/CMakeFiles/dredbox_tests.dir/hyp/test_hypervisor.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/hyp/test_hypervisor.cpp.o.d"
  "/root/repo/tests/hyp/test_hypervisor_properties.cpp" "tests/CMakeFiles/dredbox_tests.dir/hyp/test_hypervisor_properties.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/hyp/test_hypervisor_properties.cpp.o.d"
  "/root/repo/tests/hyp/test_vm.cpp" "tests/CMakeFiles/dredbox_tests.dir/hyp/test_vm.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/hyp/test_vm.cpp.o.d"
  "/root/repo/tests/integration/test_full_stack.cpp" "tests/CMakeFiles/dredbox_tests.dir/integration/test_full_stack.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/integration/test_full_stack.cpp.o.d"
  "/root/repo/tests/memsys/test_dma.cpp" "tests/CMakeFiles/dredbox_tests.dir/memsys/test_dma.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/memsys/test_dma.cpp.o.d"
  "/root/repo/tests/memsys/test_fabric_properties.cpp" "tests/CMakeFiles/dredbox_tests.dir/memsys/test_fabric_properties.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/memsys/test_fabric_properties.cpp.o.d"
  "/root/repo/tests/memsys/test_failure_repair.cpp" "tests/CMakeFiles/dredbox_tests.dir/memsys/test_failure_repair.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/memsys/test_failure_repair.cpp.o.d"
  "/root/repo/tests/memsys/test_packet_fallback.cpp" "tests/CMakeFiles/dredbox_tests.dir/memsys/test_packet_fallback.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/memsys/test_packet_fallback.cpp.o.d"
  "/root/repo/tests/memsys/test_remote_memory.cpp" "tests/CMakeFiles/dredbox_tests.dir/memsys/test_remote_memory.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/memsys/test_remote_memory.cpp.o.d"
  "/root/repo/tests/net/test_mac_phy.cpp" "tests/CMakeFiles/dredbox_tests.dir/net/test_mac_phy.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/net/test_mac_phy.cpp.o.d"
  "/root/repo/tests/net/test_packet_network.cpp" "tests/CMakeFiles/dredbox_tests.dir/net/test_packet_network.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/net/test_packet_network.cpp.o.d"
  "/root/repo/tests/net/test_packet_switch.cpp" "tests/CMakeFiles/dredbox_tests.dir/net/test_packet_switch.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/net/test_packet_switch.cpp.o.d"
  "/root/repo/tests/optics/test_circuit.cpp" "tests/CMakeFiles/dredbox_tests.dir/optics/test_circuit.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/optics/test_circuit.cpp.o.d"
  "/root/repo/tests/optics/test_link_budget.cpp" "tests/CMakeFiles/dredbox_tests.dir/optics/test_link_budget.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/optics/test_link_budget.cpp.o.d"
  "/root/repo/tests/optics/test_mbo_fec.cpp" "tests/CMakeFiles/dredbox_tests.dir/optics/test_mbo_fec.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/optics/test_mbo_fec.cpp.o.d"
  "/root/repo/tests/optics/test_receiver.cpp" "tests/CMakeFiles/dredbox_tests.dir/optics/test_receiver.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/optics/test_receiver.cpp.o.d"
  "/root/repo/tests/optics/test_switch.cpp" "tests/CMakeFiles/dredbox_tests.dir/optics/test_switch.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/optics/test_switch.cpp.o.d"
  "/root/repo/tests/optics/test_units.cpp" "tests/CMakeFiles/dredbox_tests.dir/optics/test_units.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/optics/test_units.cpp.o.d"
  "/root/repo/tests/orch/test_accel_manager.cpp" "tests/CMakeFiles/dredbox_tests.dir/orch/test_accel_manager.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/orch/test_accel_manager.cpp.o.d"
  "/root/repo/tests/orch/test_consolidator.cpp" "tests/CMakeFiles/dredbox_tests.dir/orch/test_consolidator.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/orch/test_consolidator.cpp.o.d"
  "/root/repo/tests/orch/test_demand_registry.cpp" "tests/CMakeFiles/dredbox_tests.dir/orch/test_demand_registry.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/orch/test_demand_registry.cpp.o.d"
  "/root/repo/tests/orch/test_migration.cpp" "tests/CMakeFiles/dredbox_tests.dir/orch/test_migration.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/orch/test_migration.cpp.o.d"
  "/root/repo/tests/orch/test_power_manager.cpp" "tests/CMakeFiles/dredbox_tests.dir/orch/test_power_manager.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/orch/test_power_manager.cpp.o.d"
  "/root/repo/tests/orch/test_rebalance_oom.cpp" "tests/CMakeFiles/dredbox_tests.dir/orch/test_rebalance_oom.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/orch/test_rebalance_oom.cpp.o.d"
  "/root/repo/tests/orch/test_scale_out.cpp" "tests/CMakeFiles/dredbox_tests.dir/orch/test_scale_out.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/orch/test_scale_out.cpp.o.d"
  "/root/repo/tests/orch/test_sdm_controller.cpp" "tests/CMakeFiles/dredbox_tests.dir/orch/test_sdm_controller.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/orch/test_sdm_controller.cpp.o.d"
  "/root/repo/tests/os/test_hotplug.cpp" "tests/CMakeFiles/dredbox_tests.dir/os/test_hotplug.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/os/test_hotplug.cpp.o.d"
  "/root/repo/tests/os/test_memory_map.cpp" "tests/CMakeFiles/dredbox_tests.dir/os/test_memory_map.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/os/test_memory_map.cpp.o.d"
  "/root/repo/tests/sim/test_breakdown.cpp" "tests/CMakeFiles/dredbox_tests.dir/sim/test_breakdown.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/sim/test_breakdown.cpp.o.d"
  "/root/repo/tests/sim/test_event_queue.cpp" "tests/CMakeFiles/dredbox_tests.dir/sim/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/sim/test_event_queue.cpp.o.d"
  "/root/repo/tests/sim/test_event_queue_properties.cpp" "tests/CMakeFiles/dredbox_tests.dir/sim/test_event_queue_properties.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/sim/test_event_queue_properties.cpp.o.d"
  "/root/repo/tests/sim/test_random.cpp" "tests/CMakeFiles/dredbox_tests.dir/sim/test_random.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/sim/test_random.cpp.o.d"
  "/root/repo/tests/sim/test_report.cpp" "tests/CMakeFiles/dredbox_tests.dir/sim/test_report.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/sim/test_report.cpp.o.d"
  "/root/repo/tests/sim/test_simulator.cpp" "tests/CMakeFiles/dredbox_tests.dir/sim/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/sim/test_simulator.cpp.o.d"
  "/root/repo/tests/sim/test_stats.cpp" "tests/CMakeFiles/dredbox_tests.dir/sim/test_stats.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/sim/test_stats.cpp.o.d"
  "/root/repo/tests/sim/test_time.cpp" "tests/CMakeFiles/dredbox_tests.dir/sim/test_time.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/sim/test_time.cpp.o.d"
  "/root/repo/tests/sim/test_trace.cpp" "tests/CMakeFiles/dredbox_tests.dir/sim/test_trace.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/sim/test_trace.cpp.o.d"
  "/root/repo/tests/tco/test_datacenters.cpp" "tests/CMakeFiles/dredbox_tests.dir/tco/test_datacenters.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/tco/test_datacenters.cpp.o.d"
  "/root/repo/tests/tco/test_refresh_model.cpp" "tests/CMakeFiles/dredbox_tests.dir/tco/test_refresh_model.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/tco/test_refresh_model.cpp.o.d"
  "/root/repo/tests/tco/test_scheduler_properties.cpp" "tests/CMakeFiles/dredbox_tests.dir/tco/test_scheduler_properties.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/tco/test_scheduler_properties.cpp.o.d"
  "/root/repo/tests/tco/test_tco_study.cpp" "tests/CMakeFiles/dredbox_tests.dir/tco/test_tco_study.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/tco/test_tco_study.cpp.o.d"
  "/root/repo/tests/tco/test_workload.cpp" "tests/CMakeFiles/dredbox_tests.dir/tco/test_workload.cpp.o" "gcc" "tests/CMakeFiles/dredbox_tests.dir/tco/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dredbox_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tco/CMakeFiles/dredbox_tco.dir/DependInfo.cmake"
  "/root/repo/build/src/orch/CMakeFiles/dredbox_orch.dir/DependInfo.cmake"
  "/root/repo/build/src/hyp/CMakeFiles/dredbox_hyp.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dredbox_os.dir/DependInfo.cmake"
  "/root/repo/build/src/memsys/CMakeFiles/dredbox_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dredbox_net.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/dredbox_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/dredbox_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dredbox_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
