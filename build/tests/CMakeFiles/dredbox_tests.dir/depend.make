# Empty dependencies file for dredbox_tests.
# This may be replaced when dependencies are built.
