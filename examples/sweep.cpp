// Parameter-sweep driver: fans a grid of (seed x rack size x remote-memory
// ratio x fault plan) cells across worker threads, each cell running the
// standard multi-tenant workload against its own fully independent
// Datacenter, then proves the parallel run bit-identical to a sequential
// one (per-cell determinism digests) and reports the wall-clock speedup.
//
//   $ ./sweep                         # default 2x2x2 grid, 4 threads
//   $ ./sweep --threads 2 --seeds 1,2 --trays 1,2 --ratios 0.25,0.75
//   $ ./sweep --duration-ms 5 --out sweep.json
//
// The JSON report follows the "dredbox-sweep/v1" schema consumed by
// scripts/bench_reduce.py.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/sweep.hpp"
#include "sim/digest.hpp"
#include "sim/format.hpp"
#include "sim/report.hpp"
#include "sim/run_report.hpp"
#include "workload/sweep_body.hpp"

using namespace dredbox;

namespace {

std::vector<std::string> split(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(csv.substr(start));
      break;
    }
    out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

void usage() {
  std::printf(
      "usage: sweep [options]\n"
      "  --threads N      workers for the parallel pass (default 4)\n"
      "  --seeds LIST     comma-separated seeds (default 1,2)\n"
      "  --trays LIST     comma-separated rack sizes in trays (default 1,2)\n"
      "  --ratios LIST    comma-separated remote-memory ratios (default 0.25,0.75)\n"
      "  --faults LIST    comma-separated fault-plan specs; 'none' = no faults\n"
      "  --duration-ms X  per-cell generation window (default 5)\n"
      "  --vms N          VMs per tenant class (default 2)\n"
      "  --out FILE       write the sweep JSON report to FILE\n"
      "  --skip-parallel  only run the sequential pass\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t threads = 4;
  std::string seeds = "1,2";
  std::string trays = "1,2";
  std::string ratios = "0.25,0.75";
  std::string faults = "none";
  double duration_ms = 5.0;
  std::size_t vms = 2;
  std::string out_path;
  bool skip_parallel = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threads") {
      threads = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--seeds") {
      seeds = value();
    } else if (arg == "--trays") {
      trays = value();
    } else if (arg == "--ratios") {
      ratios = value();
    } else if (arg == "--faults") {
      faults = value();
    } else if (arg == "--duration-ms") {
      duration_ms = std::strtod(value().c_str(), nullptr);
    } else if (arg == "--vms") {
      vms = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--skip-parallel") {
      skip_parallel = true;
    } else {
      usage();
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  // --- the grid ---
  core::SweepGrid grid;
  grid.seeds.clear();
  for (const auto& s : split(seeds)) grid.seeds.push_back(std::strtoull(s.c_str(), nullptr, 10));
  grid.rack_trays.clear();
  for (const auto& t : split(trays)) {
    grid.rack_trays.push_back(std::strtoull(t.c_str(), nullptr, 10));
  }
  grid.remote_ratios.clear();
  for (const auto& r : split(ratios)) grid.remote_ratios.push_back(std::strtod(r.c_str(), nullptr));
  grid.fault_plans.clear();
  for (const auto& f : split(faults)) grid.fault_plans.push_back(f == "none" ? "" : f);

  // --- the workload every cell runs ---
  // Two tenant classes: a bursty open-loop front-end (MMPP arrivals, mostly
  // reads) and a closed-loop analytics tenant pushing bulk DMA.
  workload::SweepWorkload shape;
  shape.duration = sim::Time::ms(duration_ms);
  shape.footprint_bytes = 4ull << 30;  // split into 1 GiB hotplug blocks per cell

  workload::TenantSpec web;
  web.name = "web";
  web.vms = vms;
  web.loop = workload::LoopMode::kOpen;
  web.arrivals = workload::ArrivalProcess::kMmpp;
  web.rate_hz = 10000.0;
  shape.tenants.push_back(web);

  workload::TenantSpec analytics;
  analytics.name = "analytics";
  analytics.vms = vms;
  analytics.loop = workload::LoopMode::kClosed;
  analytics.outstanding = 4;
  analytics.rate_hz = 20000.0;
  analytics.mix = {0.50, 0.30, 0.20};
  shape.tenants.push_back(analytics);

  core::SweepRunner runner{grid, workload::make_sweep_body(shape)};
  // Size the bricks so the heaviest split (3 GiB local + 3 GiB remote per
  // VM, several VMs per brick) fits comfortably.
  core::ScenarioBuilder base;
  base.compute_local_memory_bytes(16ull << 30).memory_pool_bytes(64ull << 30);
  runner.set_base(base);

  std::printf("== dReDBox parameter sweep ==\n");
  std::printf("grid: %zu seeds x %zu rack sizes x %zu remote ratios x %zu fault plans = "
              "%zu cells\n",
              grid.seeds.size(), grid.rack_trays.size(), grid.remote_ratios.size(),
              grid.fault_plans.size(), grid.size());
  std::printf("workload: %zu tenant classes, %zu VMs each, %.1f ms window per cell\n\n",
              shape.tenants.size(), vms, duration_ms);

  const core::SweepReport sequential = runner.run(1);
  std::printf("sequential:            %zu/%zu cells ok in %.2f s\n", sequential.cells_ok(),
              sequential.cells.size(), sequential.wall_seconds);

  const core::SweepReport& report = sequential;
  core::SweepReport parallel;
  bool match = true;
  if (!skip_parallel) {
    parallel = runner.run(threads);
    match = core::digests_match(sequential, parallel);
    std::printf("parallel (%zu threads): %zu/%zu cells ok in %.2f s  (speedup %.2fx)\n",
                parallel.threads, parallel.cells_ok(), parallel.cells.size(),
                parallel.wall_seconds,
                parallel.wall_seconds > 0 ? sequential.wall_seconds / parallel.wall_seconds
                                          : 0.0);
    std::printf("per-cell digests:      %s\n", match ? "IDENTICAL" : "MISMATCH");
  }
  std::printf("\n");

  sim::TextTable table{{"cell", "offered", "done", "fail", "p50 us", "p99 us", "digest"}};
  for (const auto& c : report.cells) {
    if (!c.ok) {
      table.add_row({c.cell.label(), "-", "-", "-", "-", "-", "ERROR: " + c.error});
      continue;
    }
    table.add_row({c.cell.label(), std::to_string(c.stats.offered),
                   std::to_string(c.stats.completed), std::to_string(c.stats.failed),
                   sim::strformat("%.2f", c.stats.p50_us),
                   sim::strformat("%.2f", c.stats.p99_us),
                   sim::strformat("%016llx", static_cast<unsigned long long>(c.stats.digest))});
  }
  std::printf("%s", table.to_string().c_str());

  if (!out_path.empty()) {
    // The parallel pass (when run) is the authoritative report; splice in
    // the sequential wall clock, the digest verdict and the host's core
    // count so bench_reduce.py can judge the speedup criterion fairly.
    const core::SweepReport& emitted = skip_parallel ? sequential : parallel;
    std::string json = emitted.to_json();
    const std::size_t tail = json.rfind("\n}");
    if (tail != std::string::npos) {
      json.erase(tail);
      json += sim::strformat(
          ",\n  \"sequential_wall_seconds\": %.9g,\n  \"digests_match\": %s,\n"
          "  \"host\": {\"num_cpus\": %u}\n}\n",
          sequential.wall_seconds, match ? "true" : "false",
          std::thread::hardware_concurrency());
    }
    std::ofstream out{out_path};
    out << json;
    if (!out) {
      std::printf("\nfailed to write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", out_path.c_str());
  }

  // Standardized run-report artifact (written when DREDBOX_REPORT_FILE is
  // set): the determinism digest folds every cell's digest in grid order,
  // so two same-grid sweeps render byte-identical documents.
  sim::Digest fold;
  std::uint64_t offered = 0, completed = 0, failed = 0;
  for (const auto& c : report.cells) {
    fold.update(c.cell.label()).update(static_cast<std::uint64_t>(c.ok ? 1 : 0));
    if (!c.ok) continue;
    fold.update(c.stats.digest);
    offered += c.stats.offered;
    completed += c.stats.completed;
    failed += c.stats.failed;
  }
  sim::RunReport run_report;
  run_report.tag("sweep")
      .seed(grid.seeds.empty() ? 0 : grid.seeds.front())
      .config_digest(base.config().digest())
      .determinism_digest(fold.value())
      .fault_plan(faults == "none" ? "" : faults)
      .duration(sim::Time::ms(duration_ms))
      .note("cells", static_cast<std::uint64_t>(report.cells.size()))
      .note("cells_ok", static_cast<std::uint64_t>(report.cells_ok()))
      .note("offered", offered)
      .note("completed", completed)
      .note("failed", failed);
  if (run_report.maybe_write()) {
    std::printf("wrote run report to %s\n", std::getenv(sim::kReportFileEnv));
  }

  const bool all_ok = report.cells_ok() == report.cells.size();
  return match && all_ok ? 0 : 1;
}
