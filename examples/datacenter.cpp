// Multi-rack datacenter driver: builds N racks joined by an optical spine,
// places one tenant class per rack, points a share of every rack's
// read/write stream at peer racks' gateway windows, and runs the coupled
// simulation twice — once on the sequential reference schedule, once in
// conservative-lookahead parallel rounds — proving the two schedules
// byte-identical by digest and reporting the wall-clock speedup.
//
//   $ ./datacenter                              # 2 racks, 2 threads
//   $ ./datacenter --racks 16 --threads 4 --cross-share 0.15
//   $ ./datacenter --fault-rack 0 --fault-at-ms 1 --fault-for-ms 2
//   $ ./datacenter --racks 4 --out parallel.json
//
// The JSON report follows the "dredbox-parallel/v1" schema consumed by
// scripts/bench_reduce.py.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "core/scenario.hpp"
#include "sim/format.hpp"
#include "workload/cluster.hpp"

using namespace dredbox;

namespace {

void usage() {
  std::printf(
      "usage: datacenter [options]\n"
      "  --racks N        racks on the spine (default 2)\n"
      "  --threads N      workers for the parallel pass (default 2)\n"
      "  --seed N         deployment seed (default 1)\n"
      "  --duration-ms X  generation window (default 2)\n"
      "  --cross-share X  fraction of reads/writes crossing the spine (default 0.10)\n"
      "  --vms N          VMs per rack (default 1)\n"
      "  --fault-rack N   rack whose spine uplink fails (default: no fault)\n"
      "  --fault-at-ms X  fault onset (default 1)\n"
      "  --fault-for-ms X fault duration (default 1)\n"
      "  --out FILE       write the dredbox-parallel/v1 JSON report to FILE\n");
}

core::ScenarioBuilder make_builder(std::size_t racks, std::uint64_t seed, double cross_share,
                                   std::size_t threads, long fault_rack, double fault_at_ms,
                                   double fault_for_ms) {
  core::RackSpec rack;
  rack.trays = 1;
  rack.compute_bricks_per_tray = 2;
  rack.memory_bricks_per_tray = 2;
  core::ScenarioBuilder builder;
  builder.add_racks(racks, rack)
      .cross_rack_share(cross_share)
      .partitions(threads)
      .seed(seed)
      .compute_local_memory_bytes(8ull << 30)
      .memory_pool_bytes(32ull << 30);
  if (fault_rack >= 0) {
    builder.spine_fault(static_cast<std::size_t>(fault_rack), sim::Time::ms(fault_at_ms),
                        sim::Time::ms(fault_for_ms));
  }
  return builder;
}

workload::WorkloadConfig make_workload(std::size_t racks, std::size_t vms, double duration_ms) {
  workload::WorkloadConfig config;
  config.duration = sim::Time::ms(duration_ms);
  config.drain_grace = sim::Time::ms(1);
  for (std::size_t r = 0; r < racks; ++r) {
    workload::TenantSpec tenant;
    tenant.name = "rack" + std::to_string(r);
    tenant.home_rack = r;
    tenant.vms = vms;
    tenant.local_bytes = 512ull << 20;
    tenant.remote_bytes = 1ull << 30;
    tenant.loop = workload::LoopMode::kClosed;
    tenant.outstanding = 2;
    tenant.rate_hz = 50000.0;
    tenant.mix = {0.65, 0.35, 0.0};
    config.tenants.push_back(tenant);
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t racks = 2;
  std::size_t threads = 2;
  std::uint64_t seed = 1;
  double duration_ms = 2.0;
  double cross_share = 0.10;
  std::size_t vms = 1;
  long fault_rack = -1;
  double fault_at_ms = 1.0;
  double fault_for_ms = 1.0;
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--racks") {
      racks = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--threads") {
      threads = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--duration-ms") {
      duration_ms = std::strtod(value().c_str(), nullptr);
    } else if (arg == "--cross-share") {
      cross_share = std::strtod(value().c_str(), nullptr);
    } else if (arg == "--vms") {
      vms = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--fault-rack") {
      fault_rack = std::strtol(value().c_str(), nullptr, 10);
    } else if (arg == "--fault-at-ms") {
      fault_at_ms = std::strtod(value().c_str(), nullptr);
    } else if (arg == "--fault-for-ms") {
      fault_for_ms = std::strtod(value().c_str(), nullptr);
    } else if (arg == "--out") {
      out_path = value();
    } else {
      usage();
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }
  if (racks == 0 || threads == 0 || vms == 0) {
    usage();
    return 2;
  }

  const core::ScenarioBuilder builder = make_builder(racks, seed, cross_share, threads,
                                                     fault_rack, fault_at_ms, fault_for_ms);
  const workload::WorkloadConfig workload = make_workload(racks, vms, duration_ms);

  std::printf("== dReDBox multi-rack datacenter ==\n");
  std::printf("%zu racks on the spine, %.1f ms window, cross-rack share %.2f%s\n\n", racks,
              duration_ms, cross_share,
              fault_rack >= 0 ? ", spine fault scheduled" : "");

  // Sequential reference: an independent cluster, same seed, 1 thread.
  core::Scenario seq_scenario = builder.build();
  workload::ClusterEngine seq_engine{seq_scenario.cluster(), workload};
  const workload::ClusterResult seq = seq_engine.run(1);
  std::printf("sequential:            %s\n\n", seq.summary().c_str());

  // Parallel pass: a fresh, fully independent cluster on `threads` workers.
  core::Scenario par_scenario = builder.build();
  workload::ClusterEngine par_engine{par_scenario.cluster(), workload};
  const workload::ClusterResult par = par_engine.run(threads);
  std::printf("parallel (%zu threads): %s\n\n", par.threads, par.summary().c_str());

  const bool match = seq.digest == par.digest;
  const double speedup =
      par.run.wall_seconds > 0.0 ? seq.run.wall_seconds / par.run.wall_seconds : 0.0;
  std::printf("digests: %s   speedup %.2fx\n", match ? "IDENTICAL" : "MISMATCH", speedup);

  if (!out_path.empty()) {
    std::string json = "{\n";
    json += R"(  "schema": "dredbox-parallel/v1",)" "\n";
    json += sim::strformat("  \"racks\": %zu,\n  \"threads\": %zu,\n  \"seed\": %llu,\n", racks,
                           par.threads, static_cast<unsigned long long>(seed));
    json += sim::strformat("  \"duration_ms\": %.9g,\n  \"cross_share\": %.9g,\n", duration_ms,
                           cross_share);
    json += sim::strformat("  \"fault_rack\": %ld,\n", fault_rack);
    json += sim::strformat("  \"digest\": \"%016llx\",\n  \"digests_match\": %s,\n",
                           static_cast<unsigned long long>(par.digest),
                           match ? "true" : "false");
    json += sim::strformat(
        "  \"offered\": %llu,\n  \"completed\": %llu,\n  \"failed\": %llu,\n"
        "  \"cross_ops\": %llu,\n  \"spine_tx_messages\": %llu,\n"
        "  \"spine_fail_fast\": %llu,\n",
        static_cast<unsigned long long>(par.offered),
        static_cast<unsigned long long>(par.completed),
        static_cast<unsigned long long>(par.failed),
        static_cast<unsigned long long>(par.cross_ops),
        static_cast<unsigned long long>(par.spine_tx_messages),
        static_cast<unsigned long long>(par.spine_fail_fast));
    json += sim::strformat("  \"rounds\": %zu,\n  \"messages\": %llu,\n", par.run.kernel.rounds,
                           static_cast<unsigned long long>(par.run.kernel.messages));
    json += sim::strformat(
        "  \"sequential_wall_seconds\": %.9g,\n  \"parallel_wall_seconds\": %.9g,\n"
        "  \"speedup\": %.9g,\n",
        seq.run.wall_seconds, par.run.wall_seconds, speedup);
    json += sim::strformat("  \"host\": {\"num_cpus\": %u}\n}\n",
                           std::thread::hardware_concurrency());
    std::ofstream out{out_path};
    out << json;
    if (!out) {
      std::printf("failed to write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }

  return match ? 0 : 1;
}
