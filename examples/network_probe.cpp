// Pilot application 3 (Section V): network analytics at very high rates.
// A monitoring probe on a 100GbE link runs in two modes: (a) online —
// every frame is classified by a reconfigurable accelerator hosted on a
// dACCELBRICK; (b) offline — frames marked as relevant are studied
// exhaustively on dCOMPUBRICKs whose memory scales with the backlog, so
// the analysis keeps executing continuously instead of being postponed.
//
//   $ ./network_probe

#include <cstdio>

#include "core/pilots/network_analytics.hpp"
#include "core/scenario.hpp"
#include "sim/report.hpp"

using namespace dredbox;

int main() {
  auto scenario = core::ScenarioBuilder{}
                      .racks(/*trays=*/2, /*compute_per_tray=*/1, /*memory_per_tray=*/3,
                             /*accel_per_tray=*/1)
                      .memory_pool_bytes(64ull << 30)
                      .switch_ports(96)
                      .build();
  core::Datacenter& dc = scenario.datacenter();
  std::printf("%s\n\n", dc.describe().c_str());

  core::pilots::NetworkAnalyticsConfig config;
  config.duration_s = 3600.0;  // one hour of traffic with a load peak
  core::pilots::NetworkAnalyticsPilot pilot{config};

  std::printf("probing a %.0f GbE link for %.0f min (mean frame %g B, %.1f%% of\n",
              config.line_rate_gbps, config.duration_s / 60.0, config.mean_packet_bytes,
              config.interest_fraction * 100);
  std::printf("frames marked for offline study)...\n\n");
  const auto out = pilot.run(dc);

  std::printf("online stage (dACCELBRICK, reconfigured in %.0f ms via PCAP):\n",
              out.accelerator_reconfig_s * 1e3);
  sim::TextTable online{{"metric", "value"}};
  online.add_row({"frames offered", sim::TextTable::num(out.offered_mpkts, 1) + " M"});
  online.add_row({"frames classified", sim::TextTable::num(out.classified_mpkts, 1) + " M"});
  online.add_row({"drop fraction", sim::TextTable::pct(out.online_drop_fraction, 3)});
  online.add_row({"frames marked relevant", sim::TextTable::num(out.marked_mpkts, 1) + " M"});
  std::printf("%s\n", online.to_string().c_str());

  std::printf("offline stage (dCOMPUBRICK with elastic buffer memory):\n");
  sim::TextTable offline{{"buffering", "mean marking->verdict latency"}};
  offline.add_row({"elastic (dReDBox)", sim::TextTable::num(out.elastic_mean_response_s, 1) + " s"});
  offline.add_row({"static 8 GB buffer", sim::TextTable::num(out.static_mean_response_s, 1) + " s"});
  std::printf("%s\n", offline.to_string().c_str());

  std::printf("memory scale events: %zu up / %zu down\n", out.scale_ups, out.scale_downs);
  std::printf("\nWith hotplugged memory following the backlog, the offline analysis is\n");
  std::printf("%.1fx more responsive — 'the more responsiveness of the analysis tool,\n",
              out.static_mean_response_s / std::max(1e-9, out.elastic_mean_response_s));
  std::printf("the faster a solution is offered to the user' (Section V).\n");
  return 0;
}
