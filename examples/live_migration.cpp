// Live VM migration across dCOMPUBRICKs (project objective: "enhanced
// elasticity and improved process/VM migration within the datacenter").
// Demonstrates the disaggregation dividend: the bigger the share of the
// guest's memory that lives on dMEMBRICKs, the less data a migration has
// to move — segments are re-pointed (RMST + circuit), never copied.
//
//   $ ./live_migration

#include <cstdio>

#include "core/scenario.hpp"
#include "sim/report.hpp"

using namespace dredbox;
constexpr std::uint64_t kGiB = 1ull << 30;

int main() {
  auto scenario = core::ScenarioBuilder{}
                      .racks(/*trays=*/2, /*compute_per_tray=*/1, /*memory_per_tray=*/2)
                      .compute_local_memory_bytes(8 * kGiB)
                      .memory_pool_bytes(32 * kGiB)
                      .build();
  core::Datacenter& dc = scenario.datacenter();
  std::printf("%s\n\n", dc.describe().c_str());

  // Boot a VM with 2 GiB local memory and grow it with 6 GiB of
  // disaggregated memory.
  const auto vm = dc.boot_vm("db-server", 2, 2 * kGiB);
  if (!vm.ok) {
    std::printf("boot failed: %s\n", vm.error.c_str());
    return 1;
  }
  hw::SegmentId last_segment;
  for (int i = 0; i < 3; ++i) {
    dc.advance_to(sim::Time::sec(10.0 * (i + 1)));
    const auto up = dc.scale_up(vm.vm, vm.compute, 2 * kGiB);
    if (!up.ok) {
      std::printf("scale-up failed: %s\n", up.error.c_str());
      return 1;
    }
    last_segment = up.segment;
  }
  std::printf("guest footprint: 2 GiB local + 6 GiB disaggregated\n");

  // Evacuate the brick (e.g. for a component-level technology refresh —
  // one of the paper's TCO arguments).
  const auto computes = dc.compute_bricks();
  const hw::BrickId destination = computes[0] == vm.compute ? computes[1] : computes[0];
  dc.advance_to(sim::Time::sec(60));
  std::printf("\nmigrating %s -> %s ...\n",
              dc.rack().brick(vm.compute).describe().c_str(),
              dc.rack().brick(destination).describe().c_str());
  const auto result = dc.migrate_vm(vm.vm, vm.compute, destination);
  if (!result.ok) {
    std::printf("migration failed: %s\n", result.error.c_str());
    return 1;
  }

  std::printf("\nmigration completed in %s (downtime %s)\n",
              result.total_time.to_string().c_str(), result.downtime.to_string().c_str());
  std::printf("  copied:     %5.2f GiB (local DIMMs, pre-copy x%zu)\n",
              static_cast<double>(result.copied_bytes) / kGiB, result.precopy_iterations);
  std::printf("  re-pointed: %5.2f GiB (disaggregated, zero copy)\n",
              static_cast<double>(result.repointed_bytes) / kGiB);
  std::printf("\nphase breakdown:\n%s\n", result.breakdown.to_string().c_str());

  const sim::Time all_local = dc.migration().conventional_copy_time(8 * kGiB);
  std::printf("conventional all-local move of the same 8 GiB: %s (%.1fx slower)\n",
              all_local.to_string().c_str(),
              all_local.as_sec() / result.total_time.as_sec());

  // The migrated guest keeps working: read its remote memory from the new
  // brick and scale it down.
  const auto attachments = dc.fabric().attachments_of(destination);
  const auto tx = dc.remote_read(destination, attachments.front().compute_base, 64);
  std::printf("\npost-migration remote read from %s: %s\n",
              dc.rack().brick(destination).describe().c_str(),
              tx.round_trip().to_string().c_str());
  const auto down = dc.scale_down(result.new_vm, destination, attachments.front().segment);
  std::printf("post-migration scale-down: %s\n",
              down.ok ? down.delay().to_string().c_str() : down.error.c_str());
  return 0;
}
