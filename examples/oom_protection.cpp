// Automatic OOM protection (Section IV-B: "in the future, the guest
// memory hotplug support will be enhanced to automatically protect the
// guest from running out-of-memory"). A guest's memory usage ramps up
// (a batch job loading its dataset) and later drains; the OOM guard
// watches the pressure reports and grows/shrinks the guest through the
// SDM-C before the guest ever hits its ceiling.
//
//   $ ./oom_protection

#include <algorithm>
#include <cmath>
#include <string>
#include <cstdio>

#include "core/scenario.hpp"
#include "sim/report.hpp"

using namespace dredbox;
constexpr std::uint64_t kGiB = 1ull << 30;

int main() {
  orch::OomGuardConfig guard;
  guard.pressure_threshold = 0.8;  // act with head-room
  guard.relax_threshold = 0.4;
  guard.scale_chunk_bytes = 2 * kGiB;
  guard.cooldown = sim::Time::sec(5);
  auto scenario = core::ScenarioBuilder{}
                      .racks(/*trays=*/2, /*compute_per_tray=*/1, /*memory_per_tray=*/2)
                      .oom_guard(guard)
                      .tracing()
                      .build();
  core::Datacenter& dc = scenario.datacenter();

  const auto vm = dc.boot_vm("batch-job", 2, 2 * kGiB);
  if (!vm.ok) {
    std::printf("boot failed: %s\n", vm.error.c_str());
    return 1;
  }
  dc.oom_guard().watch(vm.vm, vm.compute);
  std::printf("guest booted with 2 GiB; OOM guard armed (grow at %.0f%%, relax at %.0f%%)\n\n",
              guard.pressure_threshold * 100, guard.relax_threshold * 100);

  // The job's working set: ramps to 13 GiB over 10 minutes, holds, drains.
  auto usage_gib = [](double minute) {
    if (minute < 10.0) return 1.0 + 12.0 * minute / 10.0;   // load phase
    if (minute < 20.0) return 13.0;                          // compute phase
    return std::max(1.0, 13.0 - 12.0 * (minute - 20.0) / 8.0);  // drain
  };

  std::printf("%-8s %-12s %-12s %-10s %s\n", "minute", "used (GiB)", "guest (GiB)",
              "pressure", "guard action");
  bool ever_oom = false;
  // The agent reports usage every 15 s (the ballooning-stats cadence);
  // the table prints once a minute.
  for (double minute = 0.0; minute <= 30.0; minute += 0.25) {
    const sim::Time now = sim::Time::sec(minute * 60.0);
    dc.advance_to(now);
    const double used = usage_gib(minute);
    const auto used_bytes = static_cast<std::uint64_t>(used * static_cast<double>(kGiB));

    const auto& guest = dc.hypervisor_of(vm.compute).vm(vm.vm);
    const double usable = static_cast<double>(guest.usable_bytes()) / static_cast<double>(kGiB);
    if (used > usable) ever_oom = true;
    const double pressure = used / usable;

    const std::size_t grows_before = dc.oom_guard().interventions();
    const std::size_t releases_before = dc.oom_guard().releases();
    const auto action = dc.oom_guard().report_usage(vm.vm, used_bytes, now);
    const char* what = "-";
    if (action && action->ok) {
      dc.advance_to(action->completed_at);
      if (dc.oom_guard().interventions() > grows_before) what = "grew +2 GiB";
      if (dc.oom_guard().releases() > releases_before) what = "released 2 GiB";
    }
    const bool whole_minute = std::fabs(minute - std::round(minute)) < 1e-9;
    if (whole_minute || std::string{what} != "-") {
      std::printf("%-8.2f %-12.1f %-12.1f %-10.2f %s\n", minute, used, usable, pressure, what);
    }
  }

  const auto& guest = dc.hypervisor_of(vm.compute).vm(vm.vm);
  std::printf("\nfinal guest size: %.1f GiB (back near boot size)\n",
              static_cast<double>(guest.usable_bytes()) / static_cast<double>(kGiB));
  std::printf("guard interventions: %zu grows, %zu releases\n",
              dc.oom_guard().interventions(), dc.oom_guard().releases());
  std::printf("guest ever exceeded its memory (would have OOMed): %s\n",
              ever_oom ? "YES" : "no");
  std::printf("\ntimeline (fabric events):\n");
  for (const auto& e : dc.tracer().filter(sim::TraceCategory::kFabric)) {
    std::printf("  [%s] %s\n", e.when.to_string().c_str(), e.message.c_str());
  }
  return ever_oom ? 1 : 0;
}
