// Pilot application 1 (Section V): real-time video surveillance
// analytics. Investigations arrive unpredictably and each may require
// searching through up to 100,000 hours of video; the computational
// requirements are event-driven and cannot be scheduled in advance.
// dReDBox absorbs each surge by scaling the analytics VM's memory up and
// releasing it afterwards.
//
//   $ ./video_surveillance

#include <cstdio>

#include "core/pilots/video_analytics.hpp"
#include "core/scenario.hpp"
#include "sim/report.hpp"

using namespace dredbox;

int main() {
  auto scenario = core::ScenarioBuilder{}
                      .racks(/*trays=*/2, /*compute_per_tray=*/2, /*memory_per_tray=*/4)
                      .memory_pool_bytes(64ull << 30)  // 512 GiB pool
                      .switch_ports(96)
                      .build();
  core::Datacenter& dc = scenario.datacenter();
  std::printf("%s\n\n", dc.describe().c_str());

  core::pilots::VideoAnalyticsConfig config;
  config.duration_hours = 72.0;          // three days of investigations
  config.mean_interarrival_hours = 4.0;
  config.max_video_hours = 100000.0;     // "100,000 hours or more"
  core::pilots::VideoAnalyticsPilot pilot{config};

  std::printf("running %g h of event-driven investigations...\n\n", config.duration_hours);
  const auto out = pilot.run(dc);

  sim::TextTable table{{"metric", "elastic (dReDBox)", "static provision"}};
  table.add_row({"mean completion (h)",
                 sim::TextTable::num(out.elastic_mean_completion_hours, 2),
                 sim::TextTable::num(out.static_mean_completion_hours, 2)});
  table.add_row({"peak memory (GB)", sim::TextTable::num(out.elastic_peak_gb, 0),
                 sim::TextTable::num(out.static_peak_gb, 0)});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("investigations handled:   %zu\n", out.investigations);
  std::printf("memory scale-ups/downs:   %zu / %zu (mean delay %.2f s)\n", out.scale_ups,
              out.scale_downs, out.mean_scale_up_delay_s);
  std::printf("elastic speedup:          %.1fx faster mean completion\n", out.speedup());
  std::printf("\nThe event-driven surges complete %.1fx faster because the working\n",
              out.speedup());
  std::printf("set stays resident in disaggregated memory instead of thrashing a\n");
  std::printf("fixed %llu GB provision.\n",
              static_cast<unsigned long long>(pilot.config().static_provision_gb));
  return 0;
}
