// Pilot application 2 (Section V): NFV edge computing with collaborative
// cryptography. The key server stores private keys behind a mutually
// authenticated channel; because of the sensitivity of its database,
// scale-out (replicating the keys to more instances) must be avoided.
// dReDBox instead scales the *memory* of the single key-server VM with
// the diurnal traffic pattern.
//
//   $ ./nfv_keyserver

#include <cstdio>

#include "core/pilots/nfv.hpp"
#include "core/scenario.hpp"
#include "sim/report.hpp"

using namespace dredbox;

int main() {
  auto scenario = core::ScenarioBuilder{}
                      .racks(/*trays=*/2, /*compute_per_tray=*/1, /*memory_per_tray=*/2)
                      .memory_pool_bytes(32ull << 30)
                      .build();
  core::Datacenter& dc = scenario.datacenter();
  std::printf("%s\n\n", dc.describe().c_str());

  core::pilots::NfvConfig config;
  config.duration_hours = 48.0;  // two diurnal cycles
  core::pilots::NfvKeyServerPilot pilot{config};

  // Show the modelled load pattern first.
  std::printf("diurnal load pattern (peak %.0f GB at %02.0f:00, night floor %.0f%%):\n",
              static_cast<double>(config.peak_memory_gb), config.peak_hour,
              config.night_load_fraction * 100);
  for (int h = 0; h < 24; h += 2) {
    const double load = pilot.load_at(static_cast<double>(h));
    std::printf("  %02d:00 load %4.0f%%  demand %2llu GB |%s\n", h, load * 100,
                static_cast<unsigned long long>(pilot.demand_gb(load)),
                sim::ascii_bar(load, 1.0, 40).c_str());
  }

  std::printf("\nrunning %g h with elastic key-server memory...\n\n", config.duration_hours);
  const auto out = pilot.run(dc);

  sim::TextTable table{{"provisioning", "SLA violations", "GB-hours", "keys replicated"}};
  table.add_row({"elastic (dReDBox)", sim::TextTable::pct(out.elastic_violation_fraction),
                 sim::TextTable::num(out.elastic_gb_hours, 0), "never"});
  table.add_row({"static @ peak", "0.0%", sim::TextTable::num(out.static_peak_gb_hours, 0),
                 "never"});
  table.add_row({"static @ mean", sim::TextTable::pct(out.static_tight_violation_fraction),
                 "-", "never"});
  table.add_row({"scale-out", "0.0%", "-", "YES (unacceptable)"});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("scale events: %zu up / %zu down, mean control-path delay %.2f s\n",
              out.scale_ups, out.scale_downs, out.mean_scale_delay_s);
  std::printf("provisioned GB-hours vs peak-sizing: %.0f vs %.0f (%.0f%% saved)\n",
              out.elastic_gb_hours, out.static_peak_gb_hours,
              out.provisioning_savings() * 100);
  std::printf("\nElastic memory rides the daily peaks without ever replicating the\n");
  std::printf("key database — the elasticity scale-out cannot safely provide.\n");
  return 0;
}
