// Quickstart: assemble a dReDBox rack, boot a VM through the OpenStack
// front-end, dynamically scale its memory up over the optical fabric,
// touch the remote memory, and scale back down.
//
//   $ ./quickstart
//
// Set DREDBOX_FAULT_PLAN to run the same session under injected faults
// (see sim/fault.hpp for the mini-language), e.g.
//
//   $ DREDBOX_FAULT_PLAN='link-flap@1ms+2ms;congestion@2ms+1ms:magnitude=4' ./quickstart

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

#include "core/scenario.hpp"
#include "sim/digest.hpp"
#include "sim/fault.hpp"
#include "sim/run_report.hpp"
#include "sim/timeseries.hpp"
#include "sim/trace_export.hpp"

using namespace dredbox;

int main() {
  // 1. Describe the deployment: 2 trays, each carrying 2 dCOMPUBRICKs
  //    (quad-core A53, 4 GiB local DDR) and 2 dMEMBRICKs (32 GiB pool),
  //    interconnected through a 48-port optical circuit switch. The
  //    builder validates the shape, assembles the rack, enables metrics +
  //    an operation timeline, and — with DREDBOX_FAULT_PLAN set (see
  //    sim/fault.hpp for the mini-language) — schedules the scripted
  //    faults so they land while the workload below runs.
  std::optional<core::Scenario> scenario;
  std::optional<sim::FaultPlan> fault_plan;
  try {
    // The plan is parsed here but injected later, shifted to the start of
    // the read window (step 4), so its faults land while reads are in
    // flight rather than during the (long) boot + scale-up control path.
    fault_plan = sim::fault_plan_from_env();
    scenario = core::ScenarioBuilder{}
                   .racks(/*trays=*/2, /*compute_per_tray=*/2, /*memory_per_tray=*/2)
                   .telemetry()
                   .prefer_optical()  // attachments ride real circuits, so
                                      // link-flap faults have a victim
                   .profile_kernel_from_env()
                   .build();
  } catch (const std::exception& e) {
    std::printf("bad %s: %s\n", sim::kFaultPlanEnv, e.what());
    return 1;
  }
  core::Datacenter& dc = scenario->datacenter();
  std::printf("%s\n\n", dc.describe().c_str());

  // 2. Boot a commodity VM. The SDM controller picks a dCOMPUBRICK,
  //    reserves cores and memory, and the Type-1 hypervisor starts it.
  const auto vm = dc.boot_vm("quickstart-guest", /*vcpus=*/2, /*memory=*/2ull << 30);
  if (!vm.ok) {
    std::printf("boot failed: %s\n", vm.error.c_str());
    return 1;
  }
  std::printf("booted VM %s on %s (local %llu MiB, remote %llu MiB)\n",
              vm.vm.to_string().c_str(), dc.rack().brick(vm.compute).describe().c_str(),
              static_cast<unsigned long long>(vm.local_bytes >> 20),
              static_cast<unsigned long long>(vm.remote_bytes >> 20));

  // 3. The application asks for 4 GiB more through the Scale-up API. The
  //    SDM-C selects a dMEMBRICK power-consciously, programs the optical
  //    switch, the agent configures the glue logic, the baremetal kernel
  //    hotplugs the range, and the hypervisor plugs a DIMM into the guest.
  const auto up = dc.scale_up(vm.vm, vm.compute, 4ull << 30);
  if (!up.ok) {
    std::printf("scale-up failed: %s\n", up.error.c_str());
    return 1;
  }
  std::printf("\nscale-up completed in %s; control-path breakdown:\n%s\n",
              up.delay().to_string().c_str(), up.breakdown.to_string().c_str());

  // 4. Touch the disaggregated memory while the fault plan (if any) runs:
  //    64 B reads are paced every 250 us across the fault horizon, so with
  //    a plan loaded some land mid-fault and ride the recovery ladder
  //    (retry backoff -> RMST scrub / circuit re-provision / packet
  //    failover) to completion. Every read travels APU -> TGL -> circuit
  //    -> dMEMBRICK glue logic -> DDR and back; the tracer captures each
  //    as a causal span tree.
  const auto attachment = dc.fabric().attachments_of(vm.compute).front();
  const sim::Time t0 = dc.simulator().now();
  sim::Time fault_end = t0;
  if (fault_plan) {
    const sim::FaultPlan shifted = fault_plan->shifted(t0);
    dc.inject_faults(shifted);
    fault_end = shifted.horizon();
    std::printf("\ninjecting fault plan (relative to the read window): %s\n",
                fault_plan->to_string().c_str());
  }
  const sim::Time window_end =
      std::max(fault_end + sim::Time::ms(1), t0 + sim::Time::ms(2));

  // Metric time series: snapshot every registered instrument each 250 us
  // of simulated time while the reads run.
  const sim::Time sample_period = sim::Time::us(250);
  sim::TimeSeriesSampler sampler{dc.simulator(), dc.metrics(), sample_period};
  sampler.start(window_end);

  sim::Digest digest;  // determinism fingerprint of the whole read stream
  std::vector<memsys::Transaction> reads;
  for (sim::Time t = t0; t < window_end; t += sim::Time::us(250)) {
    dc.simulator().at(t, [&dc, &digest, &reads, &vm, &attachment] {
      const auto tx =
          dc.remote_read(vm.compute, attachment.compute_base + 0x40, 64);
      digest.update("read")
          .update(static_cast<std::uint64_t>(tx.status))
          .update(static_cast<std::uint64_t>(tx.round_trip().ticks()))
          .update(static_cast<std::uint64_t>(tx.retries));
      reads.push_back(tx);
    }, "quickstart.remote_read");
  }
  dc.advance_to(window_end);

  std::uint64_t ok = 0, failed = 0, retries = 0;
  for (const auto& tx : reads) {
    (tx.ok() ? ok : failed) += 1;
    retries += tx.retries;
  }
  std::printf("issued %zu remote 64 B reads: %llu ok, %llu failed, %llu retries\n",
              reads.size(), static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(failed),
              static_cast<unsigned long long>(retries));
  if (!reads.empty()) {
    const auto& tx = reads.front();
    std::printf("first read: %s round trip\n%s\n", tx.round_trip().to_string().c_str(),
                tx.breakdown.to_string().c_str());
  }
  if (fault_plan) {
    std::printf("fault plan ran: %llu injected, %llu recovered, %llu still active\n\n",
                static_cast<unsigned long long>(dc.faults().injected()),
                static_cast<unsigned long long>(dc.faults().recovered()),
                static_cast<unsigned long long>(dc.faults().active()));
  }

  // 5. Give the memory back.
  const auto down = dc.scale_down(vm.vm, vm.compute, up.segment);
  std::printf("scale-down completed in %s; rack draws %.1f W\n",
              down.delay().to_string().c_str(), dc.power_draw_watts());

  // 6. The tracer captured the whole session, and every layer reported
  //    into the shared metrics registry.
  std::printf("\noperation timeline:\n%s", dc.tracer().to_string().c_str());
  std::printf("\ntelemetry snapshot:\n%s", dc.metrics().snapshot().to_string().c_str());

  // 7. Export the observability artifacts (each gated on its env var):
  //    - DREDBOX_TRACE_FILE: Chrome trace-event JSON with causal flow
  //      links (open in ui.perfetto.dev),
  //    - DREDBOX_OPENMETRICS_FILE: the sampled time series as OpenMetrics
  //      text,
  //    - DREDBOX_REPORT_FILE: the dredbox-report/v1 run artifact (config
  //      digest, determinism digest, metric finals, slowest span trees;
  //      kernel profile when DREDBOX_PROFILE is also set).
  try {
    if (sim::maybe_write_trace(dc.tracer())) {
      std::printf("\nwrote Chrome trace to %s\n", std::getenv(sim::kTraceFileEnv));
    }
    const sim::TimeSeriesSet series = sampler.take();
    if (sim::maybe_write_openmetrics(series)) {
      std::printf("wrote OpenMetrics series to %s\n",
                  std::getenv(sim::kOpenMetricsFileEnv));
    }
    sim::RunReport report;
    report.tag("quickstart")
        .seed(dc.config().seed)
        .config_digest(dc.config().digest())
        .determinism_digest(digest.value())
        .fault_plan(fault_plan ? fault_plan->to_string() : "")
        .duration(dc.simulator().now())
        .note("reads", static_cast<std::uint64_t>(reads.size()))
        .note("reads_ok", ok)
        .note("reads_failed", failed)
        .note("read_retries", retries)
        .metrics(dc.metrics())
        .timeseries(series, sample_period)
        .traces(dc.tracer());
    if (std::getenv(sim::kProfileEnv) != nullptr) {
      report.kernel_profile(dc.simulator().queue());
    }
    if (report.maybe_write()) {
      std::printf("wrote run report to %s\n", std::getenv(sim::kReportFileEnv));
    }
  } catch (const std::exception& e) {
    std::printf("\nartifact export failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
