// Quickstart: assemble a dReDBox rack, boot a VM through the OpenStack
// front-end, dynamically scale its memory up over the optical fabric,
// touch the remote memory, and scale back down.
//
//   $ ./quickstart
//
// Set DREDBOX_FAULT_PLAN to run the same session under injected faults
// (see sim/fault.hpp for the mini-language), e.g.
//
//   $ DREDBOX_FAULT_PLAN='link-flap@1ms+2ms;congestion@2ms+1ms:magnitude=4' ./quickstart

#include <cstdio>
#include <cstdlib>
#include <optional>

#include "core/scenario.hpp"
#include "sim/fault.hpp"
#include "sim/trace_export.hpp"

using namespace dredbox;

int main() {
  // 1. Describe the deployment: 2 trays, each carrying 2 dCOMPUBRICKs
  //    (quad-core A53, 4 GiB local DDR) and 2 dMEMBRICKs (32 GiB pool),
  //    interconnected through a 48-port optical circuit switch. The
  //    builder validates the shape, assembles the rack, enables metrics +
  //    an operation timeline, and — with DREDBOX_FAULT_PLAN set (see
  //    sim/fault.hpp for the mini-language) — schedules the scripted
  //    faults so they land while the workload below runs.
  std::optional<core::Scenario> scenario;
  try {
    scenario = core::ScenarioBuilder{}
                   .racks(/*trays=*/2, /*compute_per_tray=*/2, /*memory_per_tray=*/2)
                   .telemetry()
                   .fault_plan_from_env()
                   .build();
  } catch (const std::exception& e) {
    std::printf("bad %s: %s\n", sim::kFaultPlanEnv, e.what());
    return 1;
  }
  core::Datacenter& dc = scenario->datacenter();
  std::printf("%s\n\n", dc.describe().c_str());

  if (scenario->fault_plan()) {
    std::printf("injecting fault plan: %s\n\n", scenario->fault_plan()->to_string().c_str());
  }

  // 2. Boot a commodity VM. The SDM controller picks a dCOMPUBRICK,
  //    reserves cores and memory, and the Type-1 hypervisor starts it.
  const auto vm = dc.boot_vm("quickstart-guest", /*vcpus=*/2, /*memory=*/2ull << 30);
  if (!vm.ok) {
    std::printf("boot failed: %s\n", vm.error.c_str());
    return 1;
  }
  std::printf("booted VM %s on %s (local %llu MiB, remote %llu MiB)\n",
              vm.vm.to_string().c_str(), dc.rack().brick(vm.compute).describe().c_str(),
              static_cast<unsigned long long>(vm.local_bytes >> 20),
              static_cast<unsigned long long>(vm.remote_bytes >> 20));

  // 3. The application asks for 4 GiB more through the Scale-up API. The
  //    SDM-C selects a dMEMBRICK power-consciously, programs the optical
  //    switch, the agent configures the glue logic, the baremetal kernel
  //    hotplugs the range, and the hypervisor plugs a DIMM into the guest.
  const auto up = dc.scale_up(vm.vm, vm.compute, 4ull << 30);
  if (!up.ok) {
    std::printf("scale-up failed: %s\n", up.error.c_str());
    return 1;
  }
  std::printf("\nscale-up completed in %s; control-path breakdown:\n%s\n",
              up.delay().to_string().c_str(), up.breakdown.to_string().c_str());

  // With a fault plan loaded, run the simulation through it: every fault
  // fires, the rack reacts (retry/backoff, re-provisioning, evacuation),
  // and recoveries land before we touch the memory below.
  if (scenario->fault_plan()) {
    scenario->run_fault_plan();
    std::printf("fault plan ran: %llu injected, %llu recovered, %llu still active\n\n",
                static_cast<unsigned long long>(dc.faults().injected()),
                static_cast<unsigned long long>(dc.faults().recovered()),
                static_cast<unsigned long long>(dc.faults().active()));
  }

  // 4. Touch the disaggregated memory: a 64 B read travels APU -> TGL ->
  //    circuit -> dMEMBRICK glue logic -> DDR and back.
  const auto attachment = dc.fabric().attachments_of(vm.compute).front();
  const auto tx = dc.remote_read(vm.compute, attachment.compute_base + 0x40, 64);
  std::printf("remote 64 B read: %s round trip\n%s\n", tx.round_trip().to_string().c_str(),
              tx.breakdown.to_string().c_str());

  // 5. Give the memory back.
  const auto down = dc.scale_down(vm.vm, vm.compute, up.segment);
  std::printf("scale-down completed in %s; rack draws %.1f W\n",
              down.delay().to_string().c_str(), dc.power_draw_watts());

  // 6. The tracer captured the whole session, and every layer reported
  //    into the shared metrics registry.
  std::printf("\noperation timeline:\n%s", dc.tracer().to_string().c_str());
  std::printf("\ntelemetry snapshot:\n%s", dc.metrics().snapshot().to_string().c_str());

  // 7. With DREDBOX_TRACE_FILE=/tmp/trace.json set, the span timeline is
  //    exported as Chrome trace-event JSON (open it in ui.perfetto.dev).
  try {
    if (sim::maybe_write_trace(dc.tracer())) {
      std::printf("\nwrote Chrome trace to %s\n", std::getenv(sim::kTraceFileEnv));
    }
  } catch (const std::exception& e) {
    std::printf("\ntrace export failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
