// Operator's rack health report: builds a working deployment, drives some
// load onto it, then renders the SDM-C resource inventory, per-circuit
// optical link budgets with BER margins, and the rack power picture —
// the introspection surface an operations dashboard would poll.
//
//   $ ./rack_report

#include <cstdio>

#include "core/dredbox.hpp"
#include "core/scenario.hpp"
#include "sim/trace_export.hpp"

using namespace dredbox;
constexpr std::uint64_t kGiB = 1ull << 30;

int main() {
  std::printf("dReDBox rack report (library v%s)\n", kVersionString);

  auto scenario = core::ScenarioBuilder{}.racks(2, 2, 2).telemetry().build();
  core::Datacenter& dc = scenario.datacenter();

  // Put the rack under some load: three tenants, one with remote memory
  // on another tray (an optical circuit), one intra-tray (electrical).
  const auto web = dc.boot_vm("web", 2, 2 * kGiB);
  const auto db = dc.boot_vm("db", 2, 2 * kGiB);
  const auto cache = dc.boot_vm("cache", 2, 2 * kGiB);
  if (!web.ok || !db.ok || !cache.ok) {
    std::printf("boot failed\n");
    return 1;
  }
  dc.advance_to(sim::Time::sec(10));
  dc.scale_up(db.vm, db.compute, 4 * kGiB);
  dc.advance_to(sim::Time::sec(20));
  dc.scale_up(cache.vm, cache.compute, 8 * kGiB);
  dc.advance_to(sim::Time::sec(30));

  // One cross-tray, dual-lane attachment so the optical fabric carries
  // live circuits for the link-budget section below.
  hw::BrickId far_membrick;
  const hw::TrayId web_tray = dc.rack().brick(web.compute).tray();
  for (hw::BrickId mb : dc.memory_bricks()) {
    if (dc.rack().brick(mb).tray() != web_tray) {
      far_membrick = mb;
      break;
    }
  }
  memsys::AttachRequest xreq;
  xreq.compute = web.compute;
  xreq.membrick = far_membrick;
  xreq.bytes = 2 * kGiB;
  xreq.lanes = 2;
  if (auto attached = dc.fabric().attach(xreq, dc.simulator().now())) {
    dc.agent_of(web.compute).attach_physical(*attached);
    dc.agent_of(web.compute).expand_guest(web.vm, *attached, dc.simulator().now());
  }

  // --- inventory ---
  std::printf("\n== SDM-C resource inventory ==\n");
  sim::TextTable inv{{"brick", "kind", "tray", "power", "cores", "memory", "segments",
                      "ports", "VMs"}};
  for (const auto& s : dc.sdm().inventory()) {
    std::string cores = s.kind == hw::BrickKind::kCompute
                            ? std::to_string(s.cores_used) + "/" + std::to_string(s.cores_total)
                            : "-";
    std::string memory =
        s.kind == hw::BrickKind::kMemory
            ? std::to_string(s.memory_used >> 30) + "/" + std::to_string(s.memory_total >> 30) +
                  " GiB"
            : "-";
    inv.add_row({s.brick.to_string(), hw::to_string(s.kind), s.tray.to_string(),
                 hw::to_string(s.power), cores, memory,
                 s.kind == hw::BrickKind::kMemory ? std::to_string(s.segments) : "-",
                 std::to_string(s.ports_used) + "/" + std::to_string(s.ports_total),
                 s.kind == hw::BrickKind::kCompute ? std::to_string(s.vms) : "-"});
  }
  std::printf("%s", inv.to_string().c_str());

  // --- attachments and media ---
  std::printf("\n== Remote-memory attachments ==\n");
  sim::TextTable att{{"compute", "dMEMBRICK", "size", "medium", "lanes", "window base"}};
  for (hw::BrickId cb : dc.compute_bricks()) {
    for (const auto& a : dc.fabric().attachments_of(cb)) {
      char base[32];
      std::snprintf(base, sizeof base, "0x%llx",
                    static_cast<unsigned long long>(a.compute_base));
      att.add_row({a.compute.to_string(), a.membrick.to_string(),
                   std::to_string(a.size >> 30) + " GiB", memsys::to_string(a.medium),
                   std::to_string(a.lanes), base});
    }
  }
  std::printf("%s", att.to_string().c_str());

  // --- optical link health ---
  std::printf("\n== Optical circuit link budgets ==\n");
  const optics::ReceiverModel rx{-16.5, 10.0};
  std::printf("receiver sensitivity: %.1f dBm at BER 1e-12\n", rx.sensitivity_dbm());
  std::printf("switch: %zu/%zu ports in use, %.2f W\n", dc.optical_switch().ports_in_use(),
              dc.optical_switch().port_count(), dc.optical_switch().power_draw_watts());
  for (hw::BrickId cb : dc.compute_bricks()) {
    for (const auto& a : dc.fabric().attachments_of(cb)) {
      if (a.medium != memsys::LinkMedium::kOptical) continue;
      const auto circuit = dc.circuits().find(a.circuit);
      if (!circuit) continue;
      const auto budget = dc.circuits().budget(*circuit, /*from_a=*/true);
      const double margin = budget.received_dbm() - rx.required_power_dbm(1e-12);
      std::printf("  circuit %s (brick %s <-> %s): rx %.2f dBm, BER %.1e, margin %.1f dB\n",
                  a.circuit.to_string().c_str(), circuit->a.brick.to_string().c_str(),
                  circuit->b.brick.to_string().c_str(), budget.received_dbm(),
                  rx.ber(budget.received_dbm()), margin);
    }
  }

  // --- power ---
  std::printf("\n== Power ==\n");
  std::printf("rack draw: %.1f W\n", dc.power_draw_watts());

  // --- telemetry health snapshot: every named instrument the layers
  // recorded while the load above ran (the dashboard's raw feed; also
  // written to $DREDBOX_CSV_DIR/rack_telemetry.csv when that is set) ---
  std::printf("\n== Telemetry ==\n%s", dc.metrics().snapshot().to_string().c_str());
  try {
    dc.metrics().write_csv("rack_telemetry");
    sim::maybe_write_trace(dc.tracer());
  } catch (const std::exception& e) {
    std::printf("telemetry export failed: %s\n", e.what());
    return 1;
  }

  // --- CSV export of the inventory (for dashboards) ---
  std::printf("\n== Inventory CSV ==\n%s", inv.to_csv().c_str());
  return 0;
}
