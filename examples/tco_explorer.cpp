// TCO what-if explorer (Section VI): sweeps brick granularity and
// workload mixes to show how the disaggregated power-off opportunity
// depends on how finely the rack is sliced into individually powered
// units. Fig. 12/13 use 8-core / 8-GB bricks; this example shows the
// whole trade-off curve.
//
//   $ ./tco_explorer

#include <cstdio>

#include "sim/report.hpp"
#include "tco/tco_study.hpp"

using namespace dredbox;

int main() {
  std::printf("=== TCO explorer: brick granularity sweep ===\n\n");

  for (const std::size_t brick_size : {4u, 8u, 16u, 32u}) {
    tco::TcoConfig config;
    config.servers = 64;
    config.cores_per_compute_brick = brick_size;
    config.ram_gb_per_memory_brick = brick_size;
    config.repetitions = 5;
    const tco::TcoStudy study{config};

    std::printf("brick granularity: %zu cores / %zu GB (%zu + %zu bricks)\n", brick_size,
                static_cast<std::size_t>(brick_size), config.compute_bricks(),
                config.memory_bricks());
    sim::TextTable table{{"Workload", "conv off", "dReDBox off (best class)", "power saved"}};
    for (tco::WorkloadType type : tco::all_workload_types()) {
      const auto off = study.run_poweroff(type);
      const auto power = study.run_power(type);
      table.add_row({tco::to_string(type), sim::TextTable::pct(off.conventional_off),
                     sim::TextTable::pct(std::max(off.dd_compute_off, off.dd_memory_off)),
                     sim::TextTable::pct(power.savings())});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf("Reading the sweep: finer bricks (4-8 cores) capture nearly the whole\n");
  std::printf("fragmentation win on unbalanced mixes; at 32-core/32-GB 'bricks' the\n");
  std::printf("disaggregated datacenter degenerates into the conventional one —\n");
  std::printf("exactly the mainboard-as-a-unit limitation dReDBox removes (Section I).\n");
  return 0;
}
